//! Networked serving over `std::net`: the paper's Fig. 4 deployment,
//! where drones reach the AliDrone Server through a socket.
//!
//! # Framing
//!
//! Both directions carry the existing codec frames unchanged, one per
//! length-prefixed TCP message:
//!
//! ```text
//! request:  | u32 len (BE) | f64 now_secs (BE) | request frame… |
//! response: | u32 len (BE) | response frame…                    |
//! ```
//!
//! The `request frame` is byte-for-byte what [`AuditorServer::handle`]
//! accepts in-process — bare or wrapped in the `0xE7` trace envelope —
//! so verdicts, PoA outcomes, and stitched traces are identical over
//! TCP and over [`InProcess`](crate::wire::transport::InProcess). The
//! `now_secs` prologue carries the caller's (possibly simulated) clock
//! in-frame, keeping simulation runs deterministic across the socket.
//!
//! # Threading model
//!
//! [`TcpServer`] runs one accept thread plus a bounded worker pool
//! ([`ServeConfig::workers`](crate::wire::server::ServeConfig)); each accepted connection passes
//! through a **bounded admission queue**
//! ([`ServeConfig::queue_cap`](crate::wire::server::ServeConfig)) to
//! one worker, which owns it for its lifetime and streams frames
//! sequentially (concurrency comes from connections, not from frames
//! within one). A connection arriving with the queue full is answered
//! with a typed [`Response::Overloaded`] and closed — counted in
//! `server.shed.queue_full` — instead of queueing unboundedly; health
//! probes are exempt and answered even at the admission edge. Workers
//! set per-connection read/write timeouts from
//! [`ServeConfig`]; an idle read timeout between frames is
//! the
//! shutdown-check point, while a stall *mid-frame* drops the
//! connection. The accept loop blocks in `accept` (no polling);
//! [`TcpServer::shutdown`] wakes it with a throwaway self-connection,
//! then drains: in-flight requests finish and their responses are
//! written before threads join.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use alidrone_geo::Timestamp;
use alidrone_obs::{Counter, Level, Obs};

use crate::wire::server::{AuditorServer, ServeConfig};
use crate::wire::transport::{RetryPolicy, Transport};
use crate::wire::{request_kind_from_tag, split_envelope, Response};
use crate::ProtocolError;

/// Hard cap on one TCP message body (matches the codec's own limit).
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How long the admission-reject path waits for the rejected peer's
/// request frame before giving up. Reading the frame first means the
/// peer's written bytes are consumed, so closing the socket delivers
/// the [`Response::Overloaded`] instead of a TCP reset.
const REJECT_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Bound on the wake-connection dial during shutdown.
const WAKE_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------- framing

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Blocking read of one length-prefixed frame (client side: the socket
/// read timeout bounds the wait).
fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 16 MiB cap",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Pops one complete frame body off the front of `buf`, if present.
fn extract_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, io::Error> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 16 MiB cap",
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(body))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// -------------------------------------------------------------- TcpServer

/// A listening front end serving one shared [`AuditorServer`] over TCP.
///
/// Created with [`TcpServer::bind`]; serving starts immediately on
/// background threads. Dropping the handle shuts down gracefully, or
/// call [`shutdown`](TcpServer::shutdown) explicitly to join the
/// threads and observe completion.
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an OS-assigned loopback port) and
    /// starts serving `server` with the worker count and timeouts from
    /// its [`ServeConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, server: Arc<AuditorServer>) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let cfg = server.serve_config();
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = server.obs().counter("server.connections");
        let shed_queue_full = server.obs().counter("server.shed.queue_full");
        let queue_depth = server.obs().gauge("server.queue_depth");
        let workers_busy = server.obs().gauge("server.workers.busy");
        // Bounded admission queue: `try_send` fails instead of queueing
        // unboundedly, which is the whole point.
        let (tx, rx) = mpsc::sync_channel::<(TcpStream, Instant)>(cfg.queue_cap);
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let server = Arc::clone(&server);
                let shutdown = Arc::clone(&shutdown);
                let queue_depth = Arc::clone(&queue_depth);
                let workers_busy = Arc::clone(&workers_busy);
                thread::spawn(move || loop {
                    // Blocking recv: the accept thread drops `tx` on
                    // shutdown, which unblocks every idle worker with
                    // `Err(Disconnected)` once the queue is drained.
                    let next = match rx.lock() {
                        Ok(queue) => queue.recv(),
                        // A sibling worker panicked while holding the
                        // queue: treat it like a closed queue and exit
                        // instead of cascading the panic pool-wide.
                        Err(_) => break,
                    };
                    match next {
                        Ok((stream, queued_at)) => {
                            queue_depth.add(-1);
                            // Pool saturation gauge: `workers.busy`
                            // pinned at the worker count while
                            // `queue_depth` grows is the live signature
                            // of overload.
                            workers_busy.add(1);
                            let served =
                                serve_connection(&server, stream, queued_at, &shutdown, &cfg);
                            workers_busy.add(-1);
                            if let Err(e) = served {
                                server.obs().emit(
                                    Level::Warn,
                                    "wire.tcp",
                                    "connection_error",
                                    |f| {
                                        f.field("error", e.to_string());
                                    },
                                );
                            }
                        }
                        // Accept loop gone and queue drained.
                        Err(_) => break,
                    }
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_server = Arc::clone(&server);
        let accept_thread = thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if accept_shutdown.load(Ordering::SeqCst) {
                            // Possibly the shutdown wake connection;
                            // either way, stop accepting.
                            break;
                        }
                        connections.inc();
                        // Responses go out as two writes (length prefix,
                        // then body); without NODELAY, Nagle holds the
                        // body until the client's delayed ACK (~40 ms
                        // per round trip on loopback).
                        let _ = stream.set_nodelay(true);
                        // Workers use blocking reads with timeouts.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        match tx.try_send((stream, Instant::now())) {
                            Ok(()) => {
                                queue_depth.add(1);
                            }
                            Err(TrySendError::Full((stream, _))) => {
                                reject_or_probe(&accept_server, stream, &cfg, &shed_queue_full);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        if accept_shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        thread::sleep(cfg.shutdown_poll);
                    }
                }
            }
            // Dropping `tx` lets idle workers exit once the queue is dry.
        });

        Ok(TcpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stops accepting, lets workers finish (and
    /// answer) every request already received, then joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept thread blocks in `accept` — wake it with a
        // throwaway connection so shutdown is prompt without polling.
        // Fall back to plain loopback when the bound address is not
        // directly dialable (e.g. 0.0.0.0).
        let woke = TcpStream::connect_timeout(&self.local_addr, WAKE_CONNECT_TIMEOUT)
            .or_else(|_| {
                TcpStream::connect_timeout(
                    &SocketAddr::from(([127, 0, 0, 1], self.local_addr.port())),
                    WAKE_CONNECT_TIMEOUT,
                )
            })
            .is_ok();
        if let Some(t) = self.accept_thread.take() {
            if woke {
                let _ = t.join();
            } else {
                // Both wake dials failed: the accept thread may be
                // parked in `accept` forever, and until it exits it
                // holds the queue sender that unblocks idle workers.
                // Joining could hang shutdown — detach everything
                // instead; the OS reclaims the threads at process exit.
                self.workers.clear();
                return;
            }
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Answers a connection the admission queue had no room for. The
/// rejected peer's request frame is read first (so its bytes are
/// consumed and the close delivers our response rather than a reset),
/// then a typed [`Response::Overloaded`] is written and the connection
/// closed. Health probes are the exception: they are answered properly
/// even at the admission edge, so monitoring survives overload.
/// `server.shed.queue_full` counts only rejections whose response was
/// actually written — the counter reconciles against client-observed
/// typed rejections.
fn reject_or_probe(
    server: &AuditorServer,
    mut stream: TcpStream,
    cfg: &ServeConfig,
    shed_queue_full: &Counter,
) {
    if stream
        .set_read_timeout(Some(REJECT_READ_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(cfg.write_timeout)))
        .is_err()
    {
        return;
    }
    let Ok(body) = read_frame(&mut stream) else {
        // No frame arrived in time: nothing to answer.
        return;
    };
    if is_health_probe(&body) {
        let response = handle_framed(server, &body, Duration::ZERO);
        let _ = write_frame(&mut stream, &response);
        return;
    }
    let response = Response::Overloaded {
        retry_after_ms: cfg.queue_full_retry_after_ms,
    }
    .to_bytes();
    if write_frame(&mut stream, &response).is_ok() {
        shed_queue_full.inc();
        server
            .obs()
            .emit(Level::Warn, "wire.tcp", "shed_queue_full", |f| {
                f.field("retry_after_ms", cfg.queue_full_retry_after_ms);
            });
    }
}

/// `true` when a framed body (now-prologue + possibly enveloped
/// payload) carries a health-check request.
fn is_health_probe(body: &[u8]) -> bool {
    let Some(payload) = body.get(8..) else {
        return false;
    };
    match split_envelope(payload) {
        Ok((_, req)) => {
            req.first().copied().and_then(request_kind_from_tag) == Some("health_check")
        }
        Err(_) => false,
    }
}

/// Serves one connection until the peer closes, shutdown drains it, or
/// an error/mid-frame stall drops it.
fn serve_connection(
    server: &AuditorServer,
    mut stream: TcpStream,
    queued_at: Instant,
    shutdown: &AtomicBool,
    cfg: &ServeConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(cfg.read_timeout.max(cfg.shutdown_poll)))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 8192];
    // Queue-wait accounting for deadline shedding: the first frame
    // batch waited in the admission queue with the connection itself;
    // later batches are stamped when their bytes arrive. The stamp
    // stays fixed while a batch drains, so a frame queued behind
    // earlier frames on the same connection accrues their handling
    // time as its own wait.
    let mut batch_arrival = queued_at;
    // The first bytes of a freshly dequeued connection were sent while
    // it sat in the admission queue, so their wait starts at
    // `queued_at` — NOT at the moment the worker finally read them.
    let mut first_batch = true;
    loop {
        // Serve every complete frame already received — including after
        // shutdown, so in-flight requests drain with responses.
        while let Some(body) = extract_frame(&mut buf)? {
            let response = handle_framed(server, &body, batch_arrival.elapsed());
            write_frame(&mut stream, &response)?;
        }
        if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return Ok(());
        }
        match stream.read(&mut tmp) {
            // Peer closed; a partial trailing frame is a peer bug but
            // not ours to report.
            Ok(0) => return Ok(()),
            Ok(n) => {
                if buf.is_empty() && !first_batch {
                    batch_arrival = Instant::now();
                }
                first_batch = false;
                buf.extend_from_slice(&tmp[..n]);
            }
            Err(ref e) if is_timeout(e) && buf.is_empty() => {
                // Idle between frames: loop around to re-check
                // shutdown. Further waiting is the peer's silence, not
                // queueing — don't let it count against a budget.
                first_batch = false;
                batch_arrival = Instant::now();
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Mid-frame stall or hard error: drop the connection.
            Err(e) => return Err(e),
        }
    }
}

/// Unpacks the `now_secs` prologue and hands the frame to the server
/// along with how long it waited before a handler thread got to it.
/// A body too short to carry the prologue is fed through anyway so it
/// lands in the server's malformed-frame accounting.
fn handle_framed(server: &AuditorServer, body: &[u8], queue_wait: Duration) -> Vec<u8> {
    match body.get(..8) {
        Some(prologue) => {
            // Invariant: `get(..8)` returned `Some`, so the slice is
            // exactly 8 bytes and the conversion cannot fail.
            let now = f64::from_be_bytes(prologue.try_into().expect("8-byte slice"));
            server.handle_at(&body[8..], Timestamp::from_secs(now), queue_wait)
        }
        None => server.handle_at(body, Timestamp::from_secs(0.0), queue_wait),
    }
}

// ------------------------------------------------------------ TcpTransport

/// A client-side [`Transport`] over one TCP connection.
///
/// Connects lazily on the first call and keeps the stream behind a
/// mutex, so the transport is `Send + Sync`; calls on one transport
/// serialise (use one transport per thread for parallelism — the
/// server end is concurrent across connections).
///
/// A write failure on a *reused* stream means the pooled connection
/// died since the last call (server restart, idle drop): the transport
/// reconnects once and resends, emitting `transport.reconnects`. A
/// *read* failure is never resent here — whether the request executed
/// is unknown, so the typed error surfaces and only the
/// [`AuditorClient`](crate::wire::transport::AuditorClient) retry
/// layer, which knows idempotency, may resend.
///
/// # Failover
///
/// [`TcpTransport::multi`] takes an *endpoint list* (a replicated
/// auditor cluster, see [`crate::repl`]). Dials distinguish failure
/// classes: **connection refused** means nothing is listening — a dead
/// or deposed primary — so the transport rotates to the next endpoint
/// *immediately* (no backoff; counted in
/// `transport.endpoint_rotations`). Transient errors (timeouts,
/// resets) stay on the same endpoint and enter the seeded reconnect
/// backoff. Only a full cycle of refusals — every endpoint dead —
/// counts as a connect failure for the backoff streak, so a cluster
/// mid-failover is probed promptly while a fully-dark cluster backs
/// off exactly like the single-endpoint case. Combined with the
/// [`AuditorClient`](crate::wire::transport::AuditorClient) retry
/// layer, in-flight *idempotent* requests transparently retry against
/// the promoted primary; non-idempotent ones surface their typed
/// [`ProtocolError`] to the caller.
#[derive(Debug)]
pub struct TcpTransport {
    endpoints: Vec<SocketAddr>,
    /// Index of the endpoint currently dialed (rotates on refusal).
    active: std::sync::atomic::AtomicUsize,
    stream: Mutex<Option<TcpStream>>,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Backoff policy for *re*connect attempts. Without one, a dead
    /// server turns every call into an immediate connect — a tight
    /// connect storm; with one, consecutive connect failures back off
    /// exponentially with the policy's seeded jitter, exactly like
    /// request retries.
    reconnect_policy: Option<RetryPolicy>,
    /// Consecutive connect failures (reset on success).
    connect_failures: AtomicU32,
    /// xorshift64 jitter state for reconnect backoff.
    backoff_jitter: AtomicU64,
    calls: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    reconnects: Arc<Counter>,
    connect_backoffs: Arc<Counter>,
    endpoint_rotations: Arc<Counter>,
    obs: Obs,
}

impl TcpTransport {
    /// A transport for `addr` (untraced; connects on first use).
    pub fn new(addr: SocketAddr) -> Self {
        TcpTransport::with_obs(addr, &Obs::noop())
    }

    /// As [`new`](Self::new), counting traffic into `obs` under the
    /// same `transport.*` names the in-process transport uses, plus
    /// `transport.reconnects`.
    pub fn with_obs(addr: SocketAddr, obs: &Obs) -> Self {
        TcpTransport::multi(vec![addr], obs)
    }

    /// A transport over an *endpoint list* — a replicated cluster whose
    /// primary may move. Dials start at `endpoints[0]` and rotate (in
    /// list order, wrapping) whenever the active endpoint refuses the
    /// connection; see the type docs for the failure-class rules.
    ///
    /// # Panics
    ///
    /// When `endpoints` is empty.
    pub fn multi(endpoints: Vec<SocketAddr>, obs: &Obs) -> Self {
        assert!(!endpoints.is_empty(), "endpoint list must be non-empty");
        TcpTransport {
            endpoints,
            active: std::sync::atomic::AtomicUsize::new(0),
            stream: Mutex::new(None),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            reconnect_policy: None,
            connect_failures: AtomicU32::new(0),
            backoff_jitter: AtomicU64::new(1),
            calls: obs.counter("transport.calls"),
            bytes_in: obs.counter("transport.bytes_in"),
            bytes_out: obs.counter("transport.bytes_out"),
            reconnects: obs.counter("transport.reconnects"),
            connect_backoffs: obs.counter("transport.connect_backoffs"),
            endpoint_rotations: obs.counter("transport.endpoint_rotations"),
            obs: obs.clone(),
        }
    }

    /// Socket-level read/write timeouts (default 5 s each). An elapsed
    /// read timeout surfaces as [`ProtocolError::Timeout`].
    pub fn timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Attaches seeded exponential backoff to reconnect attempts
    /// (default: none — matching `max_attempts` is ignored here; the
    /// backoff shape and jitter seed are what apply). Each consecutive
    /// connect failure doubles the sleep before the next dial, capped
    /// at `max_backoff` plus jitter; a successful connect resets the
    /// streak. Sleeps are counted in `transport.connect_backoffs`.
    pub fn reconnect_backoff(self, policy: RetryPolicy) -> Self {
        self.backoff_jitter
            .store(policy.jitter_seed.max(1), Ordering::Relaxed);
        TcpTransport {
            reconnect_policy: Some(policy),
            ..self
        }
    }

    /// The endpoint this transport currently dials (rotates across
    /// [`multi`](Self::multi) endpoints on refused connections).
    pub fn addr(&self) -> SocketAddr {
        self.endpoints[self.active.load(Ordering::Relaxed) % self.endpoints.len()]
    }

    /// The full endpoint list, in rotation order.
    pub fn endpoints(&self) -> &[SocketAddr] {
        &self.endpoints
    }

    fn connect(&self) -> Result<TcpStream, ProtocolError> {
        if let Some(policy) = &self.reconnect_policy {
            let failures = self.connect_failures.load(Ordering::Relaxed);
            if failures > 0 {
                let backoff = self.reconnect_backoff_for(policy, failures);
                self.connect_backoffs.inc();
                self.obs
                    .emit(Level::Warn, "wire.tcp", "connect_backoff", |f| {
                        f.field("failures", u64::from(failures))
                            .field("backoff_us", backoff.as_micros() as u64);
                    });
                thread::sleep(backoff);
            }
        }
        // One pass over the ring: a refused endpoint (nothing listening
        // — dead or deposed primary) rotates immediately with no
        // backoff; a transient failure stays put so the backoff streak
        // targets the same endpoint. Only a *full cycle* of refusals
        // joins the failure streak — the whole cluster is dark.
        let mut refused_all: Option<io::Error> = None;
        for _ in 0..self.endpoints.len() {
            let idx = self.active.load(Ordering::Relaxed) % self.endpoints.len();
            let addr = self.endpoints[idx];
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    self.connect_failures.store(0, Ordering::Relaxed);
                    stream
                        .set_read_timeout(Some(self.read_timeout))
                        .and_then(|()| stream.set_write_timeout(Some(self.write_timeout)))
                        .map_err(io_to_protocol)?;
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                    let next = (idx + 1) % self.endpoints.len();
                    self.active.store(next, Ordering::Relaxed);
                    if self.endpoints.len() > 1 {
                        self.endpoint_rotations.inc();
                        let to = self.endpoints[next].to_string();
                        self.obs
                            .emit(Level::Warn, "wire.tcp", "endpoint_rotate", |f| {
                                f.field("refused", addr.to_string())
                                    .field("to", to.as_str());
                            });
                    }
                    refused_all = Some(e);
                }
                Err(e) => {
                    self.connect_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(io_to_protocol(e));
                }
            }
        }
        self.connect_failures.fetch_add(1, Ordering::Relaxed);
        // Invariant: the loop ran >= 1 time (endpoints is non-empty)
        // and every arm either returned or set `refused_all`.
        Err(io_to_protocol(
            refused_all.expect("full refusal cycle recorded an error"),
        ))
    }

    /// Backoff before reconnect attempt number `failures + 1`: the same
    /// exponential-plus-jitter shape the client retry layer uses,
    /// computed from this transport's own seeded xorshift64 stream.
    /// Calls serialise under the stream mutex, so the jitter sequence —
    /// and with it the whole backoff schedule — is deterministic for a
    /// given seed.
    fn reconnect_backoff_for(&self, policy: &RetryPolicy, failures: u32) -> Duration {
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << failures.saturating_sub(1).min(20));
        let capped = exp.min(policy.max_backoff);
        let cap_us = (capped / 2).as_micros() as u64;
        if cap_us == 0 {
            return capped;
        }
        let mut x = self.backoff_jitter.load(Ordering::Relaxed).max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.backoff_jitter.store(x, Ordering::Relaxed);
        capped + Duration::from_micros(x % (cap_us + 1))
    }
}

fn io_to_protocol(e: io::Error) -> ProtocolError {
    if is_timeout(&e) {
        ProtocolError::Timeout
    } else {
        ProtocolError::Transport(e.to_string())
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        self.calls.inc();
        self.bytes_in.add(request.len() as u64);
        let mut body = Vec::with_capacity(8 + request.len());
        body.extend_from_slice(&now.secs().to_be_bytes());
        body.extend_from_slice(request);

        let mut guard = self.stream.lock().unwrap_or_else(|poisoned| {
            // A previous call panicked mid-frame, so the pooled stream
            // may hold half-written bytes: drop it and start clean.
            let mut guard = poisoned.into_inner();
            *guard = None;
            guard
        });
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        // Invariant: the branch above just ensured the slot is `Some`.
        let stream = guard.as_mut().expect("stream just ensured");
        if let Err(e) = write_frame(stream, &body) {
            if !reused {
                *guard = None;
                return Err(io_to_protocol(e));
            }
            // Broken pipe on a pooled connection: reconnect and resend.
            // Safe because the request bytes never reached a live
            // server — the failure was on write, not read.
            self.reconnects.inc();
            self.obs.emit(Level::Warn, "wire.tcp", "reconnecting", |f| {
                f.field("error", e.to_string());
            });
            *guard = Some(self.connect()?);
            // Invariant: the line above just stored a fresh stream.
            write_frame(guard.as_mut().expect("fresh stream"), &body).map_err(|e| {
                *guard = None;
                io_to_protocol(e)
            })?;
        }
        // Invariant: every error path above returned early, and every
        // surviving path left a connected stream in the slot.
        match read_frame(guard.as_mut().expect("stream present")) {
            Ok(response) => {
                self.bytes_out.add(response.len() as u64);
                Ok(response)
            }
            Err(e) => {
                // The response is lost and the stream state unknown:
                // drop it so the next call starts clean.
                *guard = None;
                Err(io_to_protocol(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, AuditorConfig};
    use crate::test_support::{auditor_key, operator_key, origin, tee_key};
    use crate::wire::transport::AuditorClient;
    use crate::wire::{ErrorCode, Request, Response};
    use alidrone_geo::{Distance, NoFlyZone};

    fn spawn_server(workers: usize) -> (TcpServer, Arc<AuditorServer>, Obs) {
        let obs = Obs::noop();
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .obs(&obs)
            .workers(workers)
            .read_timeout(Duration::from_millis(200))
            .build(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).unwrap();
        (tcp, server, obs)
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(42.0)
    }

    #[test]
    fn register_and_query_over_loopback() {
        let (tcp, server, _obs) = spawn_server(2);
        let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
        let id = client
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let zid = client
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(25.0)), now())
            .unwrap();
        assert_eq!(server.auditor().drone_count(), 1);
        assert_eq!(server.auditor().zone_count(), 1);
        let zones = client
            .query_rect(
                id,
                origin().destination(225.0, Distance::from_km(1.0)),
                origin().destination(45.0, Distance::from_km(1.0)),
                [7u8; 16],
                operator_key(),
                now(),
            )
            .unwrap();
        assert_eq!(zones.len(), 1);
        assert_eq!(zones[0].0, zid);
        tcp.shutdown();
    }

    #[test]
    fn malformed_tcp_body_gets_an_error_response() {
        let (tcp, _server, obs) = spawn_server(1);
        let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Too short to even carry the now-prologue.
        write_frame(&mut stream, &[0xAB, 0xCD]).unwrap();
        let resp = Response::from_bytes(&read_frame(&mut stream).unwrap()).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
        assert_eq!(obs.snapshot().counter("server.malformed_frames"), 1);
        tcp.shutdown();
    }

    #[test]
    fn now_prologue_carries_the_callers_clock() {
        // The server stores PoAs stamped with the *request's* timestamp,
        // not its own wall clock — submit at a chosen sim time and check
        // the retention boundary honours it.
        let (tcp, server, _obs) = spawn_server(1);
        let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
        let id = client
            .register_drone(
                operator_key().public_key().clone(),
                tee_public(),
                Timestamp::from_secs(0.0),
            )
            .unwrap();
        let poa = crate::ProofOfAlibi::from_entries(crate::test_support::signed_samples(3));
        client
            .submit_poa(
                id,
                (Timestamp::from_secs(0.0), Timestamp::from_secs(2.0)),
                &poa,
                Timestamp::from_secs(1_000.0),
            )
            .unwrap();
        let stored = server.auditor().latest_stored(id).unwrap();
        assert_eq!(stored.stored_at, Timestamp::from_secs(1_000.0));
        tcp.shutdown();
    }

    fn tee_public() -> alidrone_crypto::rsa::RsaPublicKey {
        tee_key().public_key().clone()
    }

    #[test]
    fn connection_counter_and_multiple_clients() {
        let (tcp, server, obs) = spawn_server(2);
        for _ in 0..3 {
            let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
            client
                .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .unwrap();
        }
        assert_eq!(server.auditor().zone_count(), 3);
        tcp.shutdown();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.connections"), 3);
        assert_eq!(snap.counter("server.requests"), 3);
    }

    #[test]
    fn transport_reconnects_after_server_restart_on_same_port() {
        let (tcp, _server, _obs) = spawn_server(1);
        let addr = tcp.local_addr();
        let obs = Obs::noop();
        let transport = TcpTransport::with_obs(addr, &obs);
        let req = Request::RegisterZone {
            zone: NoFlyZone::new(origin(), Distance::from_meters(10.0)),
        };
        transport.call(&req.to_bytes(), now()).unwrap();

        // Kill the server; the pooled stream is now dead.
        tcp.shutdown();
        let server2 = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .build(),
        );
        let tcp2 = TcpServer::bind(addr, Arc::clone(&server2)).unwrap();

        // The first call may surface the stale-stream failure (written
        // bytes vanished into the dead socket's buffer); the transport
        // reconnects on the write-failure path or drops the stream on
        // the read-failure path, so a bounded number of calls must get
        // through without constructing a new transport.
        let mut ok = false;
        for _ in 0..3 {
            if transport.call(&req.to_bytes(), now()).is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "transport never recovered after server restart");
        assert!(server2.auditor().zone_count() >= 1);
        tcp2.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_without_polling() {
        // With a blocking accept loop and long socket timeouts, only
        // the wake connection makes shutdown fast. Guard against a
        // regression to timeout-bounded shutdown (the old worst case
        // was the 5 s read timeout).
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .build(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", server).unwrap();
        let t0 = Instant::now();
        tcp.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn queue_full_connections_get_typed_overloaded() {
        // One worker, admission queue of one. Occupy the worker with a
        // slow request and park a second connection in the queue; the
        // third connection must be rejected with Overloaded, not hang.
        let obs = Obs::noop();
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .obs(&obs)
            .workers(1)
            .queue_cap(1)
            .read_timeout(Duration::from_millis(200))
            .handle_delay(|| Duration::from_millis(400))
            .build(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).unwrap();
        let addr = tcp.local_addr();

        let frame = |req: &Request| {
            let mut body = now().secs().to_be_bytes().to_vec();
            body.extend_from_slice(&req.to_bytes());
            body
        };
        let zone_req = Request::RegisterZone {
            zone: NoFlyZone::new(origin(), Distance::from_meters(10.0)),
        };

        // Occupy the single worker.
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut busy, &frame(&zone_req)).unwrap();
        thread::sleep(Duration::from_millis(100));
        // Fill the one queue slot.
        let _parked = TcpStream::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        // Overflow: this connection must be shed with a typed response.
        let mut shed = TcpStream::connect(addr).unwrap();
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut shed, &frame(&zone_req)).unwrap();
        let resp = Response::from_bytes(&read_frame(&mut shed).unwrap()).unwrap();
        assert_eq!(
            resp,
            Response::Overloaded {
                retry_after_ms: server.serve_config().queue_full_retry_after_ms,
            }
        );
        // The occupied worker still answers its slow request.
        let resp = Response::from_bytes(&read_frame(&mut busy).unwrap()).unwrap();
        assert!(matches!(resp, Response::ZoneRegistered(_)));
        drop(busy);
        tcp.shutdown();
        assert_eq!(obs.snapshot().counter("server.shed.queue_full"), 1);
    }

    #[test]
    fn health_probe_survives_a_full_admission_queue() {
        let obs = Obs::noop();
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .obs(&obs)
            .workers(1)
            .queue_cap(1)
            .read_timeout(Duration::from_millis(200))
            .handle_delay(|| Duration::from_millis(400))
            .build(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).unwrap();
        let addr = tcp.local_addr();

        let frame = |req: &Request| {
            let mut body = now().secs().to_be_bytes().to_vec();
            body.extend_from_slice(&req.to_bytes());
            body
        };
        let zone_req = Request::RegisterZone {
            zone: NoFlyZone::new(origin(), Distance::from_meters(10.0)),
        };
        let mut busy = TcpStream::connect(addr).unwrap();
        busy.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut busy, &frame(&zone_req)).unwrap();
        thread::sleep(Duration::from_millis(100));
        let _parked = TcpStream::connect(addr).unwrap();
        thread::sleep(Duration::from_millis(50));
        // The queue is full, but a health probe is still answered.
        let mut probe = TcpStream::connect(addr).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut probe, &frame(&Request::HealthCheck)).unwrap();
        let resp = Response::from_bytes(&read_frame(&mut probe).unwrap()).unwrap();
        assert!(matches!(resp, Response::Healthy { .. }), "{resp:?}");
        drop(busy);
        tcp.shutdown();
        // The probe was not a queue-full shed.
        assert_eq!(obs.snapshot().counter("server.shed.queue_full"), 0);
    }

    #[test]
    fn dead_server_reconnects_back_off_deterministically() {
        // Grab a loopback port with nothing listening on it.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_micros(1_600),
            jitter_seed: 0xD1A1,
        };
        let run = || -> (u64, Vec<u64>) {
            use alidrone_obs::RingBuffer;
            let obs = Obs::noop();
            let ring = Arc::new(RingBuffer::new(64));
            obs.set_subscriber(ring.clone());
            let transport = TcpTransport::with_obs(dead_addr, &obs).reconnect_backoff(policy);
            let req = Request::HealthCheck.to_bytes();
            for _ in 0..5 {
                assert!(transport.call(&req, now()).is_err());
            }
            let backoffs: Vec<u64> = ring
                .events_where(|e| e.message == "connect_backoff")
                .iter()
                .map(|e| e.field("backoff_us").unwrap().as_u64().unwrap())
                .collect();
            (
                obs.snapshot().counter("transport.connect_backoffs"),
                backoffs,
            )
        };
        let (count_a, backoffs_a) = run();
        let (count_b, backoffs_b) = run();
        // First dial has no failure streak; the other four back off.
        assert_eq!(count_a, 4);
        assert_eq!(count_a, count_b);
        // Seeded jitter → the exact same backoff schedule both runs.
        assert_eq!(backoffs_a, backoffs_b);
        // Exponential growth is visible through the jitter: each base
        // doubles (200, 400, 800, 1600 µs) and jitter adds ≤ half.
        for (i, &b) in backoffs_a.iter().enumerate() {
            let base = 200u64 << i;
            assert!(b >= base && b <= base + base / 2, "backoff[{i}] = {b}");
        }
    }

    #[test]
    fn refused_endpoints_rotate_in_deterministic_order() {
        // Three dead loopback ports: every dial is refused, so each
        // call walks the full ring. The rotation order must be the
        // list order, wrapping, identically across runs.
        let dead: Vec<SocketAddr> = (0..3)
            .map(|_| {
                TcpListener::bind("127.0.0.1:0")
                    .unwrap()
                    .local_addr()
                    .unwrap()
            })
            .collect();
        let run = || -> (u64, Vec<String>) {
            use alidrone_obs::RingBuffer;
            let obs = Obs::noop();
            let ring = Arc::new(RingBuffer::new(64));
            obs.set_subscriber(ring.clone());
            let transport = TcpTransport::multi(dead.clone(), &obs);
            let req = Request::HealthCheck.to_bytes();
            for _ in 0..2 {
                assert!(transport.call(&req, now()).is_err());
            }
            let order: Vec<String> = ring
                .events_where(|e| e.message == "endpoint_rotate")
                .iter()
                .map(|e| e.field("refused").unwrap().as_str().unwrap().to_string())
                .collect();
            (
                obs.snapshot().counter("transport.endpoint_rotations"),
                order,
            )
        };
        let (count_a, order_a) = run();
        let (count_b, order_b) = run();
        // Two calls x three endpoints: six rotations, list order wrapped.
        assert_eq!(count_a, 6);
        assert_eq!(count_a, count_b);
        assert_eq!(order_a, order_b);
        let expected: Vec<String> = dead.iter().cycle().take(6).map(|a| a.to_string()).collect();
        assert_eq!(order_a, expected);
    }

    #[test]
    fn refused_primary_fails_over_to_live_endpoint_without_backoff() {
        // Endpoint 0 is dead (refused), endpoint 1 serves: the first
        // call must rotate and succeed with zero backoff sleeps even
        // though a reconnect policy is armed — refusal is failover,
        // not a transient to wait out.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (tcp, server, _sobs) = spawn_server(1);
        let obs = Obs::noop();
        let transport = TcpTransport::multi(vec![dead, tcp.local_addr()], &obs)
            .reconnect_backoff(RetryPolicy::default());
        let mut client = AuditorClient::new(transport);
        client
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        assert_eq!(server.auditor().zone_count(), 1);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("transport.endpoint_rotations"), 1);
        assert_eq!(snap.counter("transport.connect_backoffs"), 0);
        tcp.shutdown();
    }

    #[test]
    fn idempotent_requests_retry_against_promoted_endpoint() {
        // A two-endpoint client pinned to a live "primary"; kill it,
        // boot a replacement on the *other* endpoint, and the next
        // idempotent call must land there via refused-rotation plus
        // the client retry layer — no typed error escapes.
        let (tcp_a, _server_a, _oa) = spawn_server(1);
        let addr_a = tcp_a.local_addr();
        let addr_b = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let obs = Obs::noop();
        let transport = TcpTransport::multi(vec![addr_a, addr_b], &obs);
        let mut client = AuditorClient::new(transport);
        client
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();

        // Failover: A dies, B starts serving.
        tcp_a.shutdown();
        let server_b = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .build(),
        );
        let tcp_b = TcpServer::bind(addr_b, Arc::clone(&server_b)).unwrap();

        // register_zone is idempotent at the wire layer, so the retry
        // layer may resend it across the failover.
        client
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(20.0)), now())
            .unwrap();
        assert!(server_b.auditor().zone_count() >= 1);
        tcp_b.shutdown();
    }

    #[test]
    fn graceful_shutdown_answers_inflight_requests() {
        let (tcp, server, _obs) = spawn_server(2);
        let addr = tcp.local_addr();
        // Park a request on the wire, then shut down while it is being
        // handled: the response must still arrive.
        let handle = thread::spawn(move || {
            let mut client = AuditorClient::new(TcpTransport::new(addr));
            client.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
        });
        // Give the request time to hit a worker, then drain.
        thread::sleep(Duration::from_millis(50));
        tcp.shutdown();
        handle.join().unwrap().unwrap();
        assert_eq!(server.auditor().zone_count(), 1);
    }
}
