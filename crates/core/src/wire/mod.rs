//! The auditor's wire protocol.
//!
//! The paper deploys the AliDrone Server as a network service the drone
//! client talks to (Fig. 4); this module defines the byte-level protocol
//! for that link: a [`Request`]/[`Response`] pair with a hand-rolled,
//! length-prefixed binary codec ([`codec`]), a server loop
//! ([`AuditorServer`](crate::wire::server::AuditorServer)) and a typed
//! client over any [`Transport`](crate::wire::transport::Transport).
//!
//! # Trace envelope
//!
//! Request frames may be wrapped in an optional, backward-compatible
//! envelope that carries distributed-tracing context (v1) and an
//! optional remaining-deadline budget (v2):
//!
//! ```text
//! v1: +------+------+-------------------+-------------+------------------+
//!     | 0xE7 | 0x01 | trace_id (16, BE) | span_id (8) | request payload… |
//!     +------+------+-------------------+-------------+------------------+
//!
//! v2: +------+------+-------+----------------------------+--------------------------+----------+
//!     | 0xE7 | 0x02 | flags | trace_id(16) span_id(8)    | budget_micros (8, BE)    | payload… |
//!     |      |      |       |   present iff flags & 0x01 |   present iff flags & 0x02 |        |
//!     +------+------+-------+----------------------------+--------------------------+----------+
//! ```
//!
//! The magic byte `0xE7` can never begin a bare request (tags are 1–10),
//! so [`split_envelope`] distinguishes the two by the first byte: bare
//! frames pass through untouched and old clients keep working, while
//! enveloped frames stitch the client's span into the server's trace.
//! The v2 `budget_micros` field carries the client's *remaining* call
//! budget (relative, so clocks need not be synchronised); the server
//! compares it against its own measured queue wait and sheds requests
//! whose budget has already expired instead of executing them. A frame
//! that *starts* like an envelope but is truncated or carries an
//! unknown version is malformed — never a panic.

pub mod codec;
pub mod server;
pub mod tcp;
pub mod transport;

use alidrone_crypto::bigint::BigUint;
use alidrone_crypto::rsa::RsaPublicKey;
use alidrone_geo::{Distance, GeoPoint, NoFlyZone, Timestamp};

use crate::audit::{ConsistencyProof, InclusionProof, SignedTreeHead};
use crate::messages::{Accusation, ZoneQuery};
use crate::{DroneId, ProtocolError, Verdict, ZoneId};
use codec::{Reader, Writer};

/// A client → auditor request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Step 0 — register a drone (`D⁺`, `T⁺`).
    RegisterDrone {
        /// The operator verification key `D⁺`.
        operator_public: RsaPublicKey,
        /// The TEE verification key `T⁺`.
        tee_public: RsaPublicKey,
    },
    /// Step 1 — register a circular zone.
    RegisterZone {
        /// The zone geometry.
        zone: NoFlyZone,
    },
    /// Steps 2–3 — a signed zone query.
    QueryZones(ZoneQuery),
    /// Step 4 — submit a plaintext PoA for a flight window.
    SubmitPoa {
        /// The submitting drone.
        drone_id: DroneId,
        /// Claimed takeoff time.
        window_start: Timestamp,
        /// Claimed landing time.
        window_end: Timestamp,
        /// `ProofOfAlibi::to_bytes` payload.
        poa: Vec<u8>,
    },
    /// Step 4, encrypted — RSAES blocks of the PoA payload.
    SubmitEncryptedPoa {
        /// The submitting drone.
        drone_id: DroneId,
        /// Claimed takeoff time.
        window_start: Timestamp,
        /// Claimed landing time.
        window_end: Timestamp,
        /// The RSA ciphertext blocks.
        blocks: Vec<Vec<u8>>,
    },
    /// A zone owner's accusation.
    Accuse(Accusation),
    /// Liveness probe. Served straight from the wire layer without
    /// touching the auditor, and exempt from admission control so
    /// health probes keep answering even when the server is shedding
    /// every drone request.
    HealthCheck,
    /// Transparency — fetch the signed tree head over the auditor's
    /// tamper-evident audit chain (see [`crate::audit`]).
    FetchTreeHead,
    /// Transparency — fetch the inclusion proof for the drone's latest
    /// stored verdict against the tree of `tree_size` entries.
    FetchInclusionProof {
        /// The drone whose verdict is being proven.
        drone_id: DroneId,
        /// Tree size to prove against (0 = the auditor's current size,
        /// typically the size of a tree head fetched just before).
        tree_size: u64,
    },
    /// Transparency — fetch the consistency proof between two tree
    /// heads, evidence the newer extends the older append-only.
    FetchConsistencyProof {
        /// The older tree size.
        old_size: u64,
        /// The newer tree size (0 = the auditor's current size).
        new_size: u64,
    },
}

/// An auditor → client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The issued drone id.
    DroneRegistered(DroneId),
    /// The issued zone id.
    ZoneRegistered(ZoneId),
    /// Zones within the queried rectangle.
    Zones(Vec<(ZoneId, NoFlyZone)>),
    /// The verification verdict for a submission.
    Verdict(Verdict),
    /// The outcome of an accusation: refuted (true) or upheld with a
    /// reason.
    Accusation {
        /// `true` when the stored alibi refutes the accusation.
        refuted: bool,
        /// Reason text when upheld (empty when refuted).
        reason: String,
    },
    /// A protocol-level error.
    Error {
        /// Coarse machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server shed the request before execution (admission queue
    /// full or per-drone rate limit exceeded). Distinct from
    /// [`Response::Error`] so clients can machine-read the backoff
    /// hint without string parsing.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Answer to [`Request::HealthCheck`]: the server is alive, with a
    /// snapshot of its admission state.
    Healthy {
        /// Requests currently waiting in the admission queue.
        queue_depth: u32,
        /// Requests currently executing in worker threads.
        inflight: u32,
    },
    /// Answer to [`Request::FetchTreeHead`].
    TreeHead(SignedTreeHead),
    /// Answer to [`Request::FetchInclusionProof`].
    InclusionProof(InclusionProof),
    /// Answer to [`Request::FetchConsistencyProof`].
    ConsistencyProof(ConsistencyProof),
}

/// Machine-readable error classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Could not decode the request.
    Malformed,
    /// Unknown drone id.
    UnknownDrone,
    /// Unknown zone id.
    UnknownZone,
    /// Bad query signature.
    BadSignature,
    /// Nonce replay.
    NonceReplayed,
    /// Decryption of an encrypted submission failed.
    DecryptFailed,
    /// Anything else.
    Internal,
    /// The request's propagated deadline budget expired while it waited
    /// in the server's admission queue; it was shed before execution.
    DeadlineExpired,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0,
            ErrorCode::UnknownDrone => 1,
            ErrorCode::UnknownZone => 2,
            ErrorCode::BadSignature => 3,
            ErrorCode::NonceReplayed => 4,
            ErrorCode::DecryptFailed => 5,
            ErrorCode::Internal => 6,
            ErrorCode::DeadlineExpired => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => ErrorCode::Malformed,
            1 => ErrorCode::UnknownDrone,
            2 => ErrorCode::UnknownZone,
            3 => ErrorCode::BadSignature,
            4 => ErrorCode::NonceReplayed,
            5 => ErrorCode::DecryptFailed,
            6 => ErrorCode::Internal,
            7 => ErrorCode::DeadlineExpired,
            _ => return Err(ProtocolError::Malformed("error code")),
        })
    }
}

// --------------------------------------------------------- trace envelope

/// First byte of an enveloped frame. Deliberately outside the request
/// tag space (1–10) so the envelope is detectable without ambiguity.
pub const ENVELOPE_MAGIC: u8 = 0xE7;

/// The v1 envelope layout (trace context only, no flags byte).
pub const ENVELOPE_VERSION: u8 = 1;

/// The v2 envelope layout: a flags byte selecting optional trace
/// context and deadline-budget fields.
pub const ENVELOPE_VERSION_V2: u8 = 2;

/// v2 flag bit: the trace context (trace_id + span_id) is present.
pub const ENVELOPE_FLAG_TRACE: u8 = 0x01;

/// v2 flag bit: the remaining-deadline budget (`budget_micros`) is
/// present.
pub const ENVELOPE_FLAG_BUDGET: u8 = 0x02;

/// The trace context a frame envelope carries across the wire: which
/// trace the request belongs to and which client-side span is its
/// parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTraceContext {
    /// The 128-bit trace id shared by every span of the causal chain.
    pub trace_id: u128,
    /// The client-side span that issued the request (the server's
    /// remote parent).
    pub span_id: u64,
}

/// Everything an envelope can carry: optional trace context (v1/v2)
/// and an optional remaining-deadline budget (v2 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireEnvelope {
    /// Distributed-tracing context, if the client propagated one.
    pub trace: Option<WireTraceContext>,
    /// The client's *remaining* call budget in microseconds at send
    /// time. Relative on purpose: the server compares it to its own
    /// measured queue wait, so client and server clocks never need to
    /// agree.
    pub budget_micros: Option<u64>,
}

/// Wraps a request payload in the trace envelope.
pub fn encode_enveloped(ctx: WireTraceContext, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(ENVELOPE_MAGIC)
        .put_u8(ENVELOPE_VERSION)
        .put_u128(ctx.trace_id)
        .put_u64(ctx.span_id);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(payload);
    bytes
}

/// Wraps a request payload in the smallest envelope that carries
/// `env`'s fields:
///
/// - both fields `None` → the bare payload, byte-identical to a
///   pre-envelope client;
/// - trace only → the v1 layout, byte-identical to
///   [`encode_enveloped`] (so enabling the v2 code path changes no
///   bytes for existing deployments);
/// - any budget → the v2 flags layout.
pub fn encode_envelope(env: &WireEnvelope, payload: &[u8]) -> Vec<u8> {
    match (env.trace, env.budget_micros) {
        (None, None) => payload.to_vec(),
        (Some(ctx), None) => encode_enveloped(ctx, payload),
        (trace, Some(budget)) => {
            let mut flags = ENVELOPE_FLAG_BUDGET;
            if trace.is_some() {
                flags |= ENVELOPE_FLAG_TRACE;
            }
            let mut w = Writer::new();
            w.put_u8(ENVELOPE_MAGIC)
                .put_u8(ENVELOPE_VERSION_V2)
                .put_u8(flags);
            if let Some(ctx) = trace {
                w.put_u128(ctx.trace_id).put_u64(ctx.span_id);
            }
            w.put_u64(budget);
            let mut bytes = w.into_bytes();
            bytes.extend_from_slice(payload);
            bytes
        }
    }
}

/// Splits an incoming frame into its optional trace context and the
/// request payload.
///
/// Frames not starting with [`ENVELOPE_MAGIC`] are pre-envelope frames
/// and pass through unchanged (`None` context) — backward compatibility
/// is by construction, not by version negotiation.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] when a frame announces the
/// envelope but is truncated or carries an unknown version.
pub fn split_envelope(bytes: &[u8]) -> Result<(Option<WireTraceContext>, &[u8]), ProtocolError> {
    let (env, payload) = split_envelope_ext(bytes)?;
    Ok((env.trace, payload))
}

/// Splits an incoming frame into its full [`WireEnvelope`] (trace
/// context and deadline budget, either optional) and the request
/// payload. Handles bare frames, v1 envelopes and v2 envelopes.
///
/// # Errors
///
/// Returns [`ProtocolError::Malformed`] when a frame announces the
/// envelope but is truncated or carries an unknown version.
pub fn split_envelope_ext(bytes: &[u8]) -> Result<(WireEnvelope, &[u8]), ProtocolError> {
    match bytes.first() {
        Some(&ENVELOPE_MAGIC) => {
            let mut r = Reader::new(&bytes[1..]);
            match r.get_u8()? {
                ENVELOPE_VERSION => {
                    let trace_id = r.get_u128()?;
                    let span_id = r.get_u64()?;
                    let header = 1 + 1 + 16 + 8;
                    Ok((
                        WireEnvelope {
                            trace: Some(WireTraceContext { trace_id, span_id }),
                            budget_micros: None,
                        },
                        &bytes[header..],
                    ))
                }
                ENVELOPE_VERSION_V2 => {
                    let flags = r.get_u8()?;
                    if flags & !(ENVELOPE_FLAG_TRACE | ENVELOPE_FLAG_BUDGET) != 0 {
                        return Err(ProtocolError::Malformed("unknown envelope flags"));
                    }
                    let mut header = 1 + 1 + 1;
                    let trace = if flags & ENVELOPE_FLAG_TRACE != 0 {
                        let trace_id = r.get_u128()?;
                        let span_id = r.get_u64()?;
                        header += 16 + 8;
                        Some(WireTraceContext { trace_id, span_id })
                    } else {
                        None
                    };
                    let budget_micros = if flags & ENVELOPE_FLAG_BUDGET != 0 {
                        header += 8;
                        Some(r.get_u64()?)
                    } else {
                        None
                    };
                    Ok((
                        WireEnvelope {
                            trace,
                            budget_micros,
                        },
                        &bytes[header..],
                    ))
                }
                _ => Err(ProtocolError::Malformed("unsupported envelope version")),
            }
        }
        _ => Ok((WireEnvelope::default(), bytes)),
    }
}

// ----------------------------------------------------------- request kinds

/// The wire-visible request kinds, indexed like the request tags minus
/// one; used for per-kind metric and span names.
pub const REQUEST_KINDS: [&str; 10] = [
    "register_drone",
    "register_zone",
    "query_zones",
    "submit_poa",
    "submit_encrypted_poa",
    "accuse",
    "health_check",
    "tree_head",
    "inclusion_proof",
    "consistency_proof",
];

pub(crate) fn request_kind_index(req: &Request) -> usize {
    match req {
        Request::RegisterDrone { .. } => 0,
        Request::RegisterZone { .. } => 1,
        Request::QueryZones(_) => 2,
        Request::SubmitPoa { .. } => 3,
        Request::SubmitEncryptedPoa { .. } => 4,
        Request::Accuse(_) => 5,
        Request::HealthCheck => 6,
        Request::FetchTreeHead => 7,
        Request::FetchInclusionProof { .. } => 8,
        Request::FetchConsistencyProof { .. } => 9,
    }
}

/// The kind name for a request.
pub fn request_kind(req: &Request) -> &'static str {
    REQUEST_KINDS[request_kind_index(req)]
}

/// The kind name for a raw request tag byte (the first payload byte),
/// `None` for unknown tags. Lets transports label frames without fully
/// decoding them.
pub fn request_kind_from_tag(tag: u8) -> Option<&'static str> {
    match tag {
        REQ_REGISTER_DRONE..=REQ_CONSISTENCY_PROOF => Some(REQUEST_KINDS[(tag - 1) as usize]),
        _ => None,
    }
}

/// The admission cost of a request in token-bucket units — the knob
/// that makes PoA verification (an RSA verify per sample, by far the
/// paper's most expensive server operation) count ~10× a registration
/// or query against a drone's rate budget. Health checks are free:
/// they never touch the auditor.
pub fn request_cost(req: &Request) -> u32 {
    match req {
        Request::SubmitPoa { .. } | Request::SubmitEncryptedPoa { .. } => 10,
        Request::HealthCheck => 0,
        _ => 1,
    }
}

/// The drone a request claims to come from, when the wire format
/// carries one. Used to key the per-drone rate limiter; requests
/// without a drone id (registrations, accusations, health checks)
/// share an anonymous bucket.
pub fn source_drone(req: &Request) -> Option<DroneId> {
    match req {
        Request::QueryZones(q) => Some(q.drone_id),
        Request::SubmitPoa { drone_id, .. }
        | Request::SubmitEncryptedPoa { drone_id, .. }
        | Request::FetchInclusionProof { drone_id, .. } => Some(*drone_id),
        _ => None,
    }
}

// ---------------------------------------------------------------- helpers

fn put_public_key(w: &mut Writer, k: &RsaPublicKey) {
    w.put_bytes(&k.modulus().to_bytes_be());
    w.put_bytes(&k.exponent().to_bytes_be());
}

fn get_public_key(r: &mut Reader<'_>) -> Result<RsaPublicKey, ProtocolError> {
    let n = BigUint::from_bytes_be(r.get_bytes()?);
    let e = BigUint::from_bytes_be(r.get_bytes()?);
    RsaPublicKey::new(n, e).map_err(ProtocolError::Crypto)
}

fn put_point(w: &mut Writer, p: &GeoPoint) {
    w.put_f64(p.lat_deg());
    w.put_f64(p.lon_deg());
}

fn get_point(r: &mut Reader<'_>) -> Result<GeoPoint, ProtocolError> {
    let lat = r.get_f64()?;
    let lon = r.get_f64()?;
    GeoPoint::new(lat, lon).map_err(ProtocolError::Geo)
}

fn put_zone(w: &mut Writer, z: &NoFlyZone) {
    put_point(w, &z.center());
    w.put_f64(z.radius().meters());
}

fn get_zone(r: &mut Reader<'_>) -> Result<NoFlyZone, ProtocolError> {
    let center = get_point(r)?;
    let radius = Distance::from_meters(r.get_f64()?);
    NoFlyZone::try_new(center, radius).map_err(ProtocolError::Geo)
}

// ---------------------------------------------------------------- Request

const REQ_REGISTER_DRONE: u8 = 1;
const REQ_REGISTER_ZONE: u8 = 2;
const REQ_QUERY_ZONES: u8 = 3;
const REQ_SUBMIT_POA: u8 = 4;
const REQ_SUBMIT_ENCRYPTED: u8 = 5;
const REQ_ACCUSE: u8 = 6;
const REQ_HEALTH: u8 = 7;
const REQ_TREE_HEAD: u8 = 8;
const REQ_INCLUSION_PROOF: u8 = 9;
const REQ_CONSISTENCY_PROOF: u8 = 10;

impl Request {
    /// `true` when resending this request after a lost response cannot
    /// corrupt auditor state, so a client may retry it blindly.
    ///
    /// - Registrations issue a fresh id per delivery; an orphaned
    ///   duplicate never matches any later query, submission, or
    ///   accusation, so it is inert (idempotent *by construction*, not
    ///   by deduplication).
    /// - PoA submissions re-verify to the same verdict (verification is
    ///   a pure function of the PoA and the zone registry), and
    ///   accusation handling scans for the latest covering proof, so a
    ///   duplicate [`StoredPoa`](crate::StoredPoa) changes nothing.
    /// - Accusations and health checks are read-only.
    /// - Zone queries are **not** idempotent: each consumes its signed
    ///   nonce, so a replay is indistinguishable from an attack and is
    ///   rejected by the anti-replay check.
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::QueryZones(_))
    }

    /// Serialises the request.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::RegisterDrone {
                operator_public,
                tee_public,
            } => {
                w.put_u8(REQ_REGISTER_DRONE);
                put_public_key(&mut w, operator_public);
                put_public_key(&mut w, tee_public);
            }
            Request::RegisterZone { zone } => {
                w.put_u8(REQ_REGISTER_ZONE);
                put_zone(&mut w, zone);
            }
            Request::QueryZones(q) => {
                w.put_u8(REQ_QUERY_ZONES);
                w.put_u64(q.drone_id.value());
                put_point(&mut w, &q.corner1);
                put_point(&mut w, &q.corner2);
                for b in q.nonce {
                    w.put_u8(b);
                }
                w.put_bytes(&q.signature);
            }
            Request::SubmitPoa {
                drone_id,
                window_start,
                window_end,
                poa,
            } => {
                w.put_u8(REQ_SUBMIT_POA);
                w.put_u64(drone_id.value());
                w.put_f64(window_start.secs());
                w.put_f64(window_end.secs());
                w.put_bytes(poa);
            }
            Request::SubmitEncryptedPoa {
                drone_id,
                window_start,
                window_end,
                blocks,
            } => {
                w.put_u8(REQ_SUBMIT_ENCRYPTED);
                w.put_u64(drone_id.value());
                w.put_f64(window_start.secs());
                w.put_f64(window_end.secs());
                w.put_u32(blocks.len() as u32);
                for b in blocks {
                    w.put_bytes(b);
                }
            }
            Request::Accuse(a) => {
                w.put_u8(REQ_ACCUSE);
                w.put_u64(a.zone_id.value());
                w.put_u64(a.drone_id.value());
                w.put_f64(a.time.secs());
            }
            Request::HealthCheck => {
                w.put_u8(REQ_HEALTH);
            }
            Request::FetchTreeHead => {
                w.put_u8(REQ_TREE_HEAD);
            }
            Request::FetchInclusionProof {
                drone_id,
                tree_size,
            } => {
                w.put_u8(REQ_INCLUSION_PROOF);
                w.put_u64(drone_id.value());
                w.put_u64(*tree_size);
            }
            Request::FetchConsistencyProof { old_size, new_size } => {
                w.put_u8(REQ_CONSISTENCY_PROOF);
                w.put_u64(*old_size);
                w.put_u64(*new_size);
            }
        }
        w.into_bytes()
    }

    /// Parses a request.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] on framing problems and
    /// propagates field validation errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_u8()?;
        let req = match tag {
            REQ_REGISTER_DRONE => Request::RegisterDrone {
                operator_public: get_public_key(&mut r)?,
                tee_public: get_public_key(&mut r)?,
            },
            REQ_REGISTER_ZONE => Request::RegisterZone {
                zone: get_zone(&mut r)?,
            },
            REQ_QUERY_ZONES => {
                let drone_id = DroneId::new(r.get_u64()?);
                let corner1 = get_point(&mut r)?;
                let corner2 = get_point(&mut r)?;
                let nonce: [u8; 16] = r.get_array()?;
                let signature = r.get_bytes()?.to_vec();
                Request::QueryZones(ZoneQuery {
                    drone_id,
                    corner1,
                    corner2,
                    nonce,
                    signature,
                })
            }
            REQ_SUBMIT_POA => Request::SubmitPoa {
                drone_id: DroneId::new(r.get_u64()?),
                window_start: Timestamp::from_secs(r.get_f64()?),
                window_end: Timestamp::from_secs(r.get_f64()?),
                poa: r.get_bytes()?.to_vec(),
            },
            REQ_SUBMIT_ENCRYPTED => {
                let drone_id = DroneId::new(r.get_u64()?);
                let window_start = Timestamp::from_secs(r.get_f64()?);
                let window_end = Timestamp::from_secs(r.get_f64()?);
                let n = r.get_u32()? as usize;
                if n > 1 << 20 {
                    return Err(ProtocolError::Malformed("too many blocks"));
                }
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(r.get_bytes()?.to_vec());
                }
                Request::SubmitEncryptedPoa {
                    drone_id,
                    window_start,
                    window_end,
                    blocks,
                }
            }
            REQ_ACCUSE => Request::Accuse(Accusation {
                zone_id: ZoneId::new(r.get_u64()?),
                drone_id: DroneId::new(r.get_u64()?),
                time: Timestamp::from_secs(r.get_f64()?),
            }),
            REQ_HEALTH => Request::HealthCheck,
            REQ_TREE_HEAD => Request::FetchTreeHead,
            REQ_INCLUSION_PROOF => Request::FetchInclusionProof {
                drone_id: DroneId::new(r.get_u64()?),
                tree_size: r.get_u64()?,
            },
            REQ_CONSISTENCY_PROOF => Request::FetchConsistencyProof {
                old_size: r.get_u64()?,
                new_size: r.get_u64()?,
            },
            _ => return Err(ProtocolError::Malformed("unknown request tag")),
        };
        r.finish()?;
        Ok(req)
    }
}

// --------------------------------------------------------------- Response

const RESP_DRONE: u8 = 1;
const RESP_ZONE: u8 = 2;
const RESP_ZONES: u8 = 3;
const RESP_VERDICT: u8 = 4;
const RESP_ACCUSATION: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_OVERLOADED: u8 = 7;
const RESP_HEALTHY: u8 = 8;
const RESP_TREE_HEAD: u8 = 9;
const RESP_INCLUSION_PROOF: u8 = 10;
const RESP_CONSISTENCY_PROOF: u8 = 11;

/// A Merkle proof path can never exceed one sibling per tree level
/// (64 levels covers 2⁶⁴ leaves; consistency proofs add one node).
const MAX_PROOF_PATH: usize = 65;

fn put_hash(w: &mut Writer, h: &[u8; 32]) {
    for b in h {
        w.put_u8(*b);
    }
}

fn put_path(w: &mut Writer, path: &[[u8; 32]]) {
    w.put_u32(path.len() as u32);
    for h in path {
        put_hash(w, h);
    }
}

fn get_path(r: &mut Reader<'_>) -> Result<Vec<[u8; 32]>, ProtocolError> {
    let n = r.get_u32()? as usize;
    if n > MAX_PROOF_PATH {
        return Err(ProtocolError::Malformed("proof path too long"));
    }
    let mut path = Vec::with_capacity(n);
    for _ in 0..n {
        path.push(r.get_array()?);
    }
    Ok(path)
}

const VERDICT_COMPLIANT: u8 = 0;
const VERDICT_EMPTY: u8 = 1;
const VERDICT_BAD_SIG: u8 = 2;
const VERDICT_NON_MONO: u8 = 3;
const VERDICT_WINDOW: u8 = 4;
const VERDICT_IMPOSSIBLE: u8 = 5;
const VERDICT_INSIDE: u8 = 6;
const VERDICT_INSUFFICIENT: u8 = 7;
const VERDICT_BAD_GAP: u8 = 8;
const VERDICT_GAP_CONTRADICTION: u8 = 9;

pub(crate) fn put_verdict(w: &mut Writer, v: &Verdict) {
    match v {
        Verdict::Compliant => {
            w.put_u8(VERDICT_COMPLIANT);
        }
        Verdict::EmptyPoa => {
            w.put_u8(VERDICT_EMPTY);
        }
        Verdict::BadSignature { index } => {
            w.put_u8(VERDICT_BAD_SIG);
            w.put_u64(*index as u64);
        }
        Verdict::NonMonotonic { index } => {
            w.put_u8(VERDICT_NON_MONO);
            w.put_u64(*index as u64);
        }
        Verdict::WindowNotCovered => {
            w.put_u8(VERDICT_WINDOW);
        }
        Verdict::ImpossibleTrace { index } => {
            w.put_u8(VERDICT_IMPOSSIBLE);
            w.put_u64(*index as u64);
        }
        Verdict::InsideZone { index, zone } => {
            w.put_u8(VERDICT_INSIDE);
            w.put_u64(*index as u64);
            w.put_u64(zone.value());
        }
        Verdict::InsufficientAlibi { pair_indices } => {
            w.put_u8(VERDICT_INSUFFICIENT);
            w.put_u32(pair_indices.len() as u32);
            for i in pair_indices {
                w.put_u64(*i as u64);
            }
        }
        Verdict::BadGapMarker { index } => {
            w.put_u8(VERDICT_BAD_GAP);
            w.put_u64(*index as u64);
        }
        Verdict::GapContradiction { index } => {
            w.put_u8(VERDICT_GAP_CONTRADICTION);
            w.put_u64(*index as u64);
        }
    }
}

pub(crate) fn get_verdict(r: &mut Reader<'_>) -> Result<Verdict, ProtocolError> {
    Ok(match r.get_u8()? {
        VERDICT_COMPLIANT => Verdict::Compliant,
        VERDICT_EMPTY => Verdict::EmptyPoa,
        VERDICT_BAD_SIG => Verdict::BadSignature {
            index: r.get_u64()? as usize,
        },
        VERDICT_NON_MONO => Verdict::NonMonotonic {
            index: r.get_u64()? as usize,
        },
        VERDICT_WINDOW => Verdict::WindowNotCovered,
        VERDICT_IMPOSSIBLE => Verdict::ImpossibleTrace {
            index: r.get_u64()? as usize,
        },
        VERDICT_INSIDE => Verdict::InsideZone {
            index: r.get_u64()? as usize,
            zone: ZoneId::new(r.get_u64()?),
        },
        VERDICT_INSUFFICIENT => {
            let n = r.get_u32()? as usize;
            if n > 1 << 24 {
                return Err(ProtocolError::Malformed("too many pair indices"));
            }
            let mut pair_indices = Vec::with_capacity(n);
            for _ in 0..n {
                pair_indices.push(r.get_u64()? as usize);
            }
            Verdict::InsufficientAlibi { pair_indices }
        }
        VERDICT_BAD_GAP => Verdict::BadGapMarker {
            index: r.get_u64()? as usize,
        },
        VERDICT_GAP_CONTRADICTION => Verdict::GapContradiction {
            index: r.get_u64()? as usize,
        },
        _ => return Err(ProtocolError::Malformed("unknown verdict tag")),
    })
}

impl Response {
    /// Serialises the response.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::DroneRegistered(id) => {
                w.put_u8(RESP_DRONE);
                w.put_u64(id.value());
            }
            Response::ZoneRegistered(id) => {
                w.put_u8(RESP_ZONE);
                w.put_u64(id.value());
            }
            Response::Zones(zones) => {
                w.put_u8(RESP_ZONES);
                w.put_u32(zones.len() as u32);
                for (id, z) in zones {
                    w.put_u64(id.value());
                    put_zone(&mut w, z);
                }
            }
            Response::Verdict(v) => {
                w.put_u8(RESP_VERDICT);
                put_verdict(&mut w, v);
            }
            Response::Accusation { refuted, reason } => {
                w.put_u8(RESP_ACCUSATION);
                w.put_u8(u8::from(*refuted));
                w.put_str(reason);
            }
            Response::Error { code, message } => {
                w.put_u8(RESP_ERROR);
                w.put_u8(code.to_u8());
                w.put_str(message);
            }
            Response::Overloaded { retry_after_ms } => {
                w.put_u8(RESP_OVERLOADED);
                w.put_u64(*retry_after_ms);
            }
            Response::Healthy {
                queue_depth,
                inflight,
            } => {
                w.put_u8(RESP_HEALTHY);
                w.put_u32(*queue_depth);
                w.put_u32(*inflight);
            }
            Response::TreeHead(sth) => {
                w.put_u8(RESP_TREE_HEAD);
                w.put_u64(sth.size);
                put_hash(&mut w, &sth.root);
                put_hash(&mut w, &sth.chain_head);
                w.put_bytes(&sth.signature);
                w.put_bytes(&sth.tee_signature);
            }
            Response::InclusionProof(p) => {
                w.put_u8(RESP_INCLUSION_PROOF);
                w.put_u64(p.index);
                w.put_u64(p.size);
                put_hash(&mut w, &p.leaf);
                put_path(&mut w, &p.path);
            }
            Response::ConsistencyProof(p) => {
                w.put_u8(RESP_CONSISTENCY_PROOF);
                w.put_u64(p.old_size);
                w.put_u64(p.new_size);
                put_path(&mut w, &p.path);
            }
        }
        w.into_bytes()
    }

    /// Parses a response.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] on framing problems.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(bytes);
        let resp = match r.get_u8()? {
            RESP_DRONE => Response::DroneRegistered(DroneId::new(r.get_u64()?)),
            RESP_ZONE => Response::ZoneRegistered(ZoneId::new(r.get_u64()?)),
            RESP_ZONES => {
                let n = r.get_u32()? as usize;
                if n > 1 << 20 {
                    return Err(ProtocolError::Malformed("too many zones"));
                }
                let mut zones = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = ZoneId::new(r.get_u64()?);
                    zones.push((id, get_zone(&mut r)?));
                }
                Response::Zones(zones)
            }
            RESP_VERDICT => Response::Verdict(get_verdict(&mut r)?),
            RESP_ACCUSATION => Response::Accusation {
                refuted: r.get_u8()? != 0,
                reason: r.get_str()?.to_string(),
            },
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.get_u8()?)?,
                message: r.get_str()?.to_string(),
            },
            RESP_OVERLOADED => Response::Overloaded {
                retry_after_ms: r.get_u64()?,
            },
            RESP_HEALTHY => Response::Healthy {
                queue_depth: r.get_u32()?,
                inflight: r.get_u32()?,
            },
            RESP_TREE_HEAD => Response::TreeHead(SignedTreeHead {
                size: r.get_u64()?,
                root: r.get_array()?,
                chain_head: r.get_array()?,
                signature: r.get_bytes()?.to_vec(),
                tee_signature: r.get_bytes()?.to_vec(),
            }),
            RESP_INCLUSION_PROOF => Response::InclusionProof(InclusionProof {
                index: r.get_u64()?,
                size: r.get_u64()?,
                leaf: r.get_array()?,
                path: get_path(&mut r)?,
            }),
            RESP_CONSISTENCY_PROOF => Response::ConsistencyProof(ConsistencyProof {
                old_size: r.get_u64()?,
                new_size: r.get_u64()?,
                path: get_path(&mut r)?,
            }),
            _ => return Err(ProtocolError::Malformed("unknown response tag")),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{operator_key, origin, tee_key};

    fn zone() -> NoFlyZone {
        NoFlyZone::new(origin(), Distance::from_meters(123.0))
    }

    #[test]
    fn register_drone_round_trip() {
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn register_zone_round_trip() {
        let req = Request::RegisterZone { zone: zone() };
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn query_round_trip() {
        let q = ZoneQuery::new_signed(
            DroneId::new(3),
            origin(),
            origin().destination(45.0, Distance::from_km(1.0)),
            [5u8; 16],
            operator_key(),
        )
        .unwrap();
        let req = Request::QueryZones(q);
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn submit_round_trips() {
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(9),
            window_start: Timestamp::from_secs(1.5),
            window_end: Timestamp::from_secs(99.5),
            poa: vec![1, 2, 3, 4],
        };
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);

        let req = Request::SubmitEncryptedPoa {
            drone_id: DroneId::new(9),
            window_start: Timestamp::from_secs(1.5),
            window_end: Timestamp::from_secs(99.5),
            blocks: vec![vec![1; 64], vec![2; 64]],
        };
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn accuse_round_trip() {
        let req = Request::Accuse(Accusation {
            zone_id: ZoneId::new(4),
            drone_id: DroneId::new(5),
            time: Timestamp::from_secs(123.25),
        });
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
    }

    #[test]
    fn proof_requests_round_trip() {
        let reqs = vec![
            Request::FetchTreeHead,
            Request::FetchInclusionProof {
                drone_id: DroneId::new(17),
                tree_size: 4096,
            },
            Request::FetchInclusionProof {
                drone_id: DroneId::new(18),
                tree_size: 0,
            },
            Request::FetchConsistencyProof {
                old_size: 12,
                new_size: 4099,
            },
        ];
        for req in reqs {
            assert_eq!(
                Request::from_bytes(&req.to_bytes()).unwrap(),
                req,
                "round trip failed"
            );
        }
    }

    #[test]
    fn proof_responses_round_trip() {
        let responses = vec![
            Response::TreeHead(crate::audit::SignedTreeHead {
                size: 99,
                root: [0xAB; 32],
                chain_head: [0xCD; 32],
                signature: vec![1, 2, 3, 4, 5],
                tee_signature: vec![9; 64],
            }),
            Response::TreeHead(crate::audit::SignedTreeHead {
                size: 0,
                root: [0; 32],
                chain_head: [0; 32],
                signature: Vec::new(),
                tee_signature: Vec::new(),
            }),
            Response::InclusionProof(crate::audit::InclusionProof {
                index: 5,
                size: 64,
                leaf: [0x11; 32],
                path: (0..6).map(|i| [i as u8; 32]).collect(),
            }),
            Response::ConsistencyProof(crate::audit::ConsistencyProof {
                old_size: 12,
                new_size: 64,
                path: (0..4).map(|i| [0x40 | i as u8; 32]).collect(),
            }),
        ];
        for resp in responses {
            assert_eq!(
                Response::from_bytes(&resp.to_bytes()).unwrap(),
                resp,
                "round trip failed"
            );
        }
    }

    #[test]
    fn oversized_proof_path_rejected() {
        let mut resp = Response::InclusionProof(crate::audit::InclusionProof {
            index: 0,
            size: 1,
            leaf: [0; 32],
            path: Vec::new(),
        })
        .to_bytes();
        // Rewrite the path count (last four bytes of the encoding) to
        // exceed MAX_PROOF_PATH; the decoder must refuse rather than
        // allocate.
        let n = resp.len();
        resp[n - 4..].copy_from_slice(&(MAX_PROOF_PATH as u32 + 1).to_be_bytes());
        assert!(Response::from_bytes(&resp).is_err());
    }

    #[test]
    fn all_responses_round_trip() {
        let responses = vec![
            Response::DroneRegistered(DroneId::new(1)),
            Response::ZoneRegistered(ZoneId::new(2)),
            Response::Zones(vec![(ZoneId::new(3), zone())]),
            Response::Verdict(Verdict::Compliant),
            Response::Verdict(Verdict::EmptyPoa),
            Response::Verdict(Verdict::BadSignature { index: 7 }),
            Response::Verdict(Verdict::NonMonotonic { index: 8 }),
            Response::Verdict(Verdict::WindowNotCovered),
            Response::Verdict(Verdict::ImpossibleTrace { index: 9 }),
            Response::Verdict(Verdict::InsideZone {
                index: 10,
                zone: ZoneId::new(11),
            }),
            Response::Verdict(Verdict::InsufficientAlibi {
                pair_indices: vec![1, 5, 9],
            }),
            Response::Verdict(Verdict::BadGapMarker { index: 12 }),
            Response::Verdict(Verdict::GapContradiction { index: 13 }),
            Response::Accusation {
                refuted: true,
                reason: String::new(),
            },
            Response::Accusation {
                refuted: false,
                reason: "no coverage".into(),
            },
            Response::Error {
                code: ErrorCode::NonceReplayed,
                message: "nonce replayed".into(),
            },
            Response::Error {
                code: ErrorCode::DeadlineExpired,
                message: "budget expired in queue".into(),
            },
            Response::Overloaded { retry_after_ms: 75 },
            Response::Healthy {
                queue_depth: 3,
                inflight: 4,
            },
        ];
        for resp in responses {
            assert_eq!(
                Response::from_bytes(&resp.to_bytes()).unwrap(),
                resp,
                "round trip failed"
            );
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::from_bytes(&[0xEE]).is_err());
        assert!(Response::from_bytes(&[0xEE]).is_err());
        assert!(Request::from_bytes(&[]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Request::RegisterZone { zone: zone() }.to_bytes();
        bytes.push(0);
        assert!(Request::from_bytes(&bytes).is_err());
    }

    #[test]
    fn envelope_round_trips_and_bare_frames_pass_through() {
        let payload = Request::RegisterZone { zone: zone() }.to_bytes();
        let ctx = WireTraceContext {
            trace_id: 0x0123_4567_89AB_CDEF_0011_2233_4455_6677,
            span_id: 0xFEED_F00D,
        };
        let framed = encode_enveloped(ctx, &payload);
        assert_eq!(framed[0], ENVELOPE_MAGIC);
        let (got_ctx, got_payload) = split_envelope(&framed).unwrap();
        assert_eq!(got_ctx, Some(ctx));
        assert_eq!(got_payload, &payload[..]);
        // A bare frame passes through unchanged.
        let (none_ctx, bare) = split_envelope(&payload).unwrap();
        assert_eq!(none_ctx, None);
        assert_eq!(bare, &payload[..]);
    }

    #[test]
    fn truncated_envelope_is_malformed_not_a_panic() {
        let framed = encode_enveloped(
            WireTraceContext {
                trace_id: 7,
                span_id: 9,
            },
            &[],
        );
        for cut in 1..framed.len() {
            assert!(split_envelope(&framed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_envelope_version_rejected() {
        let mut framed = encode_enveloped(
            WireTraceContext {
                trace_id: 1,
                span_id: 2,
            },
            &[REQ_ACCUSE],
        );
        framed[1] = 99;
        assert!(split_envelope(&framed).is_err());
    }

    #[test]
    fn request_tags_never_collide_with_the_envelope_magic() {
        for tag in [
            REQ_REGISTER_DRONE,
            REQ_REGISTER_ZONE,
            REQ_QUERY_ZONES,
            REQ_SUBMIT_POA,
            REQ_SUBMIT_ENCRYPTED,
            REQ_ACCUSE,
            REQ_HEALTH,
        ] {
            assert_ne!(tag, ENVELOPE_MAGIC);
            assert!(request_kind_from_tag(tag).is_some());
        }
        assert_eq!(request_kind_from_tag(ENVELOPE_MAGIC), None);
        assert_eq!(request_kind_from_tag(0), None);
        assert_eq!(request_kind_from_tag(REQ_SUBMIT_POA), Some("submit_poa"));
    }

    #[test]
    fn only_zone_queries_are_non_idempotent() {
        let q = ZoneQuery::new_signed(
            DroneId::new(3),
            origin(),
            origin(),
            [5u8; 16],
            operator_key(),
        )
        .unwrap();
        assert!(!Request::QueryZones(q).is_idempotent());
        for req in [
            Request::RegisterZone { zone: zone() },
            Request::SubmitPoa {
                drone_id: DroneId::new(1),
                window_start: Timestamp::from_secs(0.0),
                window_end: Timestamp::from_secs(1.0),
                poa: vec![],
            },
            Request::Accuse(Accusation {
                zone_id: ZoneId::new(1),
                drone_id: DroneId::new(1),
                time: Timestamp::from_secs(0.0),
            }),
        ] {
            assert!(req.is_idempotent(), "{req:?}");
        }
    }

    #[test]
    fn health_check_round_trips_and_is_free() {
        let req = Request::HealthCheck;
        assert_eq!(Request::from_bytes(&req.to_bytes()).unwrap(), req);
        assert!(req.is_idempotent());
        assert_eq!(request_cost(&req), 0);
        assert_eq!(source_drone(&req), None);
        assert_eq!(request_kind(&req), "health_check");
    }

    #[test]
    fn cost_classes_weight_verification_heaviest() {
        let submit = Request::SubmitPoa {
            drone_id: DroneId::new(1),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: vec![],
        };
        let register = Request::RegisterZone { zone: zone() };
        assert!(request_cost(&submit) > request_cost(&register));
        assert_eq!(source_drone(&submit), Some(DroneId::new(1)));
        assert_eq!(source_drone(&register), None);
    }

    #[test]
    fn envelope_v2_round_trips_all_flag_combinations() {
        let payload = Request::HealthCheck.to_bytes();
        let ctx = WireTraceContext {
            trace_id: 42,
            span_id: 7,
        };
        let cases = [
            WireEnvelope {
                trace: None,
                budget_micros: Some(125_000),
            },
            WireEnvelope {
                trace: Some(ctx),
                budget_micros: Some(0),
            },
            WireEnvelope {
                trace: Some(ctx),
                budget_micros: Some(u64::MAX),
            },
        ];
        for env in cases {
            let framed = encode_envelope(&env, &payload);
            assert_eq!(framed[0], ENVELOPE_MAGIC);
            assert_eq!(framed[1], ENVELOPE_VERSION_V2);
            let (got, got_payload) = split_envelope_ext(&framed).unwrap();
            assert_eq!(got, env);
            assert_eq!(got_payload, &payload[..]);
            // The legacy splitter still finds the trace and the payload.
            let (legacy_ctx, legacy_payload) = split_envelope(&framed).unwrap();
            assert_eq!(legacy_ctx, env.trace);
            assert_eq!(legacy_payload, &payload[..]);
        }
    }

    #[test]
    fn envelope_backward_compat_bare_and_v1_bytes_unchanged() {
        // Property sweep: for every request kind, (a) a deadline-free
        // WireEnvelope encodes to exactly the pre-PR bytes (bare or v1),
        // and (b) those bytes split back to the identical payload.
        let requests: Vec<Request> = vec![
            Request::RegisterZone { zone: zone() },
            Request::SubmitPoa {
                drone_id: DroneId::new(9),
                window_start: Timestamp::from_secs(1.5),
                window_end: Timestamp::from_secs(99.5),
                poa: vec![1, 2, 3, 4],
            },
            Request::Accuse(Accusation {
                zone_id: ZoneId::new(4),
                drone_id: DroneId::new(5),
                time: Timestamp::from_secs(123.25),
            }),
            Request::HealthCheck,
        ];
        let ctx = WireTraceContext {
            trace_id: 0xDEAD_BEEF,
            span_id: 0xCAFE,
        };
        for req in requests {
            let payload = req.to_bytes();
            // Bare: no envelope fields → byte-identical passthrough.
            let bare = encode_envelope(&WireEnvelope::default(), &payload);
            assert_eq!(bare, payload, "bare frame must be byte-identical");
            let (env, rest) = split_envelope_ext(&bare).unwrap();
            assert_eq!(env, WireEnvelope::default());
            assert_eq!(rest, &payload[..]);
            assert_eq!(Request::from_bytes(rest).unwrap(), req);
            // Trace-only: must emit the v1 layout bit-for-bit.
            let v1 = encode_envelope(
                &WireEnvelope {
                    trace: Some(ctx),
                    budget_micros: None,
                },
                &payload,
            );
            assert_eq!(v1, encode_enveloped(ctx, &payload));
            let (env, rest) = split_envelope_ext(&v1).unwrap();
            assert_eq!(env.trace, Some(ctx));
            assert_eq!(env.budget_micros, None);
            assert_eq!(Request::from_bytes(rest).unwrap(), req);
        }
    }

    #[test]
    fn truncated_or_bad_flag_v2_envelope_is_malformed() {
        let framed = encode_envelope(
            &WireEnvelope {
                trace: Some(WireTraceContext {
                    trace_id: 7,
                    span_id: 9,
                }),
                budget_micros: Some(1),
            },
            &[],
        );
        for cut in 1..framed.len() {
            assert!(split_envelope_ext(&framed[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_flags = framed.clone();
        bad_flags[2] |= 0x80;
        assert!(split_envelope_ext(&bad_flags).is_err());
    }

    #[test]
    fn invalid_zone_coordinates_rejected() {
        // Hand-craft a RegisterZone with latitude 95°.
        let mut w = Writer::new();
        w.put_u8(REQ_REGISTER_ZONE);
        w.put_f64(95.0);
        w.put_f64(0.0);
        w.put_f64(10.0);
        assert!(Request::from_bytes(&w.into_bytes()).is_err());
    }
}
