//! Transports and the typed client.
//!
//! The deployed system speaks this protocol over a socket
//! ([`TcpTransport`](crate::wire::tcp::TcpTransport)); the reproduction
//! also provides an in-process transport (direct function call) plus a
//! deterministic fault-injecting wrapper used to test that both ends
//! treat the network as untrusted.
//!
//! [`Transport::call`] takes `&self`: every transport keeps its state
//! behind interior locks or atomics, so transports — and the
//! [`AuditorClient`] above them — are `Send + Sync` and shareable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alidrone_geo::{GeoPoint, NoFlyZone, Timestamp};
use alidrone_obs::{Counter, Level, Obs, SpanContext};

use crate::messages::{Accusation, ZoneQuery};
use crate::wire::server::AuditorServer;
use crate::wire::{
    encode_enveloped, request_kind_from_tag, request_kind_index, split_envelope, Request, Response,
    WireTraceContext,
};
use crate::{DroneId, ProtocolError, Verdict, ZoneId};

/// Client-side span names, indexed like
/// [`REQUEST_KINDS`](crate::wire::REQUEST_KINDS).
const WIRE_SPAN_NAMES: [&str; 6] = [
    "wire.register_drone",
    "wire.register_zone",
    "wire.query_zones",
    "wire.submit_poa",
    "wire.submit_encrypted_poa",
    "wire.accuse",
];

/// Peeks at a (possibly enveloped) request frame: the request kind from
/// its tag byte and the trace context, if present. Never fails —
/// unintelligible frames report as `"unknown"` with no trace id —
/// because fault injectors must be able to label whatever passes
/// through them.
fn peek_frame(request: &[u8]) -> (&'static str, Option<WireTraceContext>) {
    match split_envelope(request) {
        Ok((ctx, payload)) => (
            payload
                .first()
                .copied()
                .and_then(request_kind_from_tag)
                .unwrap_or("unknown"),
            ctx,
        ),
        Err(_) => ("unknown", None),
    }
}

/// A request/response byte transport.
///
/// `call` takes `&self` so one transport can serve concurrent callers;
/// implementations guard any connection or schedule state internally.
pub trait Transport {
    /// Sends one request frame and returns the response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for transport-level loss —
    /// [`ProtocolError::Transport`] for a lost frame,
    /// [`ProtocolError::Timeout`] for an elapsed socket deadline.
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError>;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        (**self).call(request, now)
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        (**self).call(request, now)
    }
}

/// Pre-registered transport traffic counters.
#[derive(Debug)]
struct TrafficMetrics {
    calls: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

impl TrafficMetrics {
    fn new(obs: &Obs) -> Self {
        TrafficMetrics {
            calls: obs.counter("transport.calls"),
            bytes_in: obs.counter("transport.bytes_in"),
            bytes_out: obs.counter("transport.bytes_out"),
        }
    }
}

/// Direct in-process delivery to an [`AuditorServer`].
///
/// Holds the server behind an `Arc`, so the same instance can also be
/// served by other transports (or inspected) concurrently.
#[derive(Debug)]
pub struct InProcess {
    server: Arc<AuditorServer>,
    metrics: TrafficMetrics,
}

impl InProcess {
    /// Wraps a server (traffic counters go to a private registry).
    pub fn new(server: AuditorServer) -> Self {
        InProcess::with_obs(server, &Obs::noop())
    }

    /// Wraps a server, counting calls and bytes in/out into `obs`.
    pub fn with_obs(server: AuditorServer, obs: &Obs) -> Self {
        InProcess::shared(Arc::new(server), obs)
    }

    /// Wraps an already-shared server — e.g. the same instance a
    /// [`TcpServer`](crate::wire::tcp::TcpServer) is serving.
    pub fn shared(server: Arc<AuditorServer>, obs: &Obs) -> Self {
        InProcess {
            server,
            metrics: TrafficMetrics::new(obs),
        }
    }

    /// Access to the wrapped server.
    pub fn server(&self) -> &AuditorServer {
        &self.server
    }

    /// A clone of the shared server handle.
    pub fn server_arc(&self) -> Arc<AuditorServer> {
        Arc::clone(&self.server)
    }
}

impl Transport for InProcess {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        self.metrics.calls.inc();
        self.metrics.bytes_in.add(request.len() as u64);
        let response = self.server.handle(request, now);
        self.metrics.bytes_out.add(response.len() as u64);
        Ok(response)
    }
}

/// Deterministic fault injection: drops every `drop_period`-th call
/// and/or flips one byte of every `corrupt_period`-th response.
///
/// The call counter is atomic, so the schedule stays exact (every
/// `p`-th call globally) even when the transport is shared across
/// threads — though cross-thread arrival order is then up to the
/// scheduler. Single-threaded use is fully deterministic.
#[derive(Debug)]
pub struct Flaky<T> {
    inner: T,
    drop_period: Option<u64>,
    corrupt_period: Option<u64>,
    calls: AtomicU64,
    obs: Obs,
    dropped: Arc<Counter>,
    corrupted: Arc<Counter>,
}

impl<T: Transport> Flaky<T> {
    /// Wraps a transport with no faults configured.
    pub fn new(inner: T) -> Self {
        Flaky::with_obs(inner, &Obs::noop())
    }

    /// As [`new`](Self::new), counting injected faults into `obs`.
    pub fn with_obs(inner: T, obs: &Obs) -> Self {
        Flaky {
            inner,
            drop_period: None,
            corrupt_period: None,
            calls: AtomicU64::new(0),
            obs: obs.clone(),
            dropped: obs.counter("transport.faults.dropped"),
            corrupted: obs.counter("transport.faults.corrupted"),
        }
    }

    /// Drops every `period`-th request (1-based).
    pub fn drop_every(mut self, period: u64) -> Self {
        self.drop_period = Some(period.max(1));
        self
    }

    /// Corrupts one byte of every `period`-th response (1-based).
    pub fn corrupt_every(mut self, period: u64) -> Self {
        self.corrupt_period = Some(period.max(1));
        self
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for Flaky<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.drop_period.is_some_and(|p| call.is_multiple_of(p)) {
            self.dropped.inc();
            self.obs
                .emit(Level::Warn, "wire.transport", "request_dropped", |f| {
                    // Tag the fault with what was lost, so injected
                    // faults are attributable in the flight recorder.
                    let (kind, trace) = peek_frame(request);
                    f.field("call", call).field("kind", kind);
                    if let Some(ctx) = trace {
                        f.field("trace_id", format!("{:032x}", ctx.trace_id));
                    }
                });
            return Err(ProtocolError::Transport("request lost".into()));
        }
        let mut resp = self.inner.call(request, now)?;
        if self.corrupt_period.is_some_and(|p| call.is_multiple_of(p)) {
            if let Some(b) = resp.get_mut(0) {
                *b ^= 0x55;
                self.corrupted.inc();
                self.obs
                    .emit(Level::Warn, "wire.transport", "response_corrupted", |f| {
                        let (kind, trace) = peek_frame(request);
                        f.field("call", call).field("kind", kind);
                        if let Some(ctx) = trace {
                            f.field("trace_id", format!("{:032x}", ctx.trace_id));
                        }
                    });
            }
        }
        Ok(resp)
    }
}

/// Retry policy for [`AuditorClient`]: bounded exponential backoff with
/// deterministic, seedable jitter.
///
/// Retries apply **only** to transport-level losses
/// ([`ProtocolError::is_transport`]) of **idempotent** request kinds
/// ([`Request::is_idempotent`]) — a lost zone query is surfaced to the
/// caller rather than replayed, because its nonce is already burned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter sequence: the same seed reproduces the same
    /// backoff schedule exactly (tested — determinism is part of the
    /// contract).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

/// A typed protocol client over any transport.
///
/// With an [`Obs`] handle attached (and a subscriber installed), every
/// request opens a `wire.<kind>` span whose trace context rides the
/// frame envelope to the server, stitching client and server spans
/// into one trace. Without one, requests go out as bare pre-envelope
/// frames.
///
/// With a [`RetryPolicy`] attached, each attempt additionally opens a
/// `wire.attempt` child span (and it is the *attempt's* context that
/// rides the envelope), so a retried call renders as one `wire.<kind>`
/// span with several attempt spans, each parenting its server span.
/// Retries increment the `transport.retries` counter; blown deadlines
/// increment `transport.timeouts`.
#[derive(Debug)]
pub struct AuditorClient<T> {
    transport: T,
    obs: Obs,
    trace_parent: Option<SpanContext>,
    retry: Option<RetryPolicy>,
    /// Jitter RNG state, advanced per retry (xorshift64).
    jitter_state: u64,
    /// Wall-clock budget per logical call, spanning all attempts.
    deadline: Option<Duration>,
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
}

impl<T: Transport> AuditorClient<T> {
    /// Creates a client over `transport` (untraced).
    pub fn new(transport: T) -> Self {
        AuditorClient::with_obs(transport, &Obs::noop())
    }

    /// Creates a client whose wire spans flow into `obs`.
    pub fn with_obs(transport: T, obs: &Obs) -> Self {
        AuditorClient {
            transport,
            obs: obs.clone(),
            trace_parent: None,
            retry: None,
            jitter_state: 0,
            deadline: None,
            retries: obs.counter("transport.retries"),
            timeouts: obs.counter("transport.timeouts"),
        }
    }

    /// Attaches a retry policy: transport-level failures of idempotent
    /// requests are resent with exponential backoff.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.jitter_state = policy.jitter_seed.max(1);
        self.retry = Some(policy);
        self
    }

    /// Caps the wall-clock time one logical call may spend across all
    /// its attempts (backoffs included). On expiry the call returns
    /// [`ProtocolError::Timeout`].
    pub fn deadline(mut self, per_call: Duration) -> Self {
        self.deadline = Some(per_call);
        self
    }

    /// Parents subsequent wire spans under `parent` instead of the
    /// handle's current span — e.g. under a completed flight span, so
    /// a post-landing submission joins the flight's trace. `None`
    /// restores automatic parenting.
    pub fn set_trace_parent(&mut self, parent: Option<SpanContext>) {
        self.trace_parent = parent;
    }

    /// The underlying transport (e.g. to reach the in-process server).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Shared access to the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Next jitter sample in `[0, cap]` (xorshift64 — deterministic for
    /// a given [`RetryPolicy::jitter_seed`]).
    fn next_jitter(&mut self, cap: Duration) -> Duration {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        let cap_us = cap.as_micros() as u64;
        if cap_us == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(x % (cap_us + 1))
    }

    /// Backoff before retry number `retry_no` (1-based): exponential
    /// from `base_backoff`, capped, plus jitter of up to half itself.
    fn backoff_for(&mut self, policy: &RetryPolicy, retry_no: u32) -> Duration {
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << retry_no.saturating_sub(1).min(20));
        let capped = exp.min(policy.max_backoff);
        capped + self.next_jitter(capped / 2)
    }

    fn roundtrip(&mut self, req: &Request, now: Timestamp) -> Result<Response, ProtocolError> {
        let kind = request_kind_index(req);
        let name = WIRE_SPAN_NAMES[kind];
        let span = match &self.trace_parent {
            Some(parent) => self.obs.span_with_parent(name, Some(parent)),
            None => self.obs.enter_span(name),
        };
        let payload = req.to_bytes();
        let max_attempts = match self.retry {
            Some(p) if req.is_idempotent() => p.max_attempts.max(1),
            _ => 1,
        };
        let started = Instant::now();
        let mut attempt = 0u32;
        let bytes = loop {
            attempt += 1;
            // Only a retry-capable client opens per-attempt spans: a
            // plain client keeps the historical single-span shape, so
            // the server span parents directly on `wire.<kind>`.
            let attempt_span = self
                .retry
                .is_some()
                .then(|| self.obs.enter_span("wire.attempt"));
            let envelope_ctx = attempt_span
                .as_ref()
                .and_then(|s| s.context())
                .or_else(|| span.context());
            let frame = match envelope_ctx {
                Some(ctx) => encode_enveloped(
                    WireTraceContext {
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                    },
                    &payload,
                ),
                None => payload.clone(),
            };
            let result = self.transport.call(&frame, now);
            if let Some(s) = attempt_span {
                s.finish();
            }
            match result {
                Ok(bytes) => break bytes,
                Err(e) if e.is_transport() && attempt < max_attempts => {
                    let policy = self.retry.expect("max_attempts > 1 implies a policy");
                    let backoff = self.backoff_for(&policy, attempt);
                    if let Some(deadline) = self.deadline {
                        // Never start a backoff the deadline cannot
                        // absorb: fail fast with Timeout instead.
                        if started.elapsed() + backoff >= deadline {
                            self.timeouts.inc();
                            return Err(ProtocolError::Timeout);
                        }
                    }
                    self.retries.inc();
                    self.obs.emit(Level::Warn, "wire.client", "retrying", |f| {
                        f.field("kind", crate::wire::REQUEST_KINDS[kind])
                            .field("attempt", attempt as u64)
                            .field("backoff_us", backoff.as_micros() as u64)
                            .field("error", e.to_string());
                    });
                    std::thread::sleep(backoff);
                }
                Err(e) => {
                    if matches!(e, ProtocolError::Timeout) {
                        self.timeouts.inc();
                    }
                    return Err(e);
                }
            }
        };
        // `span` stays live (and on the handle's span stack) until this
        // function returns, so it covers transport, server handling on
        // in-process transports, and response decoding.
        let resp = Response::from_bytes(&bytes)?;
        if let Response::Error { code, .. } = &resp {
            // Map wire error codes back onto typed errors where callers
            // branch on them; everything else is opaque.
            return Err(match code {
                crate::wire::ErrorCode::NonceReplayed => ProtocolError::NonceReplayed,
                crate::wire::ErrorCode::BadSignature => ProtocolError::QuerySignatureInvalid,
                _ => ProtocolError::Malformed("server error"),
            });
        }
        Ok(resp)
    }

    /// Registers a drone; returns the issued id.
    ///
    /// # Errors
    ///
    /// Transport loss, framing, or server-side rejection.
    pub fn register_drone(
        &mut self,
        operator_public: alidrone_crypto::rsa::RsaPublicKey,
        tee_public: alidrone_crypto::rsa::RsaPublicKey,
        now: Timestamp,
    ) -> Result<DroneId, ProtocolError> {
        match self.roundtrip(
            &Request::RegisterDrone {
                operator_public,
                tee_public,
            },
            now,
        )? {
            Response::DroneRegistered(id) => Ok(id),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Registers a zone; returns the issued id.
    #[allow(missing_docs)]
    pub fn register_zone(
        &mut self,
        zone: NoFlyZone,
        now: Timestamp,
    ) -> Result<ZoneId, ProtocolError> {
        match self.roundtrip(&Request::RegisterZone { zone }, now)? {
            Response::ZoneRegistered(id) => Ok(id),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Sends a signed zone query.
    #[allow(missing_docs)]
    pub fn query_zones(
        &mut self,
        query: ZoneQuery,
        now: Timestamp,
    ) -> Result<Vec<(ZoneId, NoFlyZone)>, ProtocolError> {
        match self.roundtrip(&Request::QueryZones(query), now)? {
            Response::Zones(z) => Ok(z),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Submits a plaintext PoA; returns the verdict.
    #[allow(missing_docs)]
    pub fn submit_poa(
        &mut self,
        drone_id: DroneId,
        window: (Timestamp, Timestamp),
        poa: &crate::ProofOfAlibi,
        now: Timestamp,
    ) -> Result<Verdict, ProtocolError> {
        match self.roundtrip(
            &Request::SubmitPoa {
                drone_id,
                window_start: window.0,
                window_end: window.1,
                poa: poa.to_bytes(),
            },
            now,
        )? {
            Response::Verdict(v) => Ok(v),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Submits an encrypted PoA; returns the verdict.
    #[allow(missing_docs)]
    pub fn submit_encrypted_poa(
        &mut self,
        drone_id: DroneId,
        window: (Timestamp, Timestamp),
        encrypted: &crate::EncryptedPoa,
        now: Timestamp,
    ) -> Result<Verdict, ProtocolError> {
        match self.roundtrip(
            &Request::SubmitEncryptedPoa {
                drone_id,
                window_start: window.0,
                window_end: window.1,
                blocks: encrypted.blocks().to_vec(),
            },
            now,
        )? {
            Response::Verdict(v) => Ok(v),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Files an accusation; returns `(refuted, reason)`.
    #[allow(missing_docs)]
    pub fn accuse(
        &mut self,
        accusation: Accusation,
        now: Timestamp,
    ) -> Result<(bool, String), ProtocolError> {
        match self.roundtrip(&Request::Accuse(accusation), now)? {
            Response::Accusation { refuted, reason } => Ok((refuted, reason)),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Convenience: builds and sends a query for a rectangle.
    #[allow(missing_docs)]
    pub fn query_rect(
        &mut self,
        drone_id: DroneId,
        corner1: GeoPoint,
        corner2: GeoPoint,
        nonce: [u8; 16],
        operator_key: &alidrone_crypto::rsa::RsaPrivateKey,
        now: Timestamp,
    ) -> Result<Vec<(ZoneId, NoFlyZone)>, ProtocolError> {
        let q = ZoneQuery::new_signed(drone_id, corner1, corner2, nonce, operator_key)?;
        self.query_zones(q, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, AuditorConfig};
    use crate::test_support::{auditor_key, operator_key, origin, signed_samples, tee_key};
    use crate::ProofOfAlibi;
    use alidrone_geo::Distance;

    fn client() -> AuditorClient<InProcess> {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        AuditorClient::new(InProcess::new(AuditorServer::builder(auditor).build()))
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(10.0)
    }

    #[test]
    fn typed_client_full_flow() {
        let mut c = client();
        let id = c
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let zid = c
            .register_zone(
                NoFlyZone::new(
                    origin().destination(0.0, Distance::from_km(50.0)),
                    Distance::from_meters(100.0),
                ),
                now(),
            )
            .unwrap();
        let zones = c
            .query_rect(
                id,
                origin().destination(225.0, Distance::from_km(100.0)),
                origin().destination(45.0, Distance::from_km(100.0)),
                [1u8; 16],
                operator_key(),
                now(),
            )
            .unwrap();
        assert_eq!(
            zones,
            vec![(zid, c.transport().server().auditor().zone(zid).unwrap())]
        );

        let poa = ProofOfAlibi::from_entries(signed_samples(5));
        let verdict = c
            .submit_poa(
                id,
                (Timestamp::from_secs(0.0), Timestamp::from_secs(4.0)),
                &poa,
                now(),
            )
            .unwrap();
        assert_eq!(verdict, Verdict::Compliant);

        let (refuted, _) = c
            .accuse(
                Accusation {
                    zone_id: zid,
                    drone_id: id,
                    time: Timestamp::from_secs(2.0),
                },
                now(),
            )
            .unwrap();
        assert!(refuted);
    }

    #[test]
    fn replayed_query_maps_to_typed_error() {
        let mut c = client();
        let id = c
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let q = ZoneQuery::new_signed(id, origin(), origin(), [2u8; 16], operator_key()).unwrap();
        c.query_zones(q.clone(), now()).unwrap();
        assert_eq!(
            c.query_zones(q, now()).unwrap_err(),
            ProtocolError::NonceReplayed
        );
    }

    #[test]
    fn dropped_requests_surface_as_errors() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(2);
        let mut c = AuditorClient::new(flaky);
        // First call passes, second is dropped, third passes.
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now(),)
            .is_err());
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
    }

    #[test]
    fn corrupted_responses_are_rejected_not_misparsed() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).corrupt_every(1);
        let mut c = AuditorClient::new(flaky);
        // Every response is corrupted: the client must error, never
        // return a bogus typed value.
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now(),)
            .is_err());
    }

    #[test]
    fn traffic_and_fault_counters_accumulate() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        let flaky = Flaky::with_obs(InProcess::with_obs(server, &obs), &obs).drop_every(2);
        let mut c = AuditorClient::new(flaky);
        for _ in 0..4 {
            let _ = c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now());
        }
        let snap = obs.snapshot();
        // Calls 2 and 4 dropped before reaching the in-process layer.
        assert_eq!(snap.counter("transport.faults.dropped"), 2);
        assert_eq!(snap.counter("transport.calls"), 2);
        assert!(snap.counter("transport.bytes_in") > 0);
        assert!(snap.counter("transport.bytes_out") > 0);
        assert_eq!(snap.counter("server.requests"), 2);
    }

    #[test]
    fn traced_client_stitches_client_and_server_spans() {
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(64));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        let mut c = AuditorClient::with_obs(InProcess::with_obs(server, &obs), &obs);
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();

        let spans = rec.spans();
        let wire = spans
            .iter()
            .find(|s| s.name == "wire.register_zone")
            .expect("client span");
        let server_span = spans
            .iter()
            .find(|s| s.name == "server.register_zone")
            .expect("server span");
        assert_eq!(server_span.context.trace_id, wire.context.trace_id);
        assert_eq!(server_span.context.parent_id, Some(wire.context.span_id));
        assert_eq!(wire.context.parent_id, None);
    }

    #[test]
    fn untraced_client_sends_bare_frames_the_server_accepts() {
        // The server has tracing on; the client does not. Old-style
        // bare frames must keep working and produce root server spans.
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        let mut c = AuditorClient::new(InProcess::new(server));
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "server.register_zone");
        assert_eq!(spans[0].context.parent_id, None);
    }

    #[test]
    fn flaky_fault_events_carry_kind_and_trace_id() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::with_obs(
            InProcess::new(AuditorServer::builder(auditor).build()),
            &obs,
        )
        .drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs);
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .is_err());

        let dropped = ring.events_where(|e| e.message == "request_dropped");
        assert_eq!(dropped.len(), 1);
        assert_eq!(
            dropped[0].field("kind").unwrap().as_str(),
            Some("register_zone")
        );
        let trace_hex = dropped[0].field("trace_id").unwrap().as_str().unwrap();
        assert_eq!(trace_hex.len(), 32);
        assert!(trace_hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn flaky_corrupt_events_carry_kind() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::with_obs(
            InProcess::new(AuditorServer::builder(auditor).build()),
            &obs,
        )
        .corrupt_every(1);
        let mut c = AuditorClient::new(flaky);
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .is_err());
        let corrupted = ring.events_where(|e| e.message == "response_corrupted");
        assert_eq!(corrupted.len(), 1);
        assert_eq!(
            corrupted[0].field("kind").unwrap().as_str(),
            Some("register_zone")
        );
        // Untraced client → bare frame → no trace id to attribute.
        assert!(corrupted[0].field("trace_id").is_none());
    }

    #[test]
    fn server_state_persists_across_transport_faults() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(3);
        let mut c = AuditorClient::new(flaky);
        let mut registered = 0;
        for _ in 0..9 {
            if c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .is_ok()
            {
                registered += 1;
            }
        }
        assert_eq!(registered, 6); // every third call dropped
    }

    fn fast_retry(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(400),
            jitter_seed: seed,
        }
    }

    #[test]
    fn retry_recovers_idempotent_calls_from_transport_loss() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        // Calls 2, 4, 6, … are dropped; with retries every logical call
        // still lands.
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(2);
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(7));
        for _ in 0..6 {
            c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .unwrap();
        }
        let snap = obs.snapshot();
        // Physical schedule: 1 ok, 2 drop, 3 ok, 4 drop, 5 ok, … —
        // after the first call every logical call burns one retry, so
        // 6 logical calls = 11 physical = 5 retries. Pinned exactly to
        // catch schedule drift.
        assert_eq!(snap.counter("transport.retries"), 5);
        assert_eq!(snap.counter("transport.timeouts"), 0);
    }

    #[test]
    fn retry_attempt_count_is_deterministic_for_a_seed() {
        // Same seed, same fault schedule → byte-identical retry
        // behaviour: attempt counts and outcomes match across runs.
        let run = |seed: u64| -> (u64, u64, usize) {
            let obs = Obs::noop();
            let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
            let flaky = Flaky::with_obs(
                InProcess::new(AuditorServer::builder(auditor).build()),
                &obs,
            )
            .drop_every(3);
            let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(seed));
            let mut ok = 0;
            for _ in 0..10 {
                if c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                    .is_ok()
                {
                    ok += 1;
                }
            }
            let snap = obs.snapshot();
            (
                snap.counter("transport.retries"),
                snap.counter("transport.calls"),
                ok,
            )
        };
        let a = run(0xAB);
        let b = run(0xAB);
        assert_eq!(a, b);
        // And with retries every logical call eventually succeeds.
        assert_eq!(a.2, 10);
    }

    #[test]
    fn non_idempotent_queries_are_never_retried() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(1); // drop everything
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(1));
        let id = DroneId::new(1); // never reaches the server anyway
        let q = ZoneQuery::new_signed(id, origin(), origin(), [9u8; 16], operator_key()).unwrap();
        let err = c.query_zones(q, now()).unwrap_err();
        assert!(err.is_transport());
        // One attempt only: the nonce is burned server-side on first
        // delivery, so a replayed query could never succeed.
        assert_eq!(obs.snapshot().counter("transport.retries"), 0);
    }

    #[test]
    fn exhausted_retries_surface_the_transport_error() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(2));
        let err = c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)));
        assert_eq!(obs.snapshot().counter("transport.retries"), 2); // 3 attempts
    }

    #[test]
    fn deadline_caps_the_retry_loop_with_timeout() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs)
            .retry(RetryPolicy {
                max_attempts: 100,
                base_backoff: Duration::from_millis(40),
                max_backoff: Duration::from_millis(40),
                jitter_seed: 3,
            })
            .deadline(Duration::from_millis(20));
        let err = c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap_err();
        assert_eq!(err, ProtocolError::Timeout);
        assert_eq!(obs.snapshot().counter("transport.timeouts"), 1);
    }

    #[test]
    fn retried_call_is_one_trace_with_attempt_spans() {
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(64));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        // Call 1 (the probe) succeeds; call 2 is dropped, so logical
        // call #2 takes attempts 2 and 3.
        let flaky = Flaky::with_obs(InProcess::with_obs(server, &obs), &obs).drop_every(2);
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(11));
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();

        let spans = rec.spans();
        let wire: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "wire.register_zone")
            .collect();
        assert_eq!(wire.len(), 2);
        let retried = wire[1];
        // Two attempt spans under the second wire span, one trace id.
        let attempts: Vec<_> = spans
            .iter()
            .filter(|s| {
                s.name == "wire.attempt" && s.context.parent_id == Some(retried.context.span_id)
            })
            .collect();
        assert_eq!(attempts.len(), 2);
        // The server span of the successful attempt parents on that
        // attempt's span, in the same trace.
        let server_spans: Vec<_> = spans
            .iter()
            .filter(|s| {
                s.name == "server.register_zone" && s.context.trace_id == retried.context.trace_id
            })
            .collect();
        assert_eq!(server_spans.len(), 1);
        assert_eq!(
            server_spans[0].context.parent_id,
            Some(attempts[1].context.span_id)
        );
    }

    #[test]
    fn transports_and_client_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InProcess>();
        assert_send_sync::<Flaky<InProcess>>();
        assert_send_sync::<AuditorClient<InProcess>>();
        assert_send_sync::<AuditorClient<Flaky<InProcess>>>();
    }
}
