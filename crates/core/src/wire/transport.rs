//! Transports and the typed client.
//!
//! The deployed system would speak this protocol over a socket; the
//! reproduction provides an in-process transport (direct function call)
//! plus a deterministic fault-injecting wrapper used to test that both
//! ends treat the network as untrusted.

use std::sync::Arc;

use alidrone_geo::{GeoPoint, NoFlyZone, Timestamp};
use alidrone_obs::{Counter, Level, Obs, SpanContext};

use crate::messages::{Accusation, ZoneQuery};
use crate::wire::server::AuditorServer;
use crate::wire::{
    encode_enveloped, request_kind_from_tag, request_kind_index, split_envelope, Request, Response,
    WireTraceContext,
};
use crate::{DroneId, ProtocolError, Verdict, ZoneId};

/// Client-side span names, indexed like
/// [`REQUEST_KINDS`](crate::wire::REQUEST_KINDS).
const WIRE_SPAN_NAMES: [&str; 6] = [
    "wire.register_drone",
    "wire.register_zone",
    "wire.query_zones",
    "wire.submit_poa",
    "wire.submit_encrypted_poa",
    "wire.accuse",
];

/// Peeks at a (possibly enveloped) request frame: the request kind from
/// its tag byte and the trace context, if present. Never fails —
/// unintelligible frames report as `"unknown"` with no trace id —
/// because fault injectors must be able to label whatever passes
/// through them.
fn peek_frame(request: &[u8]) -> (&'static str, Option<WireTraceContext>) {
    match split_envelope(request) {
        Ok((ctx, payload)) => (
            payload
                .first()
                .copied()
                .and_then(request_kind_from_tag)
                .unwrap_or("unknown"),
            ctx,
        ),
        Err(_) => ("unknown", None),
    }
}

/// A request/response byte transport.
pub trait Transport {
    /// Sends one request frame and returns the response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for transport-level loss.
    fn call(&mut self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError>;
}

/// Pre-registered transport traffic counters.
#[derive(Debug)]
struct TrafficMetrics {
    calls: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

impl TrafficMetrics {
    fn new(obs: &Obs) -> Self {
        TrafficMetrics {
            calls: obs.counter("transport.calls"),
            bytes_in: obs.counter("transport.bytes_in"),
            bytes_out: obs.counter("transport.bytes_out"),
        }
    }
}

/// Direct in-process delivery to an [`AuditorServer`].
#[derive(Debug)]
pub struct InProcess {
    server: AuditorServer,
    metrics: TrafficMetrics,
}

impl InProcess {
    /// Wraps a server (traffic counters go to a private registry).
    pub fn new(server: AuditorServer) -> Self {
        InProcess::with_obs(server, &Obs::noop())
    }

    /// Wraps a server, counting calls and bytes in/out into `obs`.
    pub fn with_obs(server: AuditorServer, obs: &Obs) -> Self {
        InProcess {
            server,
            metrics: TrafficMetrics::new(obs),
        }
    }

    /// Access to the wrapped server.
    pub fn server(&self) -> &AuditorServer {
        &self.server
    }

    /// Mutable access to the wrapped server.
    pub fn server_mut(&mut self) -> &mut AuditorServer {
        &mut self.server
    }
}

impl Transport for InProcess {
    fn call(&mut self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        self.metrics.calls.inc();
        self.metrics.bytes_in.add(request.len() as u64);
        let response = self.server.handle(request, now);
        self.metrics.bytes_out.add(response.len() as u64);
        Ok(response)
    }
}

/// Deterministic fault injection: drops every `drop_period`-th call
/// and/or flips one byte of every `corrupt_period`-th response.
#[derive(Debug)]
pub struct Flaky<T> {
    inner: T,
    drop_period: Option<u64>,
    corrupt_period: Option<u64>,
    calls: u64,
    obs: Obs,
    dropped: Arc<Counter>,
    corrupted: Arc<Counter>,
}

impl<T: Transport> Flaky<T> {
    /// Wraps a transport with no faults configured.
    pub fn new(inner: T) -> Self {
        Flaky::with_obs(inner, &Obs::noop())
    }

    /// As [`new`](Self::new), counting injected faults into `obs`.
    pub fn with_obs(inner: T, obs: &Obs) -> Self {
        Flaky {
            inner,
            drop_period: None,
            corrupt_period: None,
            calls: 0,
            obs: obs.clone(),
            dropped: obs.counter("transport.faults.dropped"),
            corrupted: obs.counter("transport.faults.corrupted"),
        }
    }

    /// Drops every `period`-th request (1-based).
    pub fn drop_every(mut self, period: u64) -> Self {
        self.drop_period = Some(period.max(1));
        self
    }

    /// Corrupts one byte of every `period`-th response (1-based).
    pub fn corrupt_every(mut self, period: u64) -> Self {
        self.corrupt_period = Some(period.max(1));
        self
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for Flaky<T> {
    fn call(&mut self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        self.calls += 1;
        if self
            .drop_period
            .is_some_and(|p| self.calls.is_multiple_of(p))
        {
            self.dropped.inc();
            let call = self.calls;
            self.obs
                .emit(Level::Warn, "wire.transport", "request_dropped", |f| {
                    // Tag the fault with what was lost, so injected
                    // faults are attributable in the flight recorder.
                    let (kind, trace) = peek_frame(request);
                    f.field("call", call).field("kind", kind);
                    if let Some(ctx) = trace {
                        f.field("trace_id", format!("{:032x}", ctx.trace_id));
                    }
                });
            return Err(ProtocolError::Malformed("transport: request lost"));
        }
        let mut resp = self.inner.call(request, now)?;
        if self
            .corrupt_period
            .is_some_and(|p| self.calls.is_multiple_of(p))
        {
            if let Some(b) = resp.get_mut(0) {
                *b ^= 0x55;
                self.corrupted.inc();
                let call = self.calls;
                self.obs
                    .emit(Level::Warn, "wire.transport", "response_corrupted", |f| {
                        let (kind, trace) = peek_frame(request);
                        f.field("call", call).field("kind", kind);
                        if let Some(ctx) = trace {
                            f.field("trace_id", format!("{:032x}", ctx.trace_id));
                        }
                    });
            }
        }
        Ok(resp)
    }
}

/// A typed protocol client over any transport.
///
/// With an [`Obs`] handle attached (and a subscriber installed), every
/// request opens a `wire.<kind>` span whose trace context rides the
/// frame envelope to the server, stitching client and server spans
/// into one trace. Without one, requests go out as bare pre-envelope
/// frames.
#[derive(Debug)]
pub struct AuditorClient<T> {
    transport: T,
    obs: Obs,
    trace_parent: Option<SpanContext>,
}

impl<T: Transport> AuditorClient<T> {
    /// Creates a client over `transport` (untraced).
    pub fn new(transport: T) -> Self {
        AuditorClient::with_obs(transport, &Obs::noop())
    }

    /// Creates a client whose wire spans flow into `obs`.
    pub fn with_obs(transport: T, obs: &Obs) -> Self {
        AuditorClient {
            transport,
            obs: obs.clone(),
            trace_parent: None,
        }
    }

    /// Parents subsequent wire spans under `parent` instead of the
    /// handle's current span — e.g. under a completed flight span, so
    /// a post-landing submission joins the flight's trace. `None`
    /// restores automatic parenting.
    pub fn set_trace_parent(&mut self, parent: Option<SpanContext>) {
        self.trace_parent = parent;
    }

    /// The underlying transport (e.g. to reach the in-process server).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn roundtrip(&mut self, req: &Request, now: Timestamp) -> Result<Response, ProtocolError> {
        let name = WIRE_SPAN_NAMES[request_kind_index(req)];
        let span = match &self.trace_parent {
            Some(parent) => self.obs.span_with_parent(name, Some(parent)),
            None => self.obs.enter_span(name),
        };
        let payload = req.to_bytes();
        let frame = match span.context() {
            Some(ctx) => encode_enveloped(
                WireTraceContext {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                },
                &payload,
            ),
            None => payload,
        };
        // `span` stays live (and on the handle's span stack) until this
        // function returns, so it covers transport, server handling on
        // in-process transports, and response decoding.
        let bytes = self.transport.call(&frame, now)?;
        let resp = Response::from_bytes(&bytes)?;
        if let Response::Error { code, .. } = &resp {
            // Map wire error codes back onto typed errors where callers
            // branch on them; everything else is opaque.
            return Err(match code {
                crate::wire::ErrorCode::NonceReplayed => ProtocolError::NonceReplayed,
                crate::wire::ErrorCode::BadSignature => ProtocolError::QuerySignatureInvalid,
                _ => ProtocolError::Malformed("server error"),
            });
        }
        Ok(resp)
    }

    /// Registers a drone; returns the issued id.
    ///
    /// # Errors
    ///
    /// Transport loss, framing, or server-side rejection.
    pub fn register_drone(
        &mut self,
        operator_public: alidrone_crypto::rsa::RsaPublicKey,
        tee_public: alidrone_crypto::rsa::RsaPublicKey,
        now: Timestamp,
    ) -> Result<DroneId, ProtocolError> {
        match self.roundtrip(
            &Request::RegisterDrone {
                operator_public,
                tee_public,
            },
            now,
        )? {
            Response::DroneRegistered(id) => Ok(id),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Registers a zone; returns the issued id.
    #[allow(missing_docs)]
    pub fn register_zone(
        &mut self,
        zone: NoFlyZone,
        now: Timestamp,
    ) -> Result<ZoneId, ProtocolError> {
        match self.roundtrip(&Request::RegisterZone { zone }, now)? {
            Response::ZoneRegistered(id) => Ok(id),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Sends a signed zone query.
    #[allow(missing_docs)]
    pub fn query_zones(
        &mut self,
        query: ZoneQuery,
        now: Timestamp,
    ) -> Result<Vec<(ZoneId, NoFlyZone)>, ProtocolError> {
        match self.roundtrip(&Request::QueryZones(query), now)? {
            Response::Zones(z) => Ok(z),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Submits a plaintext PoA; returns the verdict.
    #[allow(missing_docs)]
    pub fn submit_poa(
        &mut self,
        drone_id: DroneId,
        window: (Timestamp, Timestamp),
        poa: &crate::ProofOfAlibi,
        now: Timestamp,
    ) -> Result<Verdict, ProtocolError> {
        match self.roundtrip(
            &Request::SubmitPoa {
                drone_id,
                window_start: window.0,
                window_end: window.1,
                poa: poa.to_bytes(),
            },
            now,
        )? {
            Response::Verdict(v) => Ok(v),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Submits an encrypted PoA; returns the verdict.
    #[allow(missing_docs)]
    pub fn submit_encrypted_poa(
        &mut self,
        drone_id: DroneId,
        window: (Timestamp, Timestamp),
        encrypted: &crate::EncryptedPoa,
        now: Timestamp,
    ) -> Result<Verdict, ProtocolError> {
        match self.roundtrip(
            &Request::SubmitEncryptedPoa {
                drone_id,
                window_start: window.0,
                window_end: window.1,
                blocks: encrypted.blocks().to_vec(),
            },
            now,
        )? {
            Response::Verdict(v) => Ok(v),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Files an accusation; returns `(refuted, reason)`.
    #[allow(missing_docs)]
    pub fn accuse(
        &mut self,
        accusation: Accusation,
        now: Timestamp,
    ) -> Result<(bool, String), ProtocolError> {
        match self.roundtrip(&Request::Accuse(accusation), now)? {
            Response::Accusation { refuted, reason } => Ok((refuted, reason)),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Convenience: builds and sends a query for a rectangle.
    #[allow(missing_docs)]
    pub fn query_rect(
        &mut self,
        drone_id: DroneId,
        corner1: GeoPoint,
        corner2: GeoPoint,
        nonce: [u8; 16],
        operator_key: &alidrone_crypto::rsa::RsaPrivateKey,
        now: Timestamp,
    ) -> Result<Vec<(ZoneId, NoFlyZone)>, ProtocolError> {
        let q = ZoneQuery::new_signed(drone_id, corner1, corner2, nonce, operator_key)?;
        self.query_zones(q, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, AuditorConfig};
    use crate::test_support::{auditor_key, operator_key, origin, signed_samples, tee_key};
    use crate::ProofOfAlibi;
    use alidrone_geo::Distance;

    fn client() -> AuditorClient<InProcess> {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        AuditorClient::new(InProcess::new(AuditorServer::new(auditor)))
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(10.0)
    }

    #[test]
    fn typed_client_full_flow() {
        let mut c = client();
        let id = c
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let zid = c
            .register_zone(
                NoFlyZone::new(
                    origin().destination(0.0, Distance::from_km(50.0)),
                    Distance::from_meters(100.0),
                ),
                now(),
            )
            .unwrap();
        let zones = c
            .query_rect(
                id,
                origin().destination(225.0, Distance::from_km(100.0)),
                origin().destination(45.0, Distance::from_km(100.0)),
                [1u8; 16],
                operator_key(),
                now(),
            )
            .unwrap();
        assert_eq!(
            zones,
            vec![(
                zid,
                *c.transport_mut().server().auditor().zone(zid).unwrap()
            )]
        );

        let poa = ProofOfAlibi::from_entries(signed_samples(5));
        let verdict = c
            .submit_poa(
                id,
                (Timestamp::from_secs(0.0), Timestamp::from_secs(4.0)),
                &poa,
                now(),
            )
            .unwrap();
        assert_eq!(verdict, Verdict::Compliant);

        let (refuted, _) = c
            .accuse(
                Accusation {
                    zone_id: zid,
                    drone_id: id,
                    time: Timestamp::from_secs(2.0),
                },
                now(),
            )
            .unwrap();
        assert!(refuted);
    }

    #[test]
    fn replayed_query_maps_to_typed_error() {
        let mut c = client();
        let id = c
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let q = ZoneQuery::new_signed(id, origin(), origin(), [2u8; 16], operator_key()).unwrap();
        c.query_zones(q.clone(), now()).unwrap();
        assert_eq!(
            c.query_zones(q, now()).unwrap_err(),
            ProtocolError::NonceReplayed
        );
    }

    #[test]
    fn dropped_requests_surface_as_errors() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::new(InProcess::new(AuditorServer::new(auditor))).drop_every(2);
        let mut c = AuditorClient::new(flaky);
        // First call passes, second is dropped, third passes.
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now(),)
            .is_err());
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
    }

    #[test]
    fn corrupted_responses_are_rejected_not_misparsed() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::new(InProcess::new(AuditorServer::new(auditor))).corrupt_every(1);
        let mut c = AuditorClient::new(flaky);
        // Every response is corrupted: the client must error, never
        // return a bogus typed value.
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now(),)
            .is_err());
    }

    #[test]
    fn traffic_and_fault_counters_accumulate() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::with_obs(auditor, &obs);
        let flaky = Flaky::with_obs(InProcess::with_obs(server, &obs), &obs).drop_every(2);
        let mut c = AuditorClient::new(flaky);
        for _ in 0..4 {
            let _ = c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now());
        }
        let snap = obs.snapshot();
        // Calls 2 and 4 dropped before reaching the in-process layer.
        assert_eq!(snap.counter("transport.faults.dropped"), 2);
        assert_eq!(snap.counter("transport.calls"), 2);
        assert!(snap.counter("transport.bytes_in") > 0);
        assert!(snap.counter("transport.bytes_out") > 0);
        assert_eq!(snap.counter("server.requests"), 2);
    }

    #[test]
    fn traced_client_stitches_client_and_server_spans() {
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(64));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::with_obs(auditor, &obs);
        let mut c = AuditorClient::with_obs(InProcess::with_obs(server, &obs), &obs);
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();

        let spans = rec.spans();
        let wire = spans
            .iter()
            .find(|s| s.name == "wire.register_zone")
            .expect("client span");
        let server_span = spans
            .iter()
            .find(|s| s.name == "server.register_zone")
            .expect("server span");
        assert_eq!(server_span.context.trace_id, wire.context.trace_id);
        assert_eq!(server_span.context.parent_id, Some(wire.context.span_id));
        assert_eq!(wire.context.parent_id, None);
    }

    #[test]
    fn untraced_client_sends_bare_frames_the_server_accepts() {
        // The server has tracing on; the client does not. Old-style
        // bare frames must keep working and produce root server spans.
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::with_obs(auditor, &obs);
        let mut c = AuditorClient::new(InProcess::new(server));
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "server.register_zone");
        assert_eq!(spans[0].context.parent_id, None);
    }

    #[test]
    fn flaky_fault_events_carry_kind_and_trace_id() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::with_obs(InProcess::new(AuditorServer::new(auditor)), &obs).drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs);
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .is_err());

        let dropped = ring.events_where(|e| e.message == "request_dropped");
        assert_eq!(dropped.len(), 1);
        assert_eq!(
            dropped[0].field("kind").unwrap().as_str(),
            Some("register_zone")
        );
        let trace_hex = dropped[0].field("trace_id").unwrap().as_str().unwrap();
        assert_eq!(trace_hex.len(), 32);
        assert!(trace_hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn flaky_corrupt_events_carry_kind() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::with_obs(InProcess::new(AuditorServer::new(auditor)), &obs).corrupt_every(1);
        let mut c = AuditorClient::new(flaky);
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .is_err());
        let corrupted = ring.events_where(|e| e.message == "response_corrupted");
        assert_eq!(corrupted.len(), 1);
        assert_eq!(
            corrupted[0].field("kind").unwrap().as_str(),
            Some("register_zone")
        );
        // Untraced client → bare frame → no trace id to attribute.
        assert!(corrupted[0].field("trace_id").is_none());
    }

    #[test]
    fn server_state_persists_across_transport_faults() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::new(InProcess::new(AuditorServer::new(auditor))).drop_every(3);
        let mut c = AuditorClient::new(flaky);
        let mut registered = 0;
        for _ in 0..9 {
            if c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .is_ok()
            {
                registered += 1;
            }
        }
        assert_eq!(registered, 6); // every third call dropped
    }
}
