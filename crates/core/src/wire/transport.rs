//! Transports and the typed client.
//!
//! The deployed system speaks this protocol over a socket
//! ([`TcpTransport`](crate::wire::tcp::TcpTransport)); the reproduction
//! also provides an in-process transport (direct function call) plus a
//! deterministic fault-injecting wrapper used to test that both ends
//! treat the network as untrusted.
//!
//! [`Transport::call`] takes `&self`: every transport keeps its state
//! behind interior locks or atomics, so transports — and the
//! [`AuditorClient`] above them — are `Send + Sync` and shareable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alidrone_geo::{GeoPoint, NoFlyZone, Timestamp};
use alidrone_obs::{Counter, Gauge, Level, Obs, SpanContext};

use crate::messages::{Accusation, ZoneQuery};
use crate::wire::server::AuditorServer;
use crate::wire::{
    encode_envelope, request_kind_from_tag, request_kind_index, split_envelope, Request, Response,
    WireEnvelope, WireTraceContext,
};
use crate::{DroneId, ProtocolError, Verdict, ZoneId};

/// Client-side span names, indexed like
/// [`REQUEST_KINDS`](crate::wire::REQUEST_KINDS).
const WIRE_SPAN_NAMES: [&str; 10] = [
    "wire.register_drone",
    "wire.register_zone",
    "wire.query_zones",
    "wire.submit_poa",
    "wire.submit_encrypted_poa",
    "wire.accuse",
    "wire.health_check",
    "wire.tree_head",
    "wire.inclusion_proof",
    "wire.consistency_proof",
];

/// Peeks at a (possibly enveloped) request frame: the request kind from
/// its tag byte and the trace context, if present. Never fails —
/// unintelligible frames report as `"unknown"` with no trace id —
/// because fault injectors must be able to label whatever passes
/// through them.
fn peek_frame(request: &[u8]) -> (&'static str, Option<WireTraceContext>) {
    match split_envelope(request) {
        Ok((ctx, payload)) => (
            payload
                .first()
                .copied()
                .and_then(request_kind_from_tag)
                .unwrap_or("unknown"),
            ctx,
        ),
        Err(_) => ("unknown", None),
    }
}

/// A request/response byte transport.
///
/// `call` takes `&self` so one transport can serve concurrent callers;
/// implementations guard any connection or schedule state internally.
pub trait Transport {
    /// Sends one request frame and returns the response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for transport-level loss —
    /// [`ProtocolError::Transport`] for a lost frame,
    /// [`ProtocolError::Timeout`] for an elapsed socket deadline.
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError>;
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        (**self).call(request, now)
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        (**self).call(request, now)
    }
}

/// Pre-registered transport traffic counters.
#[derive(Debug)]
struct TrafficMetrics {
    calls: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

impl TrafficMetrics {
    fn new(obs: &Obs) -> Self {
        TrafficMetrics {
            calls: obs.counter("transport.calls"),
            bytes_in: obs.counter("transport.bytes_in"),
            bytes_out: obs.counter("transport.bytes_out"),
        }
    }
}

/// Direct in-process delivery to an [`AuditorServer`].
///
/// Holds the server behind an `Arc`, so the same instance can also be
/// served by other transports (or inspected) concurrently.
#[derive(Debug)]
pub struct InProcess {
    server: Arc<AuditorServer>,
    metrics: TrafficMetrics,
}

impl InProcess {
    /// Wraps a server (traffic counters go to a private registry).
    pub fn new(server: AuditorServer) -> Self {
        InProcess::with_obs(server, &Obs::noop())
    }

    /// Wraps a server, counting calls and bytes in/out into `obs`.
    pub fn with_obs(server: AuditorServer, obs: &Obs) -> Self {
        InProcess::shared(Arc::new(server), obs)
    }

    /// Wraps an already-shared server — e.g. the same instance a
    /// [`TcpServer`](crate::wire::tcp::TcpServer) is serving.
    pub fn shared(server: Arc<AuditorServer>, obs: &Obs) -> Self {
        InProcess {
            server,
            metrics: TrafficMetrics::new(obs),
        }
    }

    /// Access to the wrapped server.
    pub fn server(&self) -> &AuditorServer {
        &self.server
    }

    /// A clone of the shared server handle.
    pub fn server_arc(&self) -> Arc<AuditorServer> {
        Arc::clone(&self.server)
    }
}

impl Transport for InProcess {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        self.metrics.calls.inc();
        self.metrics.bytes_in.add(request.len() as u64);
        let response = self.server.handle(request, now);
        self.metrics.bytes_out.add(response.len() as u64);
        Ok(response)
    }
}

/// Deterministic fault injection: drops every `drop_period`-th call
/// and/or flips one byte of every `corrupt_period`-th response.
///
/// The call counter is atomic, so the schedule stays exact (every
/// `p`-th call globally) even when the transport is shared across
/// threads — though cross-thread arrival order is then up to the
/// scheduler. Single-threaded use is fully deterministic.
#[derive(Debug)]
pub struct Flaky<T> {
    inner: T,
    drop_period: Option<u64>,
    corrupt_period: Option<u64>,
    calls: AtomicU64,
    obs: Obs,
    dropped: Arc<Counter>,
    corrupted: Arc<Counter>,
}

impl<T: Transport> Flaky<T> {
    /// Wraps a transport with no faults configured.
    pub fn new(inner: T) -> Self {
        Flaky::with_obs(inner, &Obs::noop())
    }

    /// As [`new`](Self::new), counting injected faults into `obs`.
    pub fn with_obs(inner: T, obs: &Obs) -> Self {
        Flaky {
            inner,
            drop_period: None,
            corrupt_period: None,
            calls: AtomicU64::new(0),
            obs: obs.clone(),
            dropped: obs.counter("transport.faults.dropped"),
            corrupted: obs.counter("transport.faults.corrupted"),
        }
    }

    /// Drops every `period`-th request (1-based).
    pub fn drop_every(mut self, period: u64) -> Self {
        self.drop_period = Some(period.max(1));
        self
    }

    /// Corrupts one byte of every `period`-th response (1-based).
    pub fn corrupt_every(mut self, period: u64) -> Self {
        self.corrupt_period = Some(period.max(1));
        self
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for Flaky<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.drop_period.is_some_and(|p| call.is_multiple_of(p)) {
            self.dropped.inc();
            self.obs
                .emit(Level::Warn, "wire.transport", "request_dropped", |f| {
                    // Tag the fault with what was lost, so injected
                    // faults are attributable in the flight recorder.
                    let (kind, trace) = peek_frame(request);
                    f.field("call", call).field("kind", kind);
                    if let Some(ctx) = trace {
                        f.field("trace_id", format!("{:032x}", ctx.trace_id));
                    }
                });
            return Err(ProtocolError::Transport("request lost".into()));
        }
        let mut resp = self.inner.call(request, now)?;
        if self.corrupt_period.is_some_and(|p| call.is_multiple_of(p)) {
            if let Some(b) = resp.get_mut(0) {
                *b ^= 0x55;
                self.corrupted.inc();
                self.obs
                    .emit(Level::Warn, "wire.transport", "response_corrupted", |f| {
                        let (kind, trace) = peek_frame(request);
                        f.field("call", call).field("kind", kind);
                        if let Some(ctx) = trace {
                            f.field("trace_id", format!("{:032x}", ctx.trace_id));
                        }
                    });
            }
        }
        Ok(resp)
    }
}

/// Retry policy for [`AuditorClient`]: bounded exponential backoff with
/// deterministic, seedable jitter.
///
/// Retries apply **only** to transport-level losses
/// ([`ProtocolError::is_transport`]) of **idempotent** request kinds
/// ([`Request::is_idempotent`]) — a lost zone query is surfaced to the
/// caller rather than replayed, because its nonce is already burned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter sequence: the same seed reproduces the same
    /// backoff schedule exactly (tested — determinism is part of the
    /// contract).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5EED,
        }
    }
}

/// Circuit-breaker policy for [`AuditorClient`]: after
/// `failure_threshold` consecutive transport/overload failures the
/// breaker opens and every call fails fast with
/// [`ProtocolError::CircuitOpen`] — no wire traffic — until the open
/// interval elapses. The first calls after that run **half-open**:
/// `half_open_successes` consecutive successes close the breaker, any
/// failure re-opens it.
///
/// The open interval is `open_secs` plus seeded jitter of up to half
/// itself (so a fleet of clients sharing a policy but different seeds
/// does not re-probe in lockstep), and never shorter than the server's
/// `retry_after_ms` hint when the opening failure carried one. Like
/// [`RetryPolicy`], a fixed `jitter_seed` reproduces the schedule
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Base open interval in seconds (sim-clock, not wall-clock).
    pub open_secs: f64,
    /// Consecutive half-open successes required to close again.
    pub half_open_successes: u32,
    /// Seed for the open-interval jitter sequence.
    pub jitter_seed: u64,
}

impl Default for CircuitBreakerPolicy {
    fn default() -> Self {
        CircuitBreakerPolicy {
            failure_threshold: 5,
            open_secs: 1.0,
            half_open_successes: 2,
            jitter_seed: 0xB0B5,
        }
    }
}

/// Observable circuit-breaker state (see
/// [`AuditorClient::breaker_snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Normal operation; counts the current failure streak.
    Closed {
        /// Consecutive failures since the last success.
        consecutive_failures: u32,
    },
    /// Failing fast; calls are rejected until `until` (sim-clock).
    Open {
        /// Sim-clock instant at which the breaker goes half-open.
        until: Timestamp,
    },
    /// Probing; counts successes toward closing.
    HalfOpen {
        /// Consecutive successful probes so far.
        probes_ok: u32,
    },
}

/// Breaker engine: state machine + counters. Timed by the sim-clock
/// `now` passed through [`Transport::call`], so chaos campaigns replay
/// the open/close schedule deterministically.
#[derive(Debug)]
struct Breaker {
    policy: CircuitBreakerPolicy,
    state: BreakerState,
    /// Jitter RNG state (xorshift64), advanced once per breaker open.
    jitter_state: u64,
    opened: Arc<Counter>,
    closed: Arc<Counter>,
    rejected: Arc<Counter>,
    half_open: Arc<Counter>,
    /// Live state for scrapes (`transport.breaker.state`): 0 = closed,
    /// 1 = open, 2 = half-open.
    state_gauge: Arc<Gauge>,
}

/// Gauge encoding of a breaker state, for `transport.breaker.state`.
fn breaker_state_code(state: &BreakerState) -> i64 {
    match state {
        BreakerState::Closed { .. } => 0,
        BreakerState::Open { .. } => 1,
        BreakerState::HalfOpen { .. } => 2,
    }
}

impl Breaker {
    fn new(policy: CircuitBreakerPolicy, obs: &Obs) -> Self {
        let state_gauge = obs.gauge("transport.breaker.state");
        state_gauge.set(0);
        Breaker {
            jitter_state: policy.jitter_seed.max(1),
            policy,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            opened: obs.counter("transport.breaker.opened"),
            closed: obs.counter("transport.breaker.closed"),
            rejected: obs.counter("transport.breaker.rejected"),
            half_open: obs.counter("transport.breaker.half_open"),
            state_gauge,
        }
    }

    /// The one write path for `state`, keeping the exported gauge in
    /// lockstep with every transition.
    fn transition(&mut self, state: BreakerState) {
        self.state_gauge.set(breaker_state_code(&state));
        self.state = state;
    }

    /// Gate at call entry: `Err(CircuitOpen)` while open, otherwise
    /// admits (transitioning open → half-open once `until` passes).
    fn admit(&mut self, now: Timestamp, obs: &Obs) -> Result<(), ProtocolError> {
        if let BreakerState::Open { until } = self.state {
            if now.secs() < until.secs() {
                self.rejected.inc();
                return Err(ProtocolError::CircuitOpen);
            }
            self.transition(BreakerState::HalfOpen { probes_ok: 0 });
            self.half_open.inc();
            obs.emit(Level::Info, "wire.client", "breaker_half_open", |f| {
                f.field("now_secs", now.secs());
            });
        }
        Ok(())
    }

    /// Records a successful attempt (any decoded response — the server
    /// answering at all is proof of connectivity, even if the answer is
    /// a typed application error).
    fn record_success(&mut self, obs: &Obs) {
        match self.state {
            BreakerState::Closed { .. } => {
                self.transition(BreakerState::Closed {
                    consecutive_failures: 0,
                });
            }
            BreakerState::HalfOpen { probes_ok } => {
                if probes_ok + 1 >= self.policy.half_open_successes.max(1) {
                    self.transition(BreakerState::Closed {
                        consecutive_failures: 0,
                    });
                    self.closed.inc();
                    obs.emit(Level::Info, "wire.client", "breaker_closed", |f| {
                        f.field("probes_ok", u64::from(probes_ok + 1));
                    });
                } else {
                    self.transition(BreakerState::HalfOpen {
                        probes_ok: probes_ok + 1,
                    });
                }
            }
            // A success cannot arrive while open: admit() rejects first.
            BreakerState::Open { .. } => {}
        }
    }

    /// Records a failed attempt (transport loss or an `Overloaded`
    /// shed). `retry_after_ms` is the server's hint, when present.
    fn record_failure(&mut self, now: Timestamp, retry_after_ms: Option<u64>, obs: &Obs) {
        let failures = match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => consecutive_failures + 1,
            // Any half-open failure re-opens immediately.
            BreakerState::HalfOpen { .. } => self.policy.failure_threshold.max(1),
            BreakerState::Open { .. } => return,
        };
        if failures >= self.policy.failure_threshold.max(1) {
            let interval = self.open_interval(retry_after_ms);
            let until = Timestamp::from_secs(now.secs() + interval.as_secs_f64());
            self.transition(BreakerState::Open { until });
            self.opened.inc();
            obs.emit(Level::Warn, "wire.client", "breaker_opened", |f| {
                f.field("until_secs", until.secs())
                    .field("open_us", interval.as_micros() as u64);
            });
        } else {
            self.transition(BreakerState::Closed {
                consecutive_failures: failures,
            });
        }
    }

    /// The open interval: `open_secs` + jitter in `[0, open_secs/2]`,
    /// floored by the server's `retry_after_ms` hint.
    fn open_interval(&mut self, retry_after_ms: Option<u64>) -> Duration {
        let base = Duration::from_secs_f64(self.policy.open_secs.max(0.0));
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        // µs precision; the u64 cast is exact for any open interval
        // under ~584k years.
        let cap_us = (base / 2).as_micros() as u64;
        let jitter = if cap_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(x % (cap_us + 1))
        };
        (base + jitter).max(Duration::from_millis(retry_after_ms.unwrap_or(0)))
    }
}

/// A typed protocol client over any transport.
///
/// With an [`Obs`] handle attached (and a subscriber installed), every
/// request opens a `wire.<kind>` span whose trace context rides the
/// frame envelope to the server, stitching client and server spans
/// into one trace. Without one, requests go out as bare pre-envelope
/// frames.
///
/// With a [`RetryPolicy`] attached, each attempt additionally opens a
/// `wire.attempt` child span (and it is the *attempt's* context that
/// rides the envelope), so a retried call renders as one `wire.<kind>`
/// span with several attempt spans, each parenting its server span.
/// Retries increment the `transport.retries` counter; blown deadlines
/// increment `transport.timeouts`.
#[derive(Debug)]
pub struct AuditorClient<T> {
    transport: T,
    obs: Obs,
    trace_parent: Option<SpanContext>,
    retry: Option<RetryPolicy>,
    /// Jitter RNG state, advanced per retry (xorshift64).
    jitter_state: u64,
    /// Wall-clock budget per logical call, spanning all attempts. Also
    /// propagated to the server as a remaining-budget envelope field so
    /// it can shed requests that have already expired in its queue.
    deadline: Option<Duration>,
    breaker: Option<Breaker>,
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
}

impl<T: Transport> AuditorClient<T> {
    /// Creates a client over `transport` (untraced).
    pub fn new(transport: T) -> Self {
        AuditorClient::with_obs(transport, &Obs::noop())
    }

    /// Creates a client whose wire spans flow into `obs`.
    pub fn with_obs(transport: T, obs: &Obs) -> Self {
        AuditorClient {
            transport,
            obs: obs.clone(),
            trace_parent: None,
            retry: None,
            jitter_state: 0,
            deadline: None,
            breaker: None,
            retries: obs.counter("transport.retries"),
            timeouts: obs.counter("transport.timeouts"),
        }
    }

    /// Attaches a retry policy: transport-level failures of idempotent
    /// requests are resent with exponential backoff.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.jitter_state = policy.jitter_seed.max(1);
        self.retry = Some(policy);
        self
    }

    /// Caps the wall-clock time one logical call may spend across all
    /// its attempts (backoffs included). On expiry the call returns
    /// [`ProtocolError::Timeout`].
    ///
    /// The *remaining* budget also rides each request's envelope
    /// (microseconds, relative — no clock sync needed), letting the
    /// server shed requests that expired while queued instead of
    /// executing them. Clients without a deadline send byte-identical
    /// pre-budget frames.
    pub fn deadline(mut self, per_call: Duration) -> Self {
        self.deadline = Some(per_call);
        self
    }

    /// Attaches a circuit breaker: after
    /// [`failure_threshold`](CircuitBreakerPolicy::failure_threshold)
    /// consecutive transport/overload failures, calls fail fast with
    /// [`ProtocolError::CircuitOpen`] until the open interval elapses
    /// on the sim clock, then probe half-open back to closed.
    pub fn circuit_breaker(mut self, policy: CircuitBreakerPolicy) -> Self {
        self.breaker = Some(Breaker::new(policy, &self.obs));
        self
    }

    /// The breaker's current state, or `None` if no breaker is
    /// attached. For tests and operator dashboards.
    pub fn breaker_snapshot(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.state)
    }

    /// Parents subsequent wire spans under `parent` instead of the
    /// handle's current span — e.g. under a completed flight span, so
    /// a post-landing submission joins the flight's trace. `None`
    /// restores automatic parenting.
    pub fn set_trace_parent(&mut self, parent: Option<SpanContext>) {
        self.trace_parent = parent;
    }

    /// The underlying transport (e.g. to reach the in-process server).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Shared access to the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Next jitter sample in `[0, cap]` (xorshift64 — deterministic for
    /// a given [`RetryPolicy::jitter_seed`]).
    fn next_jitter(&mut self, cap: Duration) -> Duration {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        let cap_us = cap.as_micros() as u64;
        if cap_us == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(x % (cap_us + 1))
    }

    /// Backoff before retry number `retry_no` (1-based): exponential
    /// from `base_backoff`, capped, plus jitter of up to half itself.
    fn backoff_for(&mut self, policy: &RetryPolicy, retry_no: u32) -> Duration {
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << retry_no.saturating_sub(1).min(20));
        let capped = exp.min(policy.max_backoff);
        capped + self.next_jitter(capped / 2)
    }

    /// Decodes a response frame into either a typed response or the
    /// typed error it encodes: `Overloaded` responses become
    /// [`ProtocolError::Overloaded`], `DeadlineExpired` server sheds
    /// become [`ProtocolError::Timeout`], and the error codes callers
    /// branch on map to their typed forms.
    fn decode_response(bytes: &[u8]) -> Result<Response, ProtocolError> {
        match Response::from_bytes(bytes)? {
            Response::Overloaded { retry_after_ms } => {
                Err(ProtocolError::Overloaded { retry_after_ms })
            }
            Response::Error { code, .. } => Err(match code {
                crate::wire::ErrorCode::NonceReplayed => ProtocolError::NonceReplayed,
                crate::wire::ErrorCode::BadSignature => ProtocolError::QuerySignatureInvalid,
                // The server shed the request unexecuted because its
                // budget expired in queue; to the caller that is a
                // deadline miss.
                crate::wire::ErrorCode::DeadlineExpired => ProtocolError::Timeout,
                _ => ProtocolError::Malformed("server error"),
            }),
            resp => Ok(resp),
        }
    }

    fn roundtrip(&mut self, req: &Request, now: Timestamp) -> Result<Response, ProtocolError> {
        if let Some(bk) = self.breaker.as_mut() {
            bk.admit(now, &self.obs)?;
        }
        let kind = request_kind_index(req);
        let name = WIRE_SPAN_NAMES[kind];
        let span = match &self.trace_parent {
            Some(parent) => self.obs.span_with_parent(name, Some(parent)),
            None => self.obs.enter_span(name),
        };
        let payload = req.to_bytes();
        let started = Instant::now();
        let mut attempt = 0u32;
        // `span` stays live (and on the handle's span stack) until this
        // function returns, so it covers transport, server handling on
        // in-process transports, and response decoding.
        loop {
            attempt += 1;
            // Remaining budget for this attempt. Zero means the
            // deadline passed during a backoff or a slow attempt: fail
            // fast rather than send a request the server would shed.
            let budget_micros = match self.deadline {
                Some(deadline) => {
                    let remaining = deadline.saturating_sub(started.elapsed());
                    if remaining.is_zero() {
                        self.timeouts.inc();
                        return Err(ProtocolError::Timeout);
                    }
                    // µs of any practical deadline fit u64; the cast
                    // saturates only past ~584k years.
                    Some(remaining.as_micros().min(u128::from(u64::MAX)) as u64)
                }
                None => None,
            };
            // Only a retry-capable client opens per-attempt spans: a
            // plain client keeps the historical single-span shape, so
            // the server span parents directly on `wire.<kind>`.
            let attempt_span = self
                .retry
                .is_some()
                .then(|| self.obs.enter_span("wire.attempt"));
            let envelope_ctx = attempt_span
                .as_ref()
                .and_then(|s| s.context())
                .or_else(|| span.context());
            let env = WireEnvelope {
                trace: envelope_ctx.map(|ctx| WireTraceContext {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                }),
                budget_micros,
            };
            let frame = encode_envelope(&env, &payload);
            let outcome = self
                .transport
                .call(&frame, now)
                .and_then(|bytes| Self::decode_response(&bytes));
            if let Some(s) = attempt_span {
                s.finish();
            }
            if let Some(bk) = self.breaker.as_mut() {
                match &outcome {
                    Err(ProtocolError::Overloaded { retry_after_ms }) => {
                        bk.record_failure(now, Some(*retry_after_ms), &self.obs);
                    }
                    Err(e) if e.is_transport() => bk.record_failure(now, None, &self.obs),
                    // Any decoded response — even a typed application
                    // error — proves the server is answering.
                    _ => bk.record_success(&self.obs),
                }
            }
            let err = match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            // Shed errors (`Overloaded`) are retryable for ANY request
            // kind — the server rejected before execution, so a resend
            // cannot double-apply. Transport losses stay
            // idempotent-only.
            let retryable = err.is_shed() || (err.is_transport() && req.is_idempotent());
            match self.retry {
                Some(policy) if retryable && attempt < policy.max_attempts.max(1) => {
                    let mut backoff = self.backoff_for(&policy, attempt);
                    if let ProtocolError::Overloaded { retry_after_ms } = &err {
                        // The server's shed hint floors the backoff.
                        backoff = backoff.max(Duration::from_millis(*retry_after_ms));
                    }
                    if let Some(deadline) = self.deadline {
                        // Never start a backoff the deadline cannot
                        // absorb: fail fast with Timeout instead.
                        if started.elapsed() + backoff >= deadline {
                            self.timeouts.inc();
                            return Err(ProtocolError::Timeout);
                        }
                    }
                    self.retries.inc();
                    self.obs.emit(Level::Warn, "wire.client", "retrying", |f| {
                        f.field("kind", crate::wire::REQUEST_KINDS[kind])
                            .field("attempt", attempt as u64)
                            .field("backoff_us", backoff.as_micros() as u64)
                            .field("error", err.to_string());
                    });
                    std::thread::sleep(backoff);
                }
                _ => {
                    if matches!(err, ProtocolError::Timeout) {
                        self.timeouts.inc();
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Registers a drone; returns the issued id.
    ///
    /// # Errors
    ///
    /// Transport loss, framing, or server-side rejection.
    pub fn register_drone(
        &mut self,
        operator_public: alidrone_crypto::rsa::RsaPublicKey,
        tee_public: alidrone_crypto::rsa::RsaPublicKey,
        now: Timestamp,
    ) -> Result<DroneId, ProtocolError> {
        match self.roundtrip(
            &Request::RegisterDrone {
                operator_public,
                tee_public,
            },
            now,
        )? {
            Response::DroneRegistered(id) => Ok(id),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Registers a zone; returns the issued id.
    #[allow(missing_docs)]
    pub fn register_zone(
        &mut self,
        zone: NoFlyZone,
        now: Timestamp,
    ) -> Result<ZoneId, ProtocolError> {
        match self.roundtrip(&Request::RegisterZone { zone }, now)? {
            Response::ZoneRegistered(id) => Ok(id),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Sends a signed zone query.
    #[allow(missing_docs)]
    pub fn query_zones(
        &mut self,
        query: ZoneQuery,
        now: Timestamp,
    ) -> Result<Vec<(ZoneId, NoFlyZone)>, ProtocolError> {
        match self.roundtrip(&Request::QueryZones(query), now)? {
            Response::Zones(z) => Ok(z),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Submits a plaintext PoA; returns the verdict.
    #[allow(missing_docs)]
    pub fn submit_poa(
        &mut self,
        drone_id: DroneId,
        window: (Timestamp, Timestamp),
        poa: &crate::ProofOfAlibi,
        now: Timestamp,
    ) -> Result<Verdict, ProtocolError> {
        match self.roundtrip(
            &Request::SubmitPoa {
                drone_id,
                window_start: window.0,
                window_end: window.1,
                poa: poa.to_bytes(),
            },
            now,
        )? {
            Response::Verdict(v) => Ok(v),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Submits an encrypted PoA; returns the verdict.
    #[allow(missing_docs)]
    pub fn submit_encrypted_poa(
        &mut self,
        drone_id: DroneId,
        window: (Timestamp, Timestamp),
        encrypted: &crate::EncryptedPoa,
        now: Timestamp,
    ) -> Result<Verdict, ProtocolError> {
        match self.roundtrip(
            &Request::SubmitEncryptedPoa {
                drone_id,
                window_start: window.0,
                window_end: window.1,
                blocks: encrypted.blocks().to_vec(),
            },
            now,
        )? {
            Response::Verdict(v) => Ok(v),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Files an accusation; returns `(refuted, reason)`.
    #[allow(missing_docs)]
    pub fn accuse(
        &mut self,
        accusation: Accusation,
        now: Timestamp,
    ) -> Result<(bool, String), ProtocolError> {
        match self.roundtrip(&Request::Accuse(accusation), now)? {
            Response::Accusation { refuted, reason } => Ok((refuted, reason)),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Probes server liveness; returns `(queue_depth, inflight)`. The
    /// server answers health checks without touching the auditor — and
    /// exempts them from shedding — so probes survive overload.
    #[allow(missing_docs)]
    pub fn health_check(&mut self, now: Timestamp) -> Result<(u32, u32), ProtocolError> {
        match self.roundtrip(&Request::HealthCheck, now)? {
            Response::Healthy {
                queue_depth,
                inflight,
            } => Ok((queue_depth, inflight)),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Fetches the auditor's current signed tree head. Verify it
    /// offline with
    /// [`SignedTreeHead::verify`](crate::audit::SignedTreeHead::verify)
    /// against the auditor's public key — the client never has to trust
    /// the transport.
    #[allow(missing_docs)]
    pub fn fetch_tree_head(
        &mut self,
        now: Timestamp,
    ) -> Result<crate::audit::SignedTreeHead, ProtocolError> {
        match self.roundtrip(&Request::FetchTreeHead, now)? {
            Response::TreeHead(sth) => Ok(sth),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Fetches a Merkle inclusion proof for the drone's latest stored
    /// verdict, against the tree of `tree_size` entries (`0` = current).
    /// Verify offline with
    /// [`audit::verify_inclusion`](crate::audit::verify_inclusion).
    #[allow(missing_docs)]
    pub fn fetch_inclusion_proof(
        &mut self,
        drone_id: DroneId,
        tree_size: u64,
        now: Timestamp,
    ) -> Result<crate::audit::InclusionProof, ProtocolError> {
        match self.roundtrip(
            &Request::FetchInclusionProof {
                drone_id,
                tree_size,
            },
            now,
        )? {
            Response::InclusionProof(proof) => Ok(proof),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Fetches a consistency proof between two tree sizes (`new_size`
    /// of `0` = current). Verify offline with
    /// [`audit::verify_consistency`](crate::audit::verify_consistency)
    /// to check the log is append-only between two observed heads.
    #[allow(missing_docs)]
    pub fn fetch_consistency_proof(
        &mut self,
        old_size: u64,
        new_size: u64,
        now: Timestamp,
    ) -> Result<crate::audit::ConsistencyProof, ProtocolError> {
        match self.roundtrip(&Request::FetchConsistencyProof { old_size, new_size }, now)? {
            Response::ConsistencyProof(proof) => Ok(proof),
            _ => Err(ProtocolError::Malformed("unexpected response kind")),
        }
    }

    /// Convenience: builds and sends a query for a rectangle.
    #[allow(missing_docs)]
    pub fn query_rect(
        &mut self,
        drone_id: DroneId,
        corner1: GeoPoint,
        corner2: GeoPoint,
        nonce: [u8; 16],
        operator_key: &alidrone_crypto::rsa::RsaPrivateKey,
        now: Timestamp,
    ) -> Result<Vec<(ZoneId, NoFlyZone)>, ProtocolError> {
        let q = ZoneQuery::new_signed(drone_id, corner1, corner2, nonce, operator_key)?;
        self.query_zones(q, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, AuditorConfig};
    use crate::test_support::{auditor_key, operator_key, origin, signed_samples, tee_key};
    use crate::ProofOfAlibi;
    use alidrone_geo::Distance;

    fn client() -> AuditorClient<InProcess> {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        AuditorClient::new(InProcess::new(AuditorServer::builder(auditor).build()))
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(10.0)
    }

    #[test]
    fn typed_client_full_flow() {
        let mut c = client();
        let id = c
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let zid = c
            .register_zone(
                NoFlyZone::new(
                    origin().destination(0.0, Distance::from_km(50.0)),
                    Distance::from_meters(100.0),
                ),
                now(),
            )
            .unwrap();
        let zones = c
            .query_rect(
                id,
                origin().destination(225.0, Distance::from_km(100.0)),
                origin().destination(45.0, Distance::from_km(100.0)),
                [1u8; 16],
                operator_key(),
                now(),
            )
            .unwrap();
        assert_eq!(
            zones,
            vec![(zid, c.transport().server().auditor().zone(zid).unwrap())]
        );

        let poa = ProofOfAlibi::from_entries(signed_samples(5));
        let verdict = c
            .submit_poa(
                id,
                (Timestamp::from_secs(0.0), Timestamp::from_secs(4.0)),
                &poa,
                now(),
            )
            .unwrap();
        assert_eq!(verdict, Verdict::Compliant);

        let (refuted, _) = c
            .accuse(
                Accusation {
                    zone_id: zid,
                    drone_id: id,
                    time: Timestamp::from_secs(2.0),
                },
                now(),
            )
            .unwrap();
        assert!(refuted);
    }

    #[test]
    fn replayed_query_maps_to_typed_error() {
        let mut c = client();
        let id = c
            .register_drone(
                operator_key().public_key().clone(),
                tee_key().public_key().clone(),
                now(),
            )
            .unwrap();
        let q = ZoneQuery::new_signed(id, origin(), origin(), [2u8; 16], operator_key()).unwrap();
        c.query_zones(q.clone(), now()).unwrap();
        assert_eq!(
            c.query_zones(q, now()).unwrap_err(),
            ProtocolError::NonceReplayed
        );
    }

    #[test]
    fn dropped_requests_surface_as_errors() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(2);
        let mut c = AuditorClient::new(flaky);
        // First call passes, second is dropped, third passes.
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now(),)
            .is_err());
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
    }

    #[test]
    fn corrupted_responses_are_rejected_not_misparsed() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).corrupt_every(1);
        let mut c = AuditorClient::new(flaky);
        // Every response is corrupted: the client must error, never
        // return a bogus typed value.
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now(),)
            .is_err());
    }

    #[test]
    fn traffic_and_fault_counters_accumulate() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        let flaky = Flaky::with_obs(InProcess::with_obs(server, &obs), &obs).drop_every(2);
        let mut c = AuditorClient::new(flaky);
        for _ in 0..4 {
            let _ = c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now());
        }
        let snap = obs.snapshot();
        // Calls 2 and 4 dropped before reaching the in-process layer.
        assert_eq!(snap.counter("transport.faults.dropped"), 2);
        assert_eq!(snap.counter("transport.calls"), 2);
        assert!(snap.counter("transport.bytes_in") > 0);
        assert!(snap.counter("transport.bytes_out") > 0);
        assert_eq!(snap.counter("server.requests"), 2);
    }

    #[test]
    fn traced_client_stitches_client_and_server_spans() {
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(64));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        let mut c = AuditorClient::with_obs(InProcess::with_obs(server, &obs), &obs);
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();

        let spans = rec.spans();
        let wire = spans
            .iter()
            .find(|s| s.name == "wire.register_zone")
            .expect("client span");
        let server_span = spans
            .iter()
            .find(|s| s.name == "server.register_zone")
            .expect("server span");
        assert_eq!(server_span.context.trace_id, wire.context.trace_id);
        assert_eq!(server_span.context.parent_id, Some(wire.context.span_id));
        assert_eq!(wire.context.parent_id, None);
    }

    #[test]
    fn untraced_client_sends_bare_frames_the_server_accepts() {
        // The server has tracing on; the client does not. Old-style
        // bare frames must keep working and produce root server spans.
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        let mut c = AuditorClient::new(InProcess::new(server));
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "server.register_zone");
        assert_eq!(spans[0].context.parent_id, None);
    }

    #[test]
    fn flaky_fault_events_carry_kind_and_trace_id() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::with_obs(
            InProcess::new(AuditorServer::builder(auditor).build()),
            &obs,
        )
        .drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs);
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .is_err());

        let dropped = ring.events_where(|e| e.message == "request_dropped");
        assert_eq!(dropped.len(), 1);
        assert_eq!(
            dropped[0].field("kind").unwrap().as_str(),
            Some("register_zone")
        );
        let trace_hex = dropped[0].field("trace_id").unwrap().as_str().unwrap();
        assert_eq!(trace_hex.len(), 32);
        assert!(trace_hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn flaky_corrupt_events_carry_kind() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky = Flaky::with_obs(
            InProcess::new(AuditorServer::builder(auditor).build()),
            &obs,
        )
        .corrupt_every(1);
        let mut c = AuditorClient::new(flaky);
        assert!(c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .is_err());
        let corrupted = ring.events_where(|e| e.message == "response_corrupted");
        assert_eq!(corrupted.len(), 1);
        assert_eq!(
            corrupted[0].field("kind").unwrap().as_str(),
            Some("register_zone")
        );
        // Untraced client → bare frame → no trace id to attribute.
        assert!(corrupted[0].field("trace_id").is_none());
    }

    #[test]
    fn server_state_persists_across_transport_faults() {
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(3);
        let mut c = AuditorClient::new(flaky);
        let mut registered = 0;
        for _ in 0..9 {
            if c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .is_ok()
            {
                registered += 1;
            }
        }
        assert_eq!(registered, 6); // every third call dropped
    }

    fn fast_retry(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(400),
            jitter_seed: seed,
        }
    }

    #[test]
    fn retry_recovers_idempotent_calls_from_transport_loss() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        // Calls 2, 4, 6, … are dropped; with retries every logical call
        // still lands.
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(2);
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(7));
        for _ in 0..6 {
            c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                .unwrap();
        }
        let snap = obs.snapshot();
        // Physical schedule: 1 ok, 2 drop, 3 ok, 4 drop, 5 ok, … —
        // after the first call every logical call burns one retry, so
        // 6 logical calls = 11 physical = 5 retries. Pinned exactly to
        // catch schedule drift.
        assert_eq!(snap.counter("transport.retries"), 5);
        assert_eq!(snap.counter("transport.timeouts"), 0);
    }

    #[test]
    fn retry_attempt_count_is_deterministic_for_a_seed() {
        // Same seed, same fault schedule → byte-identical retry
        // behaviour: attempt counts and outcomes match across runs.
        let run = |seed: u64| -> (u64, u64, usize) {
            let obs = Obs::noop();
            let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
            let flaky = Flaky::with_obs(
                InProcess::new(AuditorServer::builder(auditor).build()),
                &obs,
            )
            .drop_every(3);
            let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(seed));
            let mut ok = 0;
            for _ in 0..10 {
                if c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
                    .is_ok()
                {
                    ok += 1;
                }
            }
            let snap = obs.snapshot();
            (
                snap.counter("transport.retries"),
                snap.counter("transport.calls"),
                ok,
            )
        };
        let a = run(0xAB);
        let b = run(0xAB);
        assert_eq!(a, b);
        // And with retries every logical call eventually succeeds.
        assert_eq!(a.2, 10);
    }

    #[test]
    fn non_idempotent_queries_are_never_retried() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(1); // drop everything
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(1));
        let id = DroneId::new(1); // never reaches the server anyway
        let q = ZoneQuery::new_signed(id, origin(), origin(), [9u8; 16], operator_key()).unwrap();
        let err = c.query_zones(q, now()).unwrap_err();
        assert!(err.is_transport());
        // One attempt only: the nonce is burned server-side on first
        // delivery, so a replayed query could never succeed.
        assert_eq!(obs.snapshot().counter("transport.retries"), 0);
    }

    #[test]
    fn exhausted_retries_surface_the_transport_error() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(2));
        let err = c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Transport(_)));
        assert_eq!(obs.snapshot().counter("transport.retries"), 2); // 3 attempts
    }

    #[test]
    fn deadline_caps_the_retry_loop_with_timeout() {
        let obs = Obs::noop();
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let flaky =
            Flaky::new(InProcess::new(AuditorServer::builder(auditor).build())).drop_every(1);
        let mut c = AuditorClient::with_obs(flaky, &obs)
            .retry(RetryPolicy {
                max_attempts: 100,
                base_backoff: Duration::from_millis(40),
                max_backoff: Duration::from_millis(40),
                jitter_seed: 3,
            })
            .deadline(Duration::from_millis(20));
        let err = c
            .register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap_err();
        assert_eq!(err, ProtocolError::Timeout);
        assert_eq!(obs.snapshot().counter("transport.timeouts"), 1);
    }

    #[test]
    fn retried_call_is_one_trace_with_attempt_spans() {
        use alidrone_obs::FlightRecorder;

        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(64));
        obs.set_subscriber(rec.clone());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        let server = AuditorServer::builder(auditor).obs(&obs).build();
        // Call 1 (the probe) succeeds; call 2 is dropped, so logical
        // call #2 takes attempts 2 and 3.
        let flaky = Flaky::with_obs(InProcess::with_obs(server, &obs), &obs).drop_every(2);
        let mut c = AuditorClient::with_obs(flaky, &obs).retry(fast_retry(11));
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();
        c.register_zone(NoFlyZone::new(origin(), Distance::from_meters(10.0)), now())
            .unwrap();

        let spans = rec.spans();
        let wire: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "wire.register_zone")
            .collect();
        assert_eq!(wire.len(), 2);
        let retried = wire[1];
        // Two attempt spans under the second wire span, one trace id.
        let attempts: Vec<_> = spans
            .iter()
            .filter(|s| {
                s.name == "wire.attempt" && s.context.parent_id == Some(retried.context.span_id)
            })
            .collect();
        assert_eq!(attempts.len(), 2);
        // The server span of the successful attempt parents on that
        // attempt's span, in the same trace.
        let server_spans: Vec<_> = spans
            .iter()
            .filter(|s| {
                s.name == "server.register_zone" && s.context.trace_id == retried.context.trace_id
            })
            .collect();
        assert_eq!(server_spans.len(), 1);
        assert_eq!(
            server_spans[0].context.parent_id,
            Some(attempts[1].context.span_id)
        );
    }

    #[test]
    fn transports_and_client_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InProcess>();
        assert_send_sync::<Flaky<InProcess>>();
        assert_send_sync::<AuditorClient<InProcess>>();
        assert_send_sync::<AuditorClient<Flaky<InProcess>>>();
        assert_send_sync::<Script>();
    }

    /// Scriptable transport: pops one pre-programmed outcome per call
    /// and records every frame it was handed.
    struct Script {
        outcomes: std::sync::Mutex<std::collections::VecDeque<Result<Vec<u8>, ProtocolError>>>,
        frames: std::sync::Mutex<Vec<Vec<u8>>>,
    }

    impl Script {
        fn new(outcomes: Vec<Result<Vec<u8>, ProtocolError>>) -> Self {
            Script {
                outcomes: std::sync::Mutex::new(outcomes.into()),
                frames: std::sync::Mutex::new(Vec::new()),
            }
        }

        fn frames(&self) -> Vec<Vec<u8>> {
            self.frames.lock().unwrap().clone()
        }

        fn calls(&self) -> usize {
            self.frames.lock().unwrap().len()
        }
    }

    impl Transport for Script {
        fn call(&self, request: &[u8], _now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
            self.frames.lock().unwrap().push(request.to_vec());
            self.outcomes
                .lock()
                .unwrap()
                .pop_front()
                .unwrap_or_else(|| Err(ProtocolError::Transport("script exhausted".into())))
        }
    }

    fn lost() -> Result<Vec<u8>, ProtocolError> {
        Err(ProtocolError::Transport("lost".into()))
    }

    fn zone_ok() -> Result<Vec<u8>, ProtocolError> {
        Ok(Response::ZoneRegistered(ZoneId::new(1)).to_bytes())
    }

    fn overloaded(retry_after_ms: u64) -> Result<Vec<u8>, ProtocolError> {
        Ok(Response::Overloaded { retry_after_ms }.to_bytes())
    }

    fn zone() -> NoFlyZone {
        NoFlyZone::new(origin(), Distance::from_meters(10.0))
    }

    #[test]
    fn deadline_expiring_mid_backoff_times_out_without_another_attempt() {
        // Attempt 1 fails instantly; the computed backoff (≥ 40 ms)
        // cannot fit in the 5 ms deadline, so the client must return
        // Timeout after exactly ONE transport call — no futile retry,
        // no sleep.
        let obs = Obs::noop();
        let script = Arc::new(Script::new(vec![lost()]));
        let mut c = AuditorClient::with_obs(Arc::clone(&script), &obs)
            .retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(40),
                max_backoff: Duration::from_millis(40),
                jitter_seed: 9,
            })
            .deadline(Duration::from_millis(5));
        let t0 = Instant::now();
        assert_eq!(
            c.register_zone(zone(), now()).unwrap_err(),
            ProtocolError::Timeout
        );
        // Well under one backoff: the client did not sleep.
        assert!(t0.elapsed() < Duration::from_millis(40));
        assert_eq!(script.calls(), 1);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("transport.retries"), 0);
        assert_eq!(snap.counter("transport.timeouts"), 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_for_a_seed() {
        use alidrone_obs::RingBuffer;

        let run = |seed: u64| -> Vec<u64> {
            let obs = Obs::noop();
            let ring = Arc::new(RingBuffer::new(32));
            obs.set_subscriber(ring.clone());
            let script = Script::new(vec![lost(), lost(), lost(), lost(), zone_ok()]);
            let mut c = AuditorClient::with_obs(script, &obs).retry(RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                jitter_seed: seed,
            });
            c.register_zone(zone(), now()).unwrap();
            ring.events_where(|e| e.message == "retrying")
                .iter()
                .map(|e| e.field("backoff_us").unwrap().as_u64().unwrap())
                .collect()
        };
        let a = run(0xFEED);
        let b = run(0xFEED);
        assert_eq!(a.len(), 4);
        assert_eq!(a, b, "same seed must reproduce the backoff schedule");
        assert_ne!(a, run(0xBEEF), "different seeds should diverge");
        // Exponential shape survives the jitter: base doubles each
        // retry (50, 100, 200, 400 µs) and jitter adds ≤ half.
        for (i, &backoff) in a.iter().enumerate() {
            let base = 50u64 << i.min(3);
            assert!(
                backoff >= base && backoff <= base + base / 2,
                "{i}: {backoff}"
            );
        }
    }

    #[test]
    fn overloaded_responses_map_to_typed_error_and_floor_the_backoff() {
        use alidrone_obs::RingBuffer;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let script = Arc::new(Script::new(vec![overloaded(25), zone_ok()]));
        let mut c = AuditorClient::with_obs(Arc::clone(&script), &obs).retry(fast_retry(4));
        // The shed is retried (even though backoff jitter alone would
        // be µs-scale, the 25 ms hint floors it) and the retry lands.
        c.register_zone(zone(), now()).unwrap();
        assert_eq!(script.calls(), 2);
        let retrying = ring.events_where(|e| e.message == "retrying");
        assert_eq!(retrying.len(), 1);
        let backoff_us = retrying[0].field("backoff_us").unwrap().as_u64().unwrap();
        assert!(backoff_us >= 25_000, "hint not honored: {backoff_us}µs");
    }

    #[test]
    fn shed_errors_are_retried_even_for_non_idempotent_queries() {
        // An Overloaded shed happened before execution — no nonce was
        // burned — so even a zone query may resend. Contrast with
        // `non_idempotent_queries_are_never_retried` (transport loss).
        let script = Arc::new(Script::new(vec![
            overloaded(1),
            Ok(Response::Zones(Vec::new()).to_bytes()),
        ]));
        let mut c = AuditorClient::new(Arc::clone(&script)).retry(fast_retry(5));
        let q = ZoneQuery::new_signed(
            DroneId::new(1),
            origin(),
            origin(),
            [7u8; 16],
            operator_key(),
        )
        .unwrap();
        assert_eq!(c.query_zones(q, now()).unwrap(), Vec::new());
        assert_eq!(script.calls(), 2);
    }

    #[test]
    fn breaker_opens_after_threshold_and_fails_fast() {
        let obs = Obs::noop();
        let script = Arc::new(Script::new(vec![lost(), lost(), lost()]));
        let mut c = AuditorClient::with_obs(Arc::clone(&script), &obs).circuit_breaker(
            CircuitBreakerPolicy {
                failure_threshold: 3,
                open_secs: 10.0,
                half_open_successes: 1,
                jitter_seed: 42,
            },
        );
        let t = Timestamp::from_secs(100.0);
        for _ in 0..3 {
            assert!(matches!(
                c.register_zone(zone(), t).unwrap_err(),
                ProtocolError::Transport(_)
            ));
        }
        assert!(matches!(
            c.breaker_snapshot(),
            Some(BreakerState::Open { .. })
        ));
        // Fourth call fails fast: the transport is never touched.
        assert_eq!(
            c.register_zone(zone(), t).unwrap_err(),
            ProtocolError::CircuitOpen
        );
        assert_eq!(script.calls(), 3);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("transport.breaker.opened"), 1);
        assert_eq!(snap.counter("transport.breaker.rejected"), 1);
    }

    #[test]
    fn breaker_recovers_through_half_open_to_closed() {
        let obs = Obs::noop();
        let script = Arc::new(Script::new(vec![
            lost(),
            lost(),
            zone_ok(),
            zone_ok(),
            zone_ok(),
        ]));
        let mut c = AuditorClient::with_obs(Arc::clone(&script), &obs).circuit_breaker(
            CircuitBreakerPolicy {
                failure_threshold: 2,
                open_secs: 1.0,
                half_open_successes: 2,
                jitter_seed: 7,
            },
        );
        // Two failures trip it open at t=0.
        let _ = c.register_zone(zone(), Timestamp::from_secs(0.0));
        let _ = c.register_zone(zone(), Timestamp::from_secs(0.0));
        // Still open shortly after (open interval ≥ open_secs).
        assert_eq!(
            c.register_zone(zone(), Timestamp::from_secs(0.5))
                .unwrap_err(),
            ProtocolError::CircuitOpen
        );
        // Past the interval (1.0 + ≤0.5 jitter) the breaker half-opens;
        // two successful probes close it.
        let late = Timestamp::from_secs(10.0);
        c.register_zone(zone(), late).unwrap();
        assert!(matches!(
            c.breaker_snapshot(),
            Some(BreakerState::HalfOpen { probes_ok: 1 })
        ));
        c.register_zone(zone(), late).unwrap();
        assert_eq!(
            c.breaker_snapshot(),
            Some(BreakerState::Closed {
                consecutive_failures: 0
            })
        );
        let snap = obs.snapshot();
        assert_eq!(snap.counter("transport.breaker.opened"), 1);
        assert_eq!(snap.counter("transport.breaker.half_open"), 1);
        assert_eq!(snap.counter("transport.breaker.closed"), 1);
    }

    #[test]
    fn breaker_reopens_on_half_open_failure_and_honors_retry_after() {
        let script = Arc::new(Script::new(vec![lost(), overloaded(30_000)]));
        let mut c = AuditorClient::new(Arc::clone(&script)).circuit_breaker(CircuitBreakerPolicy {
            failure_threshold: 1,
            open_secs: 1.0,
            half_open_successes: 1,
            jitter_seed: 3,
        });
        let _ = c.register_zone(zone(), Timestamp::from_secs(0.0));
        // Half-open probe at t=5 is shed with a 30 s retry hint: the
        // breaker re-opens and the hint floors the open interval.
        let _ = c.register_zone(zone(), Timestamp::from_secs(5.0));
        match c.breaker_snapshot() {
            Some(BreakerState::Open { until }) => {
                assert!(until.secs() >= 35.0, "retry_after floor ignored: {until:?}");
            }
            other => panic!("expected Open, got {other:?}"),
        }
        // open_secs + jitter alone would have expired by t=10; the
        // retry_after floor keeps it open.
        assert_eq!(
            c.register_zone(zone(), Timestamp::from_secs(10.0))
                .unwrap_err(),
            ProtocolError::CircuitOpen
        );
        assert_eq!(script.calls(), 2);
    }

    #[test]
    fn deadline_client_sends_remaining_budget_in_the_envelope() {
        use crate::wire::split_envelope_ext;

        let script = Arc::new(Script::new(vec![zone_ok()]));
        let mut c = AuditorClient::new(Arc::clone(&script)).deadline(Duration::from_millis(250));
        c.register_zone(zone(), now()).unwrap();
        let frames = script.frames();
        assert_eq!(frames.len(), 1);
        let (env, payload) = split_envelope_ext(&frames[0]).unwrap();
        // Untraced client → no trace context, but the budget rides.
        assert!(env.trace.is_none());
        let budget = env.budget_micros.expect("budget field missing");
        assert!(budget > 0 && budget <= 250_000, "budget {budget}µs");
        assert_eq!(payload, Request::RegisterZone { zone: zone() }.to_bytes());
    }

    #[test]
    fn deadline_free_client_sends_byte_identical_legacy_frames() {
        // The overload machinery must not perturb the wire format for
        // clients that don't opt in: no deadline → bare legacy frame.
        let script = Arc::new(Script::new(vec![zone_ok()]));
        let mut c = AuditorClient::new(Arc::clone(&script));
        c.register_zone(zone(), now()).unwrap();
        assert_eq!(
            script.frames()[0],
            Request::RegisterZone { zone: zone() }.to_bytes()
        );
    }

    #[test]
    fn health_check_round_trips_queue_stats() {
        let mut c = client();
        assert_eq!(c.health_check(now()).unwrap(), (0, 0));
    }
}
