//! Minimal binary codec primitives: big-endian, length-prefixed.
//!
//! The protocol messages are small and fixed-shape, so a hand-rolled
//! codec keeps the wire format auditable byte-for-byte (and keeps the
//! workspace free of serialization frameworks on the security path).

use crate::ProtocolError;

/// An append-only byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finishes and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u128` (trace ids in the frame envelope).
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }
}

/// A cursor-style byte reader; every accessor fails cleanly on
/// truncation.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the reader is fully consumed — trailing garbage in a
    /// security protocol message is always a framing bug or an attack.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Malformed`] if bytes remain.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed("truncated message"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation (same for all readers).
    pub fn get_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    #[allow(missing_docs)]
    pub fn get_u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a big-endian `u64`.
    #[allow(missing_docs)]
    pub fn get_u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a big-endian `u128`.
    #[allow(missing_docs)]
    pub fn get_u128(&mut self) -> Result<u128, ProtocolError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads a big-endian `f64`, rejecting NaN (no protocol field is
    /// allowed to be NaN).
    #[allow(missing_docs)]
    pub fn get_f64(&mut self) -> Result<f64, ProtocolError> {
        let v = f64::from_be_bytes(self.take(8)?.try_into().expect("8"));
        if v.is_nan() {
            return Err(ProtocolError::Malformed("nan field"));
        }
        Ok(v)
    }

    /// Reads a `u32`-length-prefixed byte string (with a 16 MiB sanity
    /// cap against length-bomb payloads).
    #[allow(missing_docs)]
    pub fn get_bytes(&mut self) -> Result<&'a [u8], ProtocolError> {
        let len = self.get_u32()? as usize;
        if len > 16 << 20 {
            return Err(ProtocolError::Malformed("oversized field"));
        }
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    #[allow(missing_docs)]
    pub fn get_str(&mut self) -> Result<&'a str, ProtocolError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| ProtocolError::Malformed("invalid utf-8"))
    }

    /// Reads exactly `N` bytes into an array.
    #[allow(missing_docs)]
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        Ok(self.take(N)?.try_into().expect("N bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX)
            .put_u128(u128::MAX - 1)
            .put_f64(-1.5)
            .put_bytes(b"abc")
            .put_str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_u128().unwrap(), u128::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = Writer::new();
        w.put_u32(5).put_bytes(b"xyz");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let ok = r.get_u32().and_then(|_| r.get_bytes().map(|_| ()));
            assert!(ok.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.put_u8(1);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn nan_rejected() {
        let mut w = Writer::new();
        w.put_f64(f64::NAN);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).get_f64().is_err());
    }

    #[test]
    fn length_bomb_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).get_bytes().is_err());
    }

    #[test]
    fn array_read() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2).put_u8(3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_array::<3>().unwrap(), [1, 2, 3]);
        assert!(r.get_array::<1>().is_err());
    }
}
