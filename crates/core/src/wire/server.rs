//! The AliDrone Server's request loop: bytes in, bytes out.
//!
//! [`AuditorServer::handle`] takes `&self` — the server owns no mutable
//! state outside the auditor's interior locks and one mutex around the
//! latest crash dump — so a single instance behind an `Arc` can serve
//! requests from any number of threads (the
//! [`TcpServer`](crate::wire::tcp::TcpServer) worker pool does exactly
//! that).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use alidrone_geo::Timestamp;
use alidrone_obs::{Counter, FlightRecorder, Histogram, Level, Obs, RecorderDump};

use crate::auditor::{AccusationOutcome, Auditor};
use crate::messages::PoaSubmission;
use crate::poa::ProofOfAlibi;
use crate::wire::{
    request_kind_index, split_envelope, ErrorCode, Request, Response, REQUEST_KINDS,
};
use crate::ProtocolError;

/// Server-side span names, indexed like [`REQUEST_KINDS`].
const SERVER_SPAN_NAMES: [&str; 6] = [
    "server.register_drone",
    "server.register_zone",
    "server.query_zones",
    "server.submit_poa",
    "server.submit_encrypted_poa",
    "server.accuse",
];

/// The wire error codes, for per-code counter names. Indexed in the
/// same order as [`error_code_index`].
const ERROR_CODES: [&str; 7] = [
    "malformed",
    "unknown_drone",
    "unknown_zone",
    "bad_signature",
    "nonce_replayed",
    "decrypt_failed",
    "internal",
];

fn error_code_index(code: ErrorCode) -> usize {
    match code {
        ErrorCode::Malformed => 0,
        ErrorCode::UnknownDrone => 1,
        ErrorCode::UnknownZone => 2,
        ErrorCode::BadSignature => 3,
        ErrorCode::NonceReplayed => 4,
        ErrorCode::DecryptFailed => 5,
        ErrorCode::Internal => 6,
    }
}

/// Pre-registered metric handles (steady-state updates never touch the
/// registry lock).
#[derive(Debug)]
struct ServerMetrics {
    /// Wall-clock handling latency per request kind
    /// (`server.latency.<kind>`). Latency is always measured in wall
    /// time — even under a simulated clock — because it reflects real
    /// verification CPU cost (RSA, sufficiency checks), which the sim
    /// clock does not model.
    latency: [Arc<Histogram>; 6],
    /// Error responses per wire code (`server.errors.<code>`).
    errors: [Arc<Counter>; 7],
    /// Frames that failed to decode at all (`server.malformed_frames`).
    malformed_frames: Arc<Counter>,
    /// All frames seen, decodable or not (`server.requests`).
    requests: Arc<Counter>,
}

impl ServerMetrics {
    fn new(obs: &Obs) -> Self {
        ServerMetrics {
            latency: REQUEST_KINDS.map(|kind| obs.histogram(&format!("server.latency.{kind}"))),
            errors: ERROR_CODES.map(|code| obs.counter(&format!("server.errors.{code}"))),
            malformed_frames: obs.counter("server.malformed_frames"),
            requests: obs.counter("server.requests"),
        }
    }
}

/// Serving knobs consumed by the networked front end
/// ([`TcpServer`](crate::wire::tcp::TcpServer)); the in-process
/// [`handle`](AuditorServer::handle) path ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads handling decoded frames.
    pub workers: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Wraps an [`Auditor`] behind the byte-level protocol, the way the
/// deployed AliDrone Server would sit behind a socket.
///
/// Construct with [`AuditorServer::builder`]. All request handling goes
/// through [`handle(&self)`](AuditorServer::handle), so share one
/// instance across threads with `Arc<AuditorServer>`.
#[derive(Debug)]
pub struct AuditorServer {
    auditor: Auditor,
    obs: Obs,
    metrics: ServerMetrics,
    recorder: Option<Arc<FlightRecorder>>,
    last_crash_dump: Mutex<Option<RecorderDump>>,
    serve: ServeConfig,
}

/// Builder for [`AuditorServer`] — one place for every construction
/// knob: observability, flight recorder, and serving limits.
#[derive(Debug)]
pub struct AuditorServerBuilder {
    auditor: Auditor,
    obs: Obs,
    recorder: Option<Arc<FlightRecorder>>,
    serve: ServeConfig,
}

impl AuditorServerBuilder {
    /// Routes the server's metrics, events, and request spans into
    /// `obs` (default: a private no-op registry).
    pub fn obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attaches a flight recorder (normally the same one installed as
    /// the obs subscriber). With one attached, the server captures a
    /// crash dump automatically on malformed frames and error
    /// responses; the latest dump is kept in
    /// [`last_crash_dump`](AuditorServer::last_crash_dump).
    pub fn flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Worker-thread count for the networked front end (default 4).
    pub fn workers(mut self, n: usize) -> Self {
        self.serve.workers = n.max(1);
        self
    }

    /// Per-connection socket read timeout (default 5 s).
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.serve.read_timeout = d;
        self
    }

    /// Per-connection socket write timeout (default 5 s).
    pub fn write_timeout(mut self, d: Duration) -> Self {
        self.serve.write_timeout = d;
        self
    }

    /// Finalises the server.
    pub fn build(self) -> AuditorServer {
        AuditorServer {
            auditor: self.auditor,
            metrics: ServerMetrics::new(&self.obs),
            obs: self.obs,
            recorder: self.recorder,
            last_crash_dump: Mutex::new(None),
            serve: self.serve,
        }
    }
}

impl AuditorServer {
    /// Starts building a server around an auditor; see
    /// [`AuditorServerBuilder`] for the knobs.
    pub fn builder(auditor: Auditor) -> AuditorServerBuilder {
        AuditorServerBuilder {
            auditor,
            obs: Obs::noop(),
            recorder: None,
            serve: ServeConfig::default(),
        }
    }

    /// The most recent automatic flight-recorder dump, if any protocol
    /// failure has occurred since a recorder was attached. Cloned out
    /// from behind the dump mutex, so callers hold no lock.
    pub fn last_crash_dump(&self) -> Option<RecorderDump> {
        // Invariant: holders of this lock only clone/replace the Option,
        // so a poisoned lock still guards structurally sound data.
        self.last_crash_dump
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Read access to the wrapped auditor (e.g. for inspection in
    /// tests). Every auditor entry point takes `&self`, so this is all
    /// the access anyone needs — there is no `auditor_mut`.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// The serving knobs the networked front end should honour.
    pub fn serve_config(&self) -> ServeConfig {
        self.serve
    }

    /// The observability handle the server reports into (shared with
    /// the networked front end so connection counters land in the same
    /// registry).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Handles one request frame. Never fails: malformed input or
    /// protocol errors become [`Response::Error`] frames.
    ///
    /// Frames may arrive bare or wrapped in the trace envelope (see
    /// [`split_envelope`]); with an envelope, the per-request server
    /// span joins the caller's trace as a child of the caller's span.
    pub fn handle(&self, request_bytes: &[u8], now: Timestamp) -> Vec<u8> {
        self.metrics.requests.inc();
        let t0 = Instant::now();
        let decoded = split_envelope(request_bytes)
            .and_then(|(trace, payload)| Request::from_bytes(payload).map(|req| (trace, req)));
        let response = match decoded {
            Ok((trace, req)) => {
                let kind = request_kind_index(&req);
                let span = match trace {
                    Some(ctx) => self.obs.span_with_remote_parent(
                        SERVER_SPAN_NAMES[kind],
                        ctx.trace_id,
                        ctx.span_id,
                    ),
                    None => self.obs.enter_span(SERVER_SPAN_NAMES[kind]),
                };
                let resp = self.dispatch(req, now);
                span.finish();
                self.metrics.latency[kind].record_micros(t0.elapsed().as_micros() as u64);
                if let Response::Error { code, .. } = &resp {
                    let code = *code;
                    self.metrics.errors[error_code_index(code)].inc();
                    self.obs
                        .emit(Level::Warn, "wire.server", "error_response", |f| {
                            f.field("kind", REQUEST_KINDS[kind])
                                .field("code", ERROR_CODES[error_code_index(code)]);
                        });
                    self.capture_crash_dump("error_response");
                }
                resp
            }
            Err(e) => {
                // Undecodable frames used to vanish into a bare error
                // string; now they are counted and the frame length is
                // surfaced in both the event and the response.
                let frame_len = request_bytes.len();
                self.metrics.malformed_frames.inc();
                self.metrics.errors[error_code_index(ErrorCode::Malformed)].inc();
                self.obs
                    .emit(Level::Warn, "wire.server", "malformed_frame", |f| {
                        f.field("frame_len", frame_len as u64);
                    });
                self.capture_crash_dump("malformed_frame");
                Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!("malformed frame ({frame_len} bytes): {e}"),
                }
            }
        };
        response.to_bytes()
    }

    /// Freezes the attached recorder into a crash dump (including the
    /// event/span that triggered it, which the subscriber has already
    /// seen by the time this runs).
    fn capture_crash_dump(&self, reason: &'static str) {
        if let Some(rec) = &self.recorder {
            let dump = rec.dump();
            self.obs
                .emit(Level::Info, "wire.server", "flight_recorder_dump", |f| {
                    f.field("reason", reason)
                        .field("spans", dump.spans.len())
                        .field("events", dump.events.len());
                });
            // Invariant: the slot only ever holds a whole replaced
            // Option, so writing through a poisoned lock is sound.
            *self
                .last_crash_dump
                .lock()
                .unwrap_or_else(|p| p.into_inner()) = Some(dump);
        }
    }

    fn dispatch(&self, req: Request, now: Timestamp) -> Response {
        match req {
            Request::RegisterDrone {
                operator_public,
                tee_public,
            } => {
                Response::DroneRegistered(self.auditor.register_drone(operator_public, tee_public))
            }
            Request::RegisterZone { zone } => {
                Response::ZoneRegistered(self.auditor.register_zone(zone))
            }
            Request::QueryZones(q) => match self.auditor.handle_zone_query(&q) {
                Ok(resp) => Response::Zones(resp.zones),
                Err(e) => error_response(e),
            },
            Request::SubmitPoa {
                drone_id,
                window_start,
                window_end,
                poa,
            } => match ProofOfAlibi::from_bytes(&poa) {
                Ok(poa) => {
                    let submission = PoaSubmission {
                        drone_id,
                        window_start,
                        window_end,
                        poa,
                    };
                    match self.auditor.verify_submission(&submission, now) {
                        Ok(report) => Response::Verdict(report.verdict),
                        Err(e) => error_response(e),
                    }
                }
                Err(e) => error_response(e),
            },
            Request::SubmitEncryptedPoa {
                drone_id,
                window_start,
                window_end,
                blocks,
            } => {
                let encrypted = crate::poa::EncryptedPoa::from_blocks(blocks);
                match self.auditor.verify_encrypted_submission(
                    drone_id,
                    window_start,
                    window_end,
                    &encrypted,
                    now,
                ) {
                    Ok(report) => Response::Verdict(report.verdict),
                    Err(e) => error_response(e),
                }
            }
            Request::Accuse(a) => match self.auditor.handle_accusation(&a) {
                Ok(AccusationOutcome::Refuted) => Response::Accusation {
                    refuted: true,
                    reason: String::new(),
                },
                Ok(AccusationOutcome::Upheld { reason }) => Response::Accusation {
                    refuted: false,
                    reason,
                },
                Err(e) => error_response(e),
            },
        }
    }
}

fn error_response(e: ProtocolError) -> Response {
    let code = match &e {
        ProtocolError::UnknownDrone(_) => ErrorCode::UnknownDrone,
        ProtocolError::UnknownZone(_) => ErrorCode::UnknownZone,
        ProtocolError::QuerySignatureInvalid => ErrorCode::BadSignature,
        ProtocolError::NonceReplayed => ErrorCode::NonceReplayed,
        ProtocolError::Crypto(_) => ErrorCode::DecryptFailed,
        ProtocolError::Malformed(_) | ProtocolError::Geo(_) => ErrorCode::Malformed,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::AuditorConfig;
    use crate::messages::ZoneQuery;
    use crate::test_support::{auditor_key, operator_key, origin, signed_samples, tee_key};
    use crate::{DroneId, Verdict};
    use alidrone_geo::{Distance, NoFlyZone};

    fn server() -> AuditorServer {
        AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .build()
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(50.0)
    }

    fn register(server: &AuditorServer) -> DroneId {
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        match Response::from_bytes(&server.handle(&req.to_bytes(), now())).unwrap() {
            Response::DroneRegistered(id) => id,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_and_submit_over_the_wire() {
        let s = server();
        let id = register(&s);
        // Register a far zone.
        let zreq = Request::RegisterZone {
            zone: NoFlyZone::new(
                origin().destination(0.0, Distance::from_km(50.0)),
                Distance::from_meters(100.0),
            ),
        };
        let resp = Response::from_bytes(&s.handle(&zreq.to_bytes(), now())).unwrap();
        assert!(matches!(resp, Response::ZoneRegistered(_)));

        // Submit a compliant PoA.
        let poa = ProofOfAlibi::from_entries(signed_samples(6));
        let req = Request::SubmitPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(5.0),
            poa: poa.to_bytes(),
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert_eq!(resp, Response::Verdict(Verdict::Compliant));
        assert_eq!(s.auditor().stored_poa_count(), 1);
    }

    #[test]
    fn malformed_frame_yields_error_response() {
        let s = server();
        let resp = Response::from_bytes(&s.handle(&[0xFF, 0x01], now())).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
    }

    #[test]
    fn malformed_frame_is_counted_and_reported_with_length() {
        use alidrone_obs::RingBuffer;
        use std::sync::Arc;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();

        let frame = [0xFF, 0x01, 0x02];
        let resp = Response::from_bytes(&s.handle(&frame, now())).unwrap();
        let Response::Error { code, message } = resp else {
            panic!("expected error response");
        };
        assert_eq!(code, ErrorCode::Malformed);
        assert!(message.contains("3 bytes"), "message: {message}");

        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.malformed_frames"), 1);
        assert_eq!(snap.counter("server.errors.malformed"), 1);
        let events = ring.events();
        let ev = events
            .iter()
            .find(|e| e.message == "malformed_frame")
            .expect("malformed_frame event");
        assert_eq!(ev.level, Level::Warn);
        assert_eq!(ev.field("frame_len").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn request_latency_and_error_codes_are_tracked() {
        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();

        // A successful registration and an unknown-drone submission.
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        s.handle(&req.to_bytes(), now());
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(404),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new().to_bytes(),
        };
        s.handle(&req.to_bytes(), now());

        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.requests"), 2);
        assert_eq!(
            snap.histogram("server.latency.register_drone")
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snap.histogram("server.latency.submit_poa").unwrap().count,
            1
        );
        assert!(snap.histogram("server.latency.accuse").unwrap().count == 0);
        assert_eq!(snap.counter("server.errors.unknown_drone"), 1);
        assert_eq!(snap.counter("server.errors.internal"), 0);
    }

    #[test]
    fn unknown_drone_error_code() {
        let s = server();
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(404),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new().to_bytes(),
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownDrone,
                ..
            }
        ));
    }

    #[test]
    fn replayed_query_error_code() {
        let s = server();
        let id = register(&s);
        let q = ZoneQuery::new_signed(id, origin(), origin(), [3u8; 16], operator_key()).unwrap();
        let req = Request::QueryZones(q).to_bytes();
        let first = Response::from_bytes(&s.handle(&req, now())).unwrap();
        assert!(matches!(first, Response::Zones(_)));
        let second = Response::from_bytes(&s.handle(&req, now())).unwrap();
        assert!(matches!(
            second,
            Response::Error {
                code: ErrorCode::NonceReplayed,
                ..
            }
        ));
    }

    #[test]
    fn encrypted_submission_over_the_wire() {
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(55);
        let s = server();
        let id = register(&s);
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let enc = poa
            .encrypt(s.auditor().public_encryption_key(), &mut rng)
            .unwrap();
        let req = Request::SubmitEncryptedPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(3.0),
            blocks: enc.blocks().to_vec(),
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert_eq!(resp, Response::Verdict(Verdict::Compliant));
    }

    #[test]
    fn garbage_encrypted_blocks_yield_decrypt_error() {
        let s = server();
        let id = register(&s);
        let req = Request::SubmitEncryptedPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            blocks: vec![vec![0xAA; 64]],
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::DecryptFailed,
                ..
            }
        ));
    }

    #[test]
    fn enveloped_request_adopts_the_wire_trace() {
        use crate::wire::{encode_enveloped, WireTraceContext};
        use std::sync::Arc;

        let obs = Obs::noop();
        let recorder = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(recorder.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        let ctx = WireTraceContext {
            trace_id: 0xFACE,
            span_id: 0xBEEF,
        };
        let frame = encode_enveloped(ctx, &req.to_bytes());
        let resp = Response::from_bytes(&s.handle(&frame, now())).unwrap();
        assert!(matches!(resp, Response::DroneRegistered(_)));
        let spans = recorder.spans();
        let server_span = spans
            .iter()
            .find(|sp| sp.name == "server.register_drone")
            .expect("server span");
        assert_eq!(server_span.context.trace_id, 0xFACE);
        assert_eq!(server_span.context.parent_id, Some(0xBEEF));
    }

    #[test]
    fn untraced_server_still_accepts_enveloped_frames() {
        use crate::wire::{encode_enveloped, WireTraceContext};
        let s = server();
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        let ctx = WireTraceContext {
            trace_id: 1,
            span_id: 2,
        };
        let resp = Response::from_bytes(&s.handle(&encode_enveloped(ctx, &req.to_bytes()), now()))
            .unwrap();
        assert!(matches!(resp, Response::DroneRegistered(_)));
    }

    #[test]
    fn malformed_frame_and_error_response_dump_the_recorder() {
        use std::sync::Arc;

        let obs = Obs::noop();
        let recorder = Arc::new(FlightRecorder::new(32));
        obs.set_subscriber(recorder.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .flight_recorder(recorder)
        .build();
        assert!(s.last_crash_dump().is_none());

        // Build up some context first, then trip the malformed path.
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        s.handle(&req.to_bytes(), now());
        s.handle(&[0xFF, 0x01], now());
        let dump = s.last_crash_dump().expect("malformed frame dumps");
        assert!(!dump.is_empty());
        assert!(dump
            .spans
            .iter()
            .any(|sp| sp.name == "server.register_drone"));

        // An error response (unknown drone) refreshes the dump.
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(404),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new().to_bytes(),
        };
        s.handle(&req.to_bytes(), now());
        let dump = s.last_crash_dump().expect("error response dumps");
        assert!(dump.spans.iter().any(|sp| sp.name == "server.submit_poa"));
        // The dump itself is reported as an event for live observers.
        assert!(dump
            .events
            .iter()
            .any(|e| e.message == "flight_recorder_dump"));
    }

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AuditorServer>();
        assert_send_sync::<Auditor>();

        // Serve the same Arc'd instance from two threads at once.
        let s = Arc::new(server());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || register(&s))
            })
            .collect();
        let ids: Vec<DroneId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_ne!(ids[0], ids[1]);
        assert_eq!(s.auditor().drone_count(), 2);
    }

    #[test]
    fn builder_sets_serve_config() {
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .workers(9)
        .read_timeout(Duration::from_millis(250))
        .write_timeout(Duration::from_millis(750))
        .build();
        assert_eq!(
            s.serve_config(),
            ServeConfig {
                workers: 9,
                read_timeout: Duration::from_millis(250),
                write_timeout: Duration::from_millis(750),
            }
        );
        // Zero workers is clamped to one.
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .workers(0)
        .build();
        assert_eq!(s.serve_config().workers, 1);
    }

    #[test]
    fn builder_wires_obs_and_recorder() {
        let recorder = Arc::new(FlightRecorder::new(8));
        let obs = Obs::noop();
        obs.set_subscriber(recorder.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .flight_recorder(recorder)
        .build();
        register(&s);
        assert_eq!(s.auditor().drone_count(), 1);
    }

    #[test]
    fn accusation_over_the_wire() {
        let s = server();
        let id = register(&s);
        let zreq = Request::RegisterZone {
            zone: NoFlyZone::new(
                origin().destination(0.0, Distance::from_km(50.0)),
                Distance::from_meters(100.0),
            ),
        };
        let zid = match Response::from_bytes(&s.handle(&zreq.to_bytes(), now())).unwrap() {
            Response::ZoneRegistered(z) => z,
            other => panic!("{other:?}"),
        };
        // Without any stored PoA the accusation is upheld.
        let areq = Request::Accuse(crate::Accusation {
            zone_id: zid,
            drone_id: id,
            time: Timestamp::from_secs(2.0),
        });
        let resp = Response::from_bytes(&s.handle(&areq.to_bytes(), now())).unwrap();
        match resp {
            Response::Accusation { refuted, reason } => {
                assert!(!refuted);
                assert!(!reason.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}
