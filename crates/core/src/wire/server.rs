//! The AliDrone Server's request loop: bytes in, bytes out.
//!
//! [`AuditorServer::handle`] takes `&self` — the server owns no mutable
//! state outside the auditor's interior locks and one mutex around the
//! latest crash dump — so a single instance behind an `Arc` can serve
//! requests from any number of threads (the
//! [`TcpServer`](crate::wire::tcp::TcpServer) worker pool does exactly
//! that).

use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use alidrone_geo::Timestamp;
use alidrone_obs::{
    Counter, FlightRecorder, Gauge, Histogram, Level, Obs, RecorderDump, ScrapeServer,
    ScrapeSources, SlowExemplar, SlowTable, StageTimer,
};

use crate::auditor::{AccusationOutcome, Auditor};
use crate::messages::{PoaSubmission, Submission};
use crate::poa::ProofOfAlibi;
use crate::verify_pool::VerifyPool;
use crate::wire::{
    request_cost, request_kind_index, source_drone, split_envelope_ext, ErrorCode, Request,
    Response, REQUEST_KINDS,
};
use crate::ProtocolError;

/// Server-side span names, indexed like [`REQUEST_KINDS`].
const SERVER_SPAN_NAMES: [&str; 10] = [
    "server.register_drone",
    "server.register_zone",
    "server.query_zones",
    "server.submit_poa",
    "server.submit_encrypted_poa",
    "server.accuse",
    "server.health_check",
    "server.tree_head",
    "server.inclusion_proof",
    "server.consistency_proof",
];

/// The wire error codes, for per-code counter names. Indexed in the
/// same order as [`error_code_index`].
const ERROR_CODES: [&str; 8] = [
    "malformed",
    "unknown_drone",
    "unknown_zone",
    "bad_signature",
    "nonce_replayed",
    "decrypt_failed",
    "internal",
    "deadline_expired",
];

fn error_code_index(code: ErrorCode) -> usize {
    match code {
        ErrorCode::Malformed => 0,
        ErrorCode::UnknownDrone => 1,
        ErrorCode::UnknownZone => 2,
        ErrorCode::BadSignature => 3,
        ErrorCode::NonceReplayed => 4,
        ErrorCode::DecryptFailed => 5,
        ErrorCode::Internal => 6,
        ErrorCode::DeadlineExpired => 7,
    }
}

/// Pre-registered metric handles (steady-state updates never touch the
/// registry lock).
#[derive(Debug)]
struct ServerMetrics {
    /// Wall-clock handling latency per request kind
    /// (`server.latency.<kind>`). Latency is always measured in wall
    /// time — even under a simulated clock — because it reflects real
    /// verification CPU cost (RSA, sufficiency checks), which the sim
    /// clock does not model.
    latency: [Arc<Histogram>; 10],
    /// Error responses per wire code (`server.errors.<code>`).
    errors: [Arc<Counter>; 8],
    /// Frames that failed to decode at all (`server.malformed_frames`).
    malformed_frames: Arc<Counter>,
    /// All frames seen, decodable or not (`server.requests`).
    requests: Arc<Counter>,
    /// Requests shed because their propagated deadline budget expired
    /// while queued (`server.shed.expired`).
    shed_expired: Arc<Counter>,
    /// Requests shed by the per-drone token-bucket rate limiter
    /// (`server.shed.ratelimited`).
    shed_ratelimited: Arc<Counter>,
    /// Requests currently executing in handler threads
    /// (`server.inflight`).
    inflight: Arc<Gauge>,
    /// Admission-queue depth (`server.queue_depth`) — written by the
    /// networked front end, read here for [`Response::Healthy`]. Shared
    /// by metric name through the registry.
    queue_depth: Arc<Gauge>,
    /// Per-stage latency histograms (`server.stage.<stage>`), indexed
    /// like [`PIPELINE_STAGES`]. For executed requests the stage sums
    /// (decode + admission + handle + encode) reconcile *exactly* with
    /// the per-kind totals in `latency`, because the per-kind total is
    /// computed as the sum of the same stage marks.
    stages: [Arc<Histogram>; 4],
    /// Admission-queue wait for executed requests
    /// (`server.stage.queue_wait`). Kept out of the reconciling stage
    /// set: the wait happens before the handler thread picks the frame
    /// up, so it is not part of handling latency.
    stage_queue_wait: Arc<Histogram>,
    /// Bounded slowest-request exemplar table, exported via the scrape
    /// endpoint (`/metrics` gauges + `/dump` JSON).
    slow: Arc<SlowTable>,
}

/// The reconciling pipeline stages, in request order. `queue_wait` is
/// reported separately (see [`ServerMetrics::stage_queue_wait`]).
const PIPELINE_STAGES: [&str; 4] = ["decode", "admission", "handle", "encode"];

/// How many slowest-request exemplars the server retains.
const SLOW_TABLE_CAPACITY: usize = 32;

impl ServerMetrics {
    fn new(obs: &Obs) -> Self {
        ServerMetrics {
            latency: REQUEST_KINDS.map(|kind| obs.histogram(&format!("server.latency.{kind}"))),
            errors: ERROR_CODES.map(|code| obs.counter(&format!("server.errors.{code}"))),
            malformed_frames: obs.counter("server.malformed_frames"),
            requests: obs.counter("server.requests"),
            shed_expired: obs.counter("server.shed.expired"),
            shed_ratelimited: obs.counter("server.shed.ratelimited"),
            inflight: obs.gauge("server.inflight"),
            queue_depth: obs.gauge("server.queue_depth"),
            stages: PIPELINE_STAGES.map(|stage| obs.histogram(&format!("server.stage.{stage}"))),
            stage_queue_wait: obs.histogram("server.stage.queue_wait"),
            slow: Arc::new(SlowTable::new(SLOW_TABLE_CAPACITY)),
        }
    }

    fn stage_histogram(&self, stage: &str) -> Option<&Arc<Histogram>> {
        PIPELINE_STAGES
            .iter()
            .position(|s| *s == stage)
            .map(|i| &self.stages[i])
    }
}

/// Per-drone token-bucket admission limits. Costs come from
/// [`request_cost`]: a PoA verification consumes 10 tokens against the
/// submitting drone's bucket while registrations and queries consume 1,
/// so one chatty drone re-submitting heavy proofs cannot starve
/// everyone else. Refill is driven by the request clock (`now`), which
/// keeps limiter decisions deterministic under a simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Sustained admission rate, in cost tokens per second per drone.
    pub tokens_per_sec: f64,
    /// Bucket capacity — the largest burst admitted from a cold bucket.
    pub burst: f64,
    /// Upper bound on the `retry_after_ms` hint returned to shed
    /// clients, so a deeply indebted bucket never tells a client to go
    /// away for minutes.
    pub retry_after_cap_ms: u64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            tokens_per_sec: 100.0,
            burst: 200.0,
            retry_after_cap_ms: 5_000,
        }
    }
}

/// Bucket key for requests that carry no drone id (registrations,
/// accusations): they share one anonymous bucket rather than bypassing
/// the limiter. Drone ids are issued sequentially from 1, so this
/// sentinel cannot collide.
const ANON_BUCKET: u64 = u64::MAX;

/// Hard cap on tracked buckets; reaching it clears the map (re-entering
/// drones restart from a full burst, which momentarily *loosens* the
/// limiter — safe in the shedding direction that matters).
const MAX_BUCKETS: usize = 65_536;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_refill_secs: f64,
}

/// Injectable per-request handler latency, used by the chaos plane to
/// simulate slow verification under overload without burning real RSA
/// cycles. Called once per dispatched request; the handler thread
/// sleeps for the returned duration before executing.
pub struct HandleDelay(Box<dyn Fn() -> Duration + Send + Sync>);

impl HandleDelay {
    /// Wraps a delay function.
    pub fn new<F: Fn() -> Duration + Send + Sync + 'static>(f: F) -> Self {
        HandleDelay(Box::new(f))
    }
}

impl fmt::Debug for HandleDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("HandleDelay(..)")
    }
}

/// Serving knobs consumed by the networked front end
/// ([`TcpServer`](crate::wire::tcp::TcpServer)); the in-process
/// [`handle`](AuditorServer::handle) path ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads handling decoded frames.
    pub workers: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Bounded admission-queue depth in front of the worker pool.
    /// Connections arriving with the queue full are rejected with a
    /// typed [`Response::Overloaded`] instead of queueing unboundedly.
    pub queue_cap: usize,
    /// `retry_after_ms` hint sent with queue-full rejections.
    pub queue_full_retry_after_ms: u64,
    /// Floor for per-connection socket read deadlines, which doubles as
    /// the worst-case shutdown latency for a worker blocked in a read.
    /// Configurable so tests can shut down promptly.
    pub shutdown_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            queue_cap: 64,
            queue_full_retry_after_ms: 100,
            shutdown_poll: Duration::from_millis(10),
        }
    }
}

/// Wraps an [`Auditor`] behind the byte-level protocol, the way the
/// deployed AliDrone Server would sit behind a socket.
///
/// Construct with [`AuditorServer::builder`]. All request handling goes
/// through [`handle(&self)`](AuditorServer::handle), so share one
/// instance across threads with `Arc<AuditorServer>`.
#[derive(Debug)]
pub struct AuditorServer {
    auditor: Auditor,
    obs: Obs,
    metrics: ServerMetrics,
    recorder: Option<Arc<FlightRecorder>>,
    last_crash_dump: Mutex<Option<RecorderDump>>,
    serve: ServeConfig,
    rate_limit: Option<RateLimitConfig>,
    buckets: Mutex<HashMap<u64, Bucket>>,
    handle_delay: Option<HandleDelay>,
    /// The live introspection endpoint, when mounted via
    /// [`AuditorServerBuilder::scrape`]. Owned so it shuts down with
    /// the server.
    scrape: Option<ScrapeServer>,
}

/// Builder for [`AuditorServer`] — one place for every construction
/// knob: observability, flight recorder, and serving limits.
#[derive(Debug)]
pub struct AuditorServerBuilder {
    auditor: Auditor,
    obs: Obs,
    recorder: Option<Arc<FlightRecorder>>,
    serve: ServeConfig,
    rate_limit: Option<RateLimitConfig>,
    handle_delay: Option<HandleDelay>,
    scrape: Option<SocketAddr>,
    verify_threads: Option<usize>,
}

impl AuditorServerBuilder {
    /// Routes the server's metrics, events, and request spans into
    /// `obs` (default: a private no-op registry).
    pub fn obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attaches a flight recorder (normally the same one installed as
    /// the obs subscriber). With one attached, the server captures a
    /// crash dump automatically on malformed frames and error
    /// responses; the latest dump is kept in
    /// [`last_crash_dump`](AuditorServer::last_crash_dump).
    pub fn flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Worker-thread count for the networked front end (default 4).
    pub fn workers(mut self, n: usize) -> Self {
        self.serve.workers = n.max(1);
        self
    }

    /// Per-connection socket read timeout (default 5 s).
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.serve.read_timeout = d;
        self
    }

    /// Per-connection socket write timeout (default 5 s).
    pub fn write_timeout(mut self, d: Duration) -> Self {
        self.serve.write_timeout = d;
        self
    }

    /// Bounded admission-queue depth for the networked front end
    /// (default 64; clamped to ≥ 1).
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.serve.queue_cap = cap.max(1);
        self
    }

    /// Floor for per-connection read deadlines / worst-case shutdown
    /// latency (default 10 ms; clamped to ≥ 1 ms so sockets never get a
    /// zero timeout, which the OS rejects).
    pub fn shutdown_poll(mut self, d: Duration) -> Self {
        self.serve.shutdown_poll = d.max(Duration::from_millis(1));
        self
    }

    /// Enables the per-drone token-bucket rate limiter (default: off —
    /// admission is bounded only by the queue).
    pub fn rate_limit(mut self, cfg: RateLimitConfig) -> Self {
        self.rate_limit = Some(cfg);
        self
    }

    /// Injects artificial per-request handler latency (chaos testing).
    pub fn handle_delay<F: Fn() -> Duration + Send + Sync + 'static>(mut self, f: F) -> Self {
        self.handle_delay = Some(HandleDelay::new(f));
        self
    }

    /// Worker-thread count for the shared signature-verification pool
    /// the server installs on its auditor (default: the machine's
    /// available parallelism). Large PoA batches fan their per-entry
    /// signature checks across this pool instead of running serially on
    /// the request worker. Pass 0 to disable the pool entirely.
    pub fn verify_threads(mut self, n: usize) -> Self {
        self.verify_threads = Some(n);
        self
    }

    /// Mounts a live introspection endpoint on `addr` (port 0 for an
    /// OS-assigned port — read it back with
    /// [`AuditorServer::scrape_addr`]). The endpoint serves
    /// `GET /metrics` (Prometheus text of the server's registry, the
    /// slowest-request exemplars, and the flight recorder's drop
    /// counters) and `GET /dump` (a JSON flight-recorder view).
    pub fn scrape(mut self, addr: SocketAddr) -> Self {
        self.scrape = Some(addr);
        self
    }

    /// Finalises the server. Infallible: if a scrape endpoint was
    /// requested and its port cannot be bound, the server still builds
    /// — the failure is reported as a `Warn` event and
    /// [`AuditorServer::scrape_addr`] returns `None`.
    pub fn build(self) -> AuditorServer {
        let metrics = ServerMetrics::new(&self.obs);
        let pool = match self.verify_threads {
            Some(0) => None,
            Some(n) => Some(Arc::new(VerifyPool::new(n, &self.obs))),
            None => Some(Arc::new(VerifyPool::for_machine(&self.obs))),
        };
        if let Some(pool) = pool {
            // Keeps a pool the caller installed on the auditor directly.
            let _ = self.auditor.install_verify_pool(pool);
        }
        let scrape = self.scrape.and_then(|addr| {
            let mut sources =
                ScrapeSources::new(&self.obs).with_slow_table(Arc::clone(&metrics.slow));
            if let Some(rec) = &self.recorder {
                sources = sources.with_recorder(Arc::clone(rec));
            }
            match ScrapeServer::bind(addr, sources) {
                Ok(server) => Some(server),
                Err(e) => {
                    let message = e.to_string();
                    self.obs
                        .emit(Level::Warn, "wire.server", "scrape_bind_failed", |f| {
                            f.field("addr", format!("{addr}")).field("error", message);
                        });
                    None
                }
            }
        });
        AuditorServer {
            auditor: self.auditor,
            metrics,
            obs: self.obs,
            recorder: self.recorder,
            last_crash_dump: Mutex::new(None),
            serve: self.serve,
            rate_limit: self.rate_limit,
            buckets: Mutex::new(HashMap::new()),
            handle_delay: self.handle_delay,
            scrape,
        }
    }
}

impl AuditorServer {
    /// Starts building a server around an auditor; see
    /// [`AuditorServerBuilder`] for the knobs.
    pub fn builder(auditor: Auditor) -> AuditorServerBuilder {
        AuditorServerBuilder {
            auditor,
            obs: Obs::noop(),
            recorder: None,
            serve: ServeConfig::default(),
            rate_limit: None,
            handle_delay: None,
            scrape: None,
            verify_threads: None,
        }
    }

    /// The most recent automatic flight-recorder dump, if any protocol
    /// failure has occurred since a recorder was attached. Cloned out
    /// from behind the dump mutex, so callers hold no lock.
    pub fn last_crash_dump(&self) -> Option<RecorderDump> {
        // Invariant: holders of this lock only clone/replace the Option,
        // so a poisoned lock still guards structurally sound data.
        self.last_crash_dump
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Read access to the wrapped auditor (e.g. for inspection in
    /// tests). Every auditor entry point takes `&self`, so this is all
    /// the access anyone needs — there is no `auditor_mut`.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// The serving knobs the networked front end should honour.
    pub fn serve_config(&self) -> ServeConfig {
        self.serve
    }

    /// The observability handle the server reports into (shared with
    /// the networked front end so connection counters land in the same
    /// registry).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The bound address of the live introspection endpoint, when one
    /// was mounted (and bound successfully).
    pub fn scrape_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(|s| s.local_addr())
    }

    /// The slowest-request exemplar table (shared with the scrape
    /// endpoint; handy for tests and post-mortem tooling).
    pub fn slow_table(&self) -> Arc<SlowTable> {
        Arc::clone(&self.metrics.slow)
    }

    /// Handles one request frame. Never fails: malformed input or
    /// protocol errors become [`Response::Error`] frames.
    ///
    /// Equivalent to [`handle_at`](Self::handle_at) with a zero queue
    /// wait — in-process callers have no admission queue, so their
    /// deadline budget can never have expired in one.
    pub fn handle(&self, request_bytes: &[u8], now: Timestamp) -> Vec<u8> {
        self.handle_at(request_bytes, now, Duration::ZERO)
    }

    /// Handles one request frame that waited `queue_wait` in the
    /// admission queue before reaching a handler thread.
    ///
    /// Frames may arrive bare or wrapped in the trace envelope (see
    /// [`split_envelope_ext`](crate::wire::split_envelope_ext())); with
    /// an envelope, the per-request server span joins the caller's
    /// trace as a child of the caller's span. Before dispatching, the
    /// request runs the admission gauntlet **in shed-cheapest-first
    /// order**, none of which touches the auditor:
    ///
    /// 1. [`Request::HealthCheck`] short-circuits with
    ///    [`Response::Healthy`] — probes are never shed;
    /// 2. a propagated deadline budget smaller than `queue_wait` sheds
    ///    the request with [`ErrorCode::DeadlineExpired`]
    ///    (`server.shed.expired`) — the client has already given up, so
    ///    executing it would burn verification CPU for nobody;
    /// 3. the per-drone token bucket (when configured) sheds with
    ///    [`Response::Overloaded`] (`server.shed.ratelimited`).
    pub fn handle_at(&self, request_bytes: &[u8], now: Timestamp, queue_wait: Duration) -> Vec<u8> {
        self.metrics.requests.inc();
        // Stage attribution: the timer marks decode → admission →
        // handle → encode, and the per-kind latency total is the SUM of
        // those marks — so the stage histograms reconcile exactly with
        // the per-kind totals. Stages are committed only for executed
        // requests; health checks and shed requests record no latency
        // (they never reach the auditor).
        let mut timer = StageTimer::start();
        let mut executed: Option<usize> = None;
        let mut trace: Option<(u128, u64)> = None;
        let decoded = split_envelope_ext(request_bytes)
            .and_then(|(env, payload)| Request::from_bytes(payload).map(|req| (env, req)));
        timer.mark("decode");
        let response = match decoded {
            Ok((env, req)) => {
                let kind = request_kind_index(&req);
                if matches!(req, Request::HealthCheck) {
                    // Served from the wire layer without touching the
                    // auditor, exempt from every shedding check.
                    Response::Healthy {
                        queue_depth: self.metrics.queue_depth.get().max(0) as u32,
                        inflight: self.metrics.inflight.get().max(0) as u32,
                    }
                } else if env
                    .budget_micros
                    .is_some_and(|budget| queue_wait.as_micros() >= u128::from(budget))
                {
                    let waited = queue_wait.as_micros() as u64;
                    self.metrics.shed_expired.inc();
                    self.metrics.errors[error_code_index(ErrorCode::DeadlineExpired)].inc();
                    self.obs
                        .emit(Level::Warn, "wire.server", "shed_expired", |f| {
                            f.field("kind", REQUEST_KINDS[kind])
                                .field("queue_wait_us", waited);
                        });
                    Response::Error {
                        code: ErrorCode::DeadlineExpired,
                        message: format!("deadline budget expired after {waited}us in queue"),
                    }
                } else if let Some(retry_after_ms) = self.rate_limit_shed(&req, now) {
                    self.metrics.shed_ratelimited.inc();
                    self.obs
                        .emit(Level::Warn, "wire.server", "shed_ratelimited", |f| {
                            f.field("kind", REQUEST_KINDS[kind])
                                .field("retry_after_ms", retry_after_ms);
                        });
                    Response::Overloaded { retry_after_ms }
                } else {
                    timer.mark("admission");
                    if let Some(delay) = &self.handle_delay {
                        std::thread::sleep((delay.0)());
                    }
                    let span = match env.trace {
                        Some(ctx) => self.obs.span_with_remote_parent(
                            SERVER_SPAN_NAMES[kind],
                            ctx.trace_id,
                            ctx.span_id,
                        ),
                        None => self.obs.enter_span(SERVER_SPAN_NAMES[kind]),
                    };
                    trace = span.context().map(|c| (c.trace_id, c.span_id));
                    self.metrics.inflight.add(1);
                    let resp = self.dispatch(req, now);
                    self.metrics.inflight.add(-1);
                    span.finish();
                    timer.mark("handle");
                    executed = Some(kind);
                    if let Response::Error { code, .. } = &resp {
                        let code = *code;
                        self.metrics.errors[error_code_index(code)].inc();
                        self.obs
                            .emit(Level::Warn, "wire.server", "error_response", |f| {
                                f.field("kind", REQUEST_KINDS[kind])
                                    .field("code", ERROR_CODES[error_code_index(code)]);
                            });
                        self.capture_crash_dump("error_response");
                    }
                    resp
                }
            }
            Err(e) => {
                // Undecodable frames used to vanish into a bare error
                // string; now they are counted and the frame length is
                // surfaced in both the event and the response.
                let frame_len = request_bytes.len();
                self.metrics.malformed_frames.inc();
                self.metrics.errors[error_code_index(ErrorCode::Malformed)].inc();
                self.obs
                    .emit(Level::Warn, "wire.server", "malformed_frame", |f| {
                        f.field("frame_len", frame_len as u64);
                    });
                self.capture_crash_dump("malformed_frame");
                Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!("malformed frame ({frame_len} bytes): {e}"),
                }
            }
        };
        let bytes = response.to_bytes();
        if let Some(kind) = executed {
            timer.mark("encode");
            let queue_wait_micros = queue_wait.as_micros() as u64;
            self.metrics
                .stage_queue_wait
                .record_micros(queue_wait_micros);
            for &(stage, micros) in timer.stages() {
                if let Some(h) = self.metrics.stage_histogram(stage) {
                    h.record_micros(micros);
                }
            }
            let total = timer.total_micros();
            self.metrics.latency[kind].record_micros(total);
            self.metrics.slow.offer(SlowExemplar {
                kind: REQUEST_KINDS[kind].to_string(),
                total_micros: total,
                queue_wait_micros,
                stages: timer.into_stages(),
                trace_id: trace.map(|t| t.0),
                span_id: trace.map(|t| t.1),
            });
        }
        bytes
    }

    /// Token-bucket admission check. Returns `Some(retry_after_ms)`
    /// when the request must be shed, `None` when admitted (including
    /// when no limiter is configured or the request is free).
    ///
    /// Refill is computed from the request clock (`now`), never wall
    /// time, so a simulated-clock campaign replays the exact same
    /// admit/shed schedule from one seed. Out-of-order timestamps
    /// (concurrent workers racing) clamp the refill delta to zero
    /// rather than underflowing.
    fn rate_limit_shed(&self, req: &Request, now: Timestamp) -> Option<u64> {
        let cfg = self.rate_limit.as_ref()?;
        let cost = f64::from(request_cost(req));
        if cost == 0.0 {
            return None;
        }
        let key = source_drone(req).map_or(ANON_BUCKET, |d| d.value());
        // Invariant: bucket entries are plain Copy data mutated in
        // place; a poisoned lock still guards structurally sound state.
        let mut buckets = self.buckets.lock().unwrap_or_else(|p| p.into_inner());
        if buckets.len() >= MAX_BUCKETS && !buckets.contains_key(&key) {
            buckets.clear();
        }
        let bucket = buckets.entry(key).or_insert(Bucket {
            tokens: cfg.burst,
            last_refill_secs: now.secs(),
        });
        let dt = (now.secs() - bucket.last_refill_secs).max(0.0);
        if dt > 0.0 {
            bucket.last_refill_secs = now.secs();
            bucket.tokens = (bucket.tokens + dt * cfg.tokens_per_sec).min(cfg.burst);
        }
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            None
        } else {
            let deficit = cost - bucket.tokens;
            let wait_ms = (deficit / cfg.tokens_per_sec * 1000.0).ceil() as u64;
            Some(wait_ms.clamp(1, cfg.retry_after_cap_ms))
        }
    }

    /// Freezes the attached recorder into a crash dump (including the
    /// event/span that triggered it, which the subscriber has already
    /// seen by the time this runs).
    fn capture_crash_dump(&self, reason: &'static str) {
        if let Some(rec) = &self.recorder {
            let dump = rec.dump();
            self.obs
                .emit(Level::Info, "wire.server", "flight_recorder_dump", |f| {
                    f.field("reason", reason)
                        .field("spans", dump.spans.len())
                        .field("events", dump.events.len());
                });
            // Invariant: the slot only ever holds a whole replaced
            // Option, so writing through a poisoned lock is sound.
            *self
                .last_crash_dump
                .lock()
                .unwrap_or_else(|p| p.into_inner()) = Some(dump);
        }
    }

    fn dispatch(&self, req: Request, now: Timestamp) -> Response {
        match req {
            Request::RegisterDrone {
                operator_public,
                tee_public,
            } => match self
                .auditor
                .register_drone_durable(operator_public, tee_public)
            {
                Ok(id) => Response::DroneRegistered(id),
                Err(e) => error_response(e),
            },
            Request::RegisterZone { zone } => match self.auditor.register_zone_durable(zone) {
                Ok(id) => Response::ZoneRegistered(id),
                Err(e) => error_response(e),
            },
            Request::QueryZones(q) => match self.auditor.handle_zone_query(&q) {
                Ok(resp) => Response::Zones(resp.zones),
                Err(e) => error_response(e),
            },
            Request::SubmitPoa {
                drone_id,
                window_start,
                window_end,
                poa,
            } => match ProofOfAlibi::from_bytes(&poa) {
                Ok(poa) => {
                    let submission = Submission::plain(PoaSubmission {
                        drone_id,
                        window_start,
                        window_end,
                        poa,
                    });
                    match self.auditor.verify(&submission, now) {
                        Ok(report) => Response::Verdict(report.verdict),
                        Err(e) => error_response(e),
                    }
                }
                Err(e) => error_response(e),
            },
            Request::SubmitEncryptedPoa {
                drone_id,
                window_start,
                window_end,
                blocks,
            } => {
                let encrypted = crate::poa::EncryptedPoa::from_blocks(blocks);
                let submission =
                    Submission::encrypted(drone_id, window_start, window_end, encrypted);
                match self.auditor.verify(&submission, now) {
                    Ok(report) => Response::Verdict(report.verdict),
                    Err(e) => error_response(e),
                }
            }
            Request::Accuse(a) => match self.auditor.handle_accusation(&a) {
                Ok(AccusationOutcome::Refuted) => Response::Accusation {
                    refuted: true,
                    reason: String::new(),
                },
                Ok(AccusationOutcome::Upheld { reason }) => Response::Accusation {
                    refuted: false,
                    reason,
                },
                Err(e) => error_response(e),
            },
            Request::FetchTreeHead => match self.auditor.signed_tree_head() {
                Ok(sth) => Response::TreeHead(sth),
                Err(e) => error_response(e),
            },
            Request::FetchInclusionProof {
                drone_id,
                tree_size,
            } => match self.auditor.audit_inclusion_proof(drone_id, tree_size) {
                Ok(proof) => Response::InclusionProof(proof),
                Err(e) => error_response(e),
            },
            Request::FetchConsistencyProof { old_size, new_size } => {
                match self.auditor.audit_consistency_proof(old_size, new_size) {
                    Ok(proof) => Response::ConsistencyProof(proof),
                    Err(e) => error_response(e),
                }
            }
            // Short-circuited in handle_at before dispatch; kept here
            // for exhaustiveness (and correctness should a future
            // caller dispatch directly).
            Request::HealthCheck => Response::Healthy {
                queue_depth: self.metrics.queue_depth.get().max(0) as u32,
                inflight: self.metrics.inflight.get().max(0) as u32,
            },
        }
    }
}

fn error_response(e: ProtocolError) -> Response {
    if let ProtocolError::Overloaded { retry_after_ms } = e {
        return Response::Overloaded { retry_after_ms };
    }
    let code = match &e {
        ProtocolError::UnknownDrone(_) => ErrorCode::UnknownDrone,
        ProtocolError::UnknownZone(_) => ErrorCode::UnknownZone,
        ProtocolError::QuerySignatureInvalid => ErrorCode::BadSignature,
        ProtocolError::NonceReplayed => ErrorCode::NonceReplayed,
        ProtocolError::Crypto(_) => ErrorCode::DecryptFailed,
        ProtocolError::Malformed(_) | ProtocolError::Geo(_) => ErrorCode::Malformed,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::AuditorConfig;
    use crate::messages::ZoneQuery;
    use crate::test_support::{auditor_key, operator_key, origin, signed_samples, tee_key};
    use crate::{DroneId, Verdict};
    use alidrone_geo::{Distance, NoFlyZone};

    fn server() -> AuditorServer {
        AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .build()
    }

    fn now() -> Timestamp {
        Timestamp::from_secs(50.0)
    }

    fn register(server: &AuditorServer) -> DroneId {
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        match Response::from_bytes(&server.handle(&req.to_bytes(), now())).unwrap() {
            Response::DroneRegistered(id) => id,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_and_submit_over_the_wire() {
        let s = server();
        let id = register(&s);
        // Register a far zone.
        let zreq = Request::RegisterZone {
            zone: NoFlyZone::new(
                origin().destination(0.0, Distance::from_km(50.0)),
                Distance::from_meters(100.0),
            ),
        };
        let resp = Response::from_bytes(&s.handle(&zreq.to_bytes(), now())).unwrap();
        assert!(matches!(resp, Response::ZoneRegistered(_)));

        // Submit a compliant PoA.
        let poa = ProofOfAlibi::from_entries(signed_samples(6));
        let req = Request::SubmitPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(5.0),
            poa: poa.to_bytes(),
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert_eq!(resp, Response::Verdict(Verdict::Compliant));
        assert_eq!(s.auditor().stored_poa_count(), 1);
    }

    #[test]
    fn malformed_frame_yields_error_response() {
        let s = server();
        let resp = Response::from_bytes(&s.handle(&[0xFF, 0x01], now())).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            }
        ));
    }

    #[test]
    fn malformed_frame_is_counted_and_reported_with_length() {
        use alidrone_obs::RingBuffer;
        use std::sync::Arc;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();

        let frame = [0xFF, 0x01, 0x02];
        let resp = Response::from_bytes(&s.handle(&frame, now())).unwrap();
        let Response::Error { code, message } = resp else {
            panic!("expected error response");
        };
        assert_eq!(code, ErrorCode::Malformed);
        assert!(message.contains("3 bytes"), "message: {message}");

        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.malformed_frames"), 1);
        assert_eq!(snap.counter("server.errors.malformed"), 1);
        let events = ring.events();
        let ev = events
            .iter()
            .find(|e| e.message == "malformed_frame")
            .expect("malformed_frame event");
        assert_eq!(ev.level, Level::Warn);
        assert_eq!(ev.field("frame_len").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn request_latency_and_error_codes_are_tracked() {
        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();

        // A successful registration and an unknown-drone submission.
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        s.handle(&req.to_bytes(), now());
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(404),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new().to_bytes(),
        };
        s.handle(&req.to_bytes(), now());

        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.requests"), 2);
        assert_eq!(
            snap.histogram("server.latency.register_drone")
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snap.histogram("server.latency.submit_poa").unwrap().count,
            1
        );
        assert!(snap.histogram("server.latency.accuse").unwrap().count == 0);
        assert_eq!(snap.counter("server.errors.unknown_drone"), 1);
        assert_eq!(snap.counter("server.errors.internal"), 0);
    }

    #[test]
    fn unknown_drone_error_code() {
        let s = server();
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(404),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new().to_bytes(),
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::UnknownDrone,
                ..
            }
        ));
    }

    #[test]
    fn replayed_query_error_code() {
        let s = server();
        let id = register(&s);
        let q = ZoneQuery::new_signed(id, origin(), origin(), [3u8; 16], operator_key()).unwrap();
        let req = Request::QueryZones(q).to_bytes();
        let first = Response::from_bytes(&s.handle(&req, now())).unwrap();
        assert!(matches!(first, Response::Zones(_)));
        let second = Response::from_bytes(&s.handle(&req, now())).unwrap();
        assert!(matches!(
            second,
            Response::Error {
                code: ErrorCode::NonceReplayed,
                ..
            }
        ));
    }

    #[test]
    fn encrypted_submission_over_the_wire() {
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(55);
        let s = server();
        let id = register(&s);
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let enc = poa
            .encrypt(s.auditor().public_encryption_key(), &mut rng)
            .unwrap();
        let req = Request::SubmitEncryptedPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(3.0),
            blocks: enc.blocks().to_vec(),
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert_eq!(resp, Response::Verdict(Verdict::Compliant));
    }

    #[test]
    fn garbage_encrypted_blocks_yield_decrypt_error() {
        let s = server();
        let id = register(&s);
        let req = Request::SubmitEncryptedPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            blocks: vec![vec![0xAA; 64]],
        };
        let resp = Response::from_bytes(&s.handle(&req.to_bytes(), now())).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::DecryptFailed,
                ..
            }
        ));
    }

    #[test]
    fn enveloped_request_adopts_the_wire_trace() {
        use crate::wire::{encode_enveloped, WireTraceContext};
        use std::sync::Arc;

        let obs = Obs::noop();
        let recorder = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(recorder.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        let ctx = WireTraceContext {
            trace_id: 0xFACE,
            span_id: 0xBEEF,
        };
        let frame = encode_enveloped(ctx, &req.to_bytes());
        let resp = Response::from_bytes(&s.handle(&frame, now())).unwrap();
        assert!(matches!(resp, Response::DroneRegistered(_)));
        let spans = recorder.spans();
        let server_span = spans
            .iter()
            .find(|sp| sp.name == "server.register_drone")
            .expect("server span");
        assert_eq!(server_span.context.trace_id, 0xFACE);
        assert_eq!(server_span.context.parent_id, Some(0xBEEF));
    }

    #[test]
    fn untraced_server_still_accepts_enveloped_frames() {
        use crate::wire::{encode_enveloped, WireTraceContext};
        let s = server();
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        let ctx = WireTraceContext {
            trace_id: 1,
            span_id: 2,
        };
        let resp = Response::from_bytes(&s.handle(&encode_enveloped(ctx, &req.to_bytes()), now()))
            .unwrap();
        assert!(matches!(resp, Response::DroneRegistered(_)));
    }

    #[test]
    fn malformed_frame_and_error_response_dump_the_recorder() {
        use std::sync::Arc;

        let obs = Obs::noop();
        let recorder = Arc::new(FlightRecorder::new(32));
        obs.set_subscriber(recorder.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .flight_recorder(recorder)
        .build();
        assert!(s.last_crash_dump().is_none());

        // Build up some context first, then trip the malformed path.
        let req = Request::RegisterDrone {
            operator_public: operator_key().public_key().clone(),
            tee_public: tee_key().public_key().clone(),
        };
        s.handle(&req.to_bytes(), now());
        s.handle(&[0xFF, 0x01], now());
        let dump = s.last_crash_dump().expect("malformed frame dumps");
        assert!(!dump.is_empty());
        assert!(dump
            .spans
            .iter()
            .any(|sp| sp.name == "server.register_drone"));

        // An error response (unknown drone) refreshes the dump.
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(404),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(1.0),
            poa: ProofOfAlibi::new().to_bytes(),
        };
        s.handle(&req.to_bytes(), now());
        let dump = s.last_crash_dump().expect("error response dumps");
        assert!(dump.spans.iter().any(|sp| sp.name == "server.submit_poa"));
        // The dump itself is reported as an event for live observers.
        assert!(dump
            .events
            .iter()
            .any(|e| e.message == "flight_recorder_dump"));
    }

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AuditorServer>();
        assert_send_sync::<Auditor>();

        // Serve the same Arc'd instance from two threads at once.
        let s = Arc::new(server());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || register(&s))
            })
            .collect();
        let ids: Vec<DroneId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_ne!(ids[0], ids[1]);
        assert_eq!(s.auditor().drone_count(), 2);
    }

    #[test]
    fn builder_sets_serve_config() {
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .workers(9)
        .read_timeout(Duration::from_millis(250))
        .write_timeout(Duration::from_millis(750))
        .queue_cap(17)
        .shutdown_poll(Duration::from_millis(3))
        .build();
        assert_eq!(
            s.serve_config(),
            ServeConfig {
                workers: 9,
                read_timeout: Duration::from_millis(250),
                write_timeout: Duration::from_millis(750),
                queue_cap: 17,
                queue_full_retry_after_ms: 100,
                shutdown_poll: Duration::from_millis(3),
            }
        );
        // Zero workers is clamped to one.
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .workers(0)
        .build();
        assert_eq!(s.serve_config().workers, 1);
    }

    #[test]
    fn builder_wires_obs_and_recorder() {
        let recorder = Arc::new(FlightRecorder::new(8));
        let obs = Obs::noop();
        obs.set_subscriber(recorder.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .flight_recorder(recorder)
        .build();
        register(&s);
        assert_eq!(s.auditor().drone_count(), 1);
    }

    #[test]
    fn health_check_answers_without_touching_the_auditor() {
        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();
        let resp =
            Response::from_bytes(&s.handle(&Request::HealthCheck.to_bytes(), now())).unwrap();
        assert_eq!(
            resp,
            Response::Healthy {
                queue_depth: 0,
                inflight: 0,
            }
        );
        // No auditor state touched, no latency recorded for it.
        assert_eq!(s.auditor().drone_count(), 0);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.requests"), 1);
        assert_eq!(
            snap.histogram("server.latency.health_check").unwrap().count,
            0
        );
    }

    #[test]
    fn expired_budget_sheds_before_the_auditor_runs() {
        use crate::wire::{encode_envelope, WireEnvelope};

        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();
        let id = register(&s);
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let req = Request::SubmitPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(3.0),
            poa: poa.to_bytes(),
        };
        // The frame carries a 2 ms budget but waited 5 ms in the queue.
        let frame = encode_envelope(
            &WireEnvelope {
                trace: None,
                budget_micros: Some(2_000),
            },
            &req.to_bytes(),
        );
        let resp =
            Response::from_bytes(&s.handle_at(&frame, now(), Duration::from_millis(5))).unwrap();
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::DeadlineExpired,
                ..
            }
        ));
        // Shed before execution: nothing stored, no verify latency.
        assert_eq!(s.auditor().stored_poa_count(), 0);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("server.shed.expired"), 1);
        assert_eq!(snap.counter("server.errors.deadline_expired"), 1);
        assert_eq!(
            snap.histogram("server.latency.submit_poa").unwrap().count,
            0
        );

        // The same frame with a roomy budget executes normally.
        let frame = encode_envelope(
            &WireEnvelope {
                trace: None,
                budget_micros: Some(10_000_000),
            },
            &req.to_bytes(),
        );
        let resp =
            Response::from_bytes(&s.handle_at(&frame, now(), Duration::from_millis(5))).unwrap();
        assert_eq!(resp, Response::Verdict(Verdict::Compliant));
        assert_eq!(s.auditor().stored_poa_count(), 1);
    }

    #[test]
    fn rate_limiter_sheds_with_retry_hint_and_refills_on_the_request_clock() {
        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .rate_limit(RateLimitConfig {
            tokens_per_sec: 10.0,
            burst: 20.0,
            retry_after_cap_ms: 5_000,
        })
        .build();
        let id = register(&s);
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let submit = Request::SubmitPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(3.0),
            poa: poa.to_bytes(),
        }
        .to_bytes();

        // Burst 20, cost 10 per submission: two admit, the third sheds.
        let t = Timestamp::from_secs(50.0);
        for _ in 0..2 {
            let resp = Response::from_bytes(&s.handle(&submit, t)).unwrap();
            assert_eq!(resp, Response::Verdict(Verdict::Compliant));
        }
        let resp = Response::from_bytes(&s.handle(&submit, t)).unwrap();
        let Response::Overloaded { retry_after_ms } = resp else {
            panic!("expected Overloaded, got {resp:?}");
        };
        // Deficit is 10 tokens at 10/s = exactly 1000 ms.
        assert_eq!(retry_after_ms, 1_000);
        assert_eq!(obs.snapshot().counter("server.shed.ratelimited"), 1);

        // One simulated second later the bucket has refilled enough.
        let resp = Response::from_bytes(&s.handle(&submit, Timestamp::from_secs(51.0))).unwrap();
        assert_eq!(resp, Response::Verdict(Verdict::Compliant));

        // Registrations (cost 1, anonymous bucket) are untouched by the
        // drone's exhausted bucket.
        register(&s);
    }

    #[test]
    fn rate_limit_schedule_is_deterministic() {
        // Same seed-free construction + same request/clock schedule
        // twice → byte-identical response vectors.
        let run = || -> Vec<Vec<u8>> {
            let s = AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                auditor_key().clone(),
            ))
            .rate_limit(RateLimitConfig {
                tokens_per_sec: 2.0,
                burst: 3.0,
                retry_after_cap_ms: 9_000,
            })
            .build();
            let id = register(&s);
            let q = |nonce: u8| {
                Request::QueryZones(
                    ZoneQuery::new_signed(id, origin(), origin(), [nonce; 16], operator_key())
                        .unwrap(),
                )
                .to_bytes()
            };
            (0..10u8)
                .map(|i| s.handle(&q(i), Timestamp::from_secs(50.0 + f64::from(i) * 0.1)))
                .collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stage_sums_reconcile_exactly_with_latency_totals() {
        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .build();

        // A mix of executed, shed-free, and never-executed requests.
        let id = register(&s);
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let submit = Request::SubmitPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(3.0),
            poa: poa.to_bytes(),
        };
        s.handle(&submit.to_bytes(), now());
        let q = ZoneQuery::new_signed(id, origin(), origin(), [9u8; 16], operator_key()).unwrap();
        s.handle(&Request::QueryZones(q).to_bytes(), now());
        s.handle(&Request::HealthCheck.to_bytes(), now()); // no stages
        s.handle(&[0xFF], now()); // malformed: no stages

        let snap = obs.snapshot();
        let latency_count: u64 = REQUEST_KINDS
            .iter()
            .map(|k| {
                snap.histogram(&format!("server.latency.{k}"))
                    .unwrap()
                    .count
            })
            .sum();
        let latency_sum: u64 = REQUEST_KINDS
            .iter()
            .map(|k| {
                snap.histogram(&format!("server.latency.{k}"))
                    .unwrap()
                    .sum_micros
            })
            .sum();
        assert_eq!(latency_count, 3, "register + submit + query executed");
        for stage in PIPELINE_STAGES {
            let h = snap.histogram(&format!("server.stage.{stage}")).unwrap();
            assert_eq!(h.count, latency_count, "stage {stage} count");
        }
        let stage_sum: u64 = PIPELINE_STAGES
            .iter()
            .map(|stage| {
                snap.histogram(&format!("server.stage.{stage}"))
                    .unwrap()
                    .sum_micros
            })
            .sum();
        // Exact, not approximate: totals are computed as the sum of the
        // same stage marks the stage histograms record.
        assert_eq!(stage_sum, latency_sum);
        // Queue wait is tracked per executed request but excluded from
        // the reconciling set.
        assert_eq!(
            snap.histogram("server.stage.queue_wait").unwrap().count,
            latency_count
        );
    }

    #[test]
    fn slow_table_captures_executed_requests_with_stage_breakdown() {
        let s = server();
        let id = register(&s);
        let poa = ProofOfAlibi::from_entries(signed_samples(4));
        let req = Request::SubmitPoa {
            drone_id: id,
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(3.0),
            poa: poa.to_bytes(),
        };
        s.handle(&req.to_bytes(), now());

        let entries = s.slow_table().entries();
        assert_eq!(entries.len(), 2, "register + submit");
        // Slowest first: RSA verification makes the submission dominate.
        assert_eq!(entries[0].kind, "submit_poa");
        let stage_names: Vec<&str> = entries[0].stages.iter().map(|&(n, _)| n).collect();
        assert_eq!(stage_names, vec!["decode", "admission", "handle", "encode"]);
        assert_eq!(
            entries[0].total_micros,
            entries[0].stages.iter().map(|&(_, us)| us).sum::<u64>()
        );
        // Untraced requests still rank; they just carry no trace join.
        assert!(entries[0].trace_id.is_none());
    }

    #[test]
    fn scrape_endpoint_serves_the_server_registry_live() {
        use std::io::{Read as _, Write as _};
        use std::net::TcpStream;

        let obs = Obs::noop();
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .scrape("127.0.0.1:0".parse().unwrap())
        .build();
        let addr = s.scrape_addr().expect("scrape endpoint bound");
        register(&s);

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200"), "{body}");
        assert!(body.contains("server_requests_total 1"), "{body}");
        assert!(
            body.contains("server_slowest_seconds{rank=\"0\",kind=\"register_drone\""),
            "{body}"
        );
        assert!(body.contains("server_stage_handle_count 1"), "{body}");
    }

    #[test]
    fn scrape_bind_failure_degrades_to_an_event_not_a_panic() {
        use alidrone_obs::RingBuffer;

        // Occupy a port, then ask the server to scrape-bind the same
        // one.
        let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = taken.local_addr().unwrap();
        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let s = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            auditor_key().clone(),
        ))
        .obs(&obs)
        .scrape(addr)
        .build();
        assert!(s.scrape_addr().is_none());
        assert!(ring
            .events()
            .iter()
            .any(|e| e.message == "scrape_bind_failed"));
        // The server still serves requests.
        register(&s);
    }

    #[test]
    fn accusation_over_the_wire() {
        let s = server();
        let id = register(&s);
        let zreq = Request::RegisterZone {
            zone: NoFlyZone::new(
                origin().destination(0.0, Distance::from_km(50.0)),
                Distance::from_meters(100.0),
            ),
        };
        let zid = match Response::from_bytes(&s.handle(&zreq.to_bytes(), now())).unwrap() {
            Response::ZoneRegistered(z) => z,
            other => panic!("{other:?}"),
        };
        // Without any stored PoA the accusation is upheld.
        let areq = Request::Accuse(crate::Accusation {
            zone_id: zid,
            drone_id: id,
            time: Timestamp::from_secs(2.0),
        });
        let resp = Response::from_bytes(&s.handle(&areq.to_bytes(), now())).unwrap();
        match resp {
            Response::Accusation { refuted, reason } => {
                assert!(!refuted);
                assert!(!reason.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}
