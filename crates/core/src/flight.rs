//! The flight driver: runs a sampling policy against a receiver + TEE
//! over simulated time, producing the PoA and the per-update metrics the
//! evaluation section plots.

use alidrone_geo::{Distance, Duration, GeoPoint, Timestamp, ZoneSet};
use alidrone_gps::{GpsDevice, SimClock};
use alidrone_obs::Obs;
use alidrone_tee::TeeSession;

use crate::poa::ProofOfAlibi;
use crate::sampling::{AdaptiveSampler, Decision, FixedRateSampler, SamplingPolicy};
use crate::ProtocolError;

/// Which sampling policy a flight uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingStrategy {
    /// The paper's Algorithm 1 (with dropout recovery — see
    /// [`AdaptiveSampler`]).
    Adaptive,
    /// The *literal* Algorithm 1 without recovery, for ablations.
    AdaptiveStrict,
    /// Algorithm 1 with the pairwise-safe trigger (evaluates every zone
    /// per pair, closing the sharp-turn corner case — see
    /// [`AdaptiveSampler::pairwise_safe`]).
    AdaptivePairwise,
    /// Fixed-rate baseline at the given rate (Hz).
    FixedRate(f64),
}

/// One hardware GPS update as observed by the Adapter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEvent {
    /// Simulated time of the update.
    pub time: Timestamp,
    /// Normal-world position at the update.
    pub position: GeoPoint,
    /// Whether the policy recorded an authenticated sample here.
    pub recorded: bool,
    /// Distance to the nearest zone boundary (the Fig. 8(a) series), if
    /// any zones exist.
    pub nearest_boundary: Option<Distance>,
}

/// The result of one simulated flight.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The Proof-of-Alibi recorded during the flight.
    pub poa: ProofOfAlibi,
    /// One event per hardware GPS update.
    pub events: Vec<SampleEvent>,
    /// Policy name (for experiment tables).
    pub strategy: String,
    /// Flight window start (first hardware update).
    pub window_start: Timestamp,
    /// Flight window end (last hardware update).
    pub window_end: Timestamp,
}

impl FlightRecord {
    /// Number of authenticated samples recorded.
    pub fn sample_count(&self) -> usize {
        self.poa.len()
    }

    /// Mean authenticated-sampling rate over the flight, in Hz.
    pub fn mean_rate_hz(&self) -> f64 {
        let dur = (self.window_end - self.window_start).secs();
        if dur <= 0.0 {
            return 0.0;
        }
        self.poa.len() as f64 / dur
    }
}

/// Runs one flight: advances the shared clock through every hardware GPS
/// update for `duration`, letting the policy decide when to call
/// `GetGPSAuth` on `session`.
///
/// The receiver must share `clock` (and be the same device the TEE's GPS
/// driver reads). Both policies record a final landing sample so the PoA
/// covers the whole window.
///
/// # Errors
///
/// Propagates TEE errors other than `NoData` (a receiver dropout is
/// handled by skipping the update, as the real Adapter would). A dropout
/// lasting more than three hardware update periods is *declared*: the
/// TEE signs a gap marker over the outage window and the marker rides in
/// the returned PoA, where the auditor's sufficiency check accounts for
/// it.
pub fn run_flight(
    clock: &SimClock,
    receiver: &dyn GpsDevice,
    session: &TeeSession,
    zones: &ZoneSet,
    strategy: SamplingStrategy,
    duration: Duration,
) -> Result<FlightRecord, ProtocolError> {
    run_flight_with_obs(
        clock,
        receiver,
        session,
        zones,
        strategy,
        duration,
        &Obs::noop(),
    )
}

/// As [`run_flight`], routing the sampling policy's decision counters
/// and rate-change events into `obs`.
///
/// # Errors
///
/// As [`run_flight`].
#[allow(clippy::too_many_arguments)]
pub fn run_flight_with_obs(
    clock: &SimClock,
    receiver: &dyn GpsDevice,
    session: &TeeSession,
    zones: &ZoneSet,
    strategy: SamplingStrategy,
    duration: Duration,
    obs: &Obs,
) -> Result<FlightRecord, ProtocolError> {
    run_flight_with_hook(
        clock,
        receiver,
        session,
        zones,
        strategy,
        duration,
        obs,
        &mut |_| {},
    )
}

/// As [`run_flight_with_obs`], invoking `on_step` once per simulated
/// hardware step, right after the sim clock advances to that step's
/// time (i.e. before the step's sampling work). Long-soak harnesses use
/// this to take periodic metrics snapshots on *sim* time, turning
/// end-of-run totals into rate-over-time series.
///
/// # Errors
///
/// As [`run_flight`].
#[allow(clippy::too_many_arguments)]
pub fn run_flight_with_hook(
    clock: &SimClock,
    receiver: &dyn GpsDevice,
    session: &TeeSession,
    zones: &ZoneSet,
    strategy: SamplingStrategy,
    duration: Duration,
    obs: &Obs,
    on_step: &mut dyn FnMut(Timestamp),
) -> Result<FlightRecord, ProtocolError> {
    let hw_rate = receiver.update_rate_hz();
    let mut policy: Box<dyn SamplingPolicy> = match strategy {
        SamplingStrategy::Adaptive => {
            Box::new(AdaptiveSampler::new(zones.clone(), hw_rate).with_obs(obs))
        }
        SamplingStrategy::AdaptiveStrict => {
            Box::new(AdaptiveSampler::strict_paper(zones.clone(), hw_rate).with_obs(obs))
        }
        SamplingStrategy::AdaptivePairwise => {
            Box::new(AdaptiveSampler::pairwise_safe(zones.clone(), hw_rate).with_obs(obs))
        }
        SamplingStrategy::FixedRate(hz) => Box::new(FixedRateSampler::new(hz)),
    };

    let start = clock.now();
    let steps = (duration.secs() * hw_rate).round() as u64;
    let mut poa = ProofOfAlibi::new();
    let mut events = Vec::with_capacity(steps as usize + 1);
    let mut last_seen_fix_time = f64::NEG_INFINITY;
    // Degraded mode: a fix older than three hardware update periods means
    // the receiver has lost lock. Instead of silently skipping, the
    // Adapter declares the outage and has the TEE sign a gap marker, so
    // the missing stretch *weakens* the alibi rather than vanishing.
    let stale_after = 3.0 / hw_rate;
    let mut gap_open: Option<Timestamp> = None;

    for k in 0..=steps {
        clock.set(start + Duration::from_secs(k as f64 / hw_rate));
        on_step(clock.now());
        let Some(fix) = receiver.latest_fix() else {
            // Before the first fix this is a cold receiver; after it, a
            // receiver reporting no fix at all is an outage and must
            // open a gap just like a stale repeated fix does.
            if gap_open.is_none()
                && last_seen_fix_time.is_finite()
                && clock.now().secs() - last_seen_fix_time > stale_after
            {
                gap_open = Some(Timestamp::from_secs(last_seen_fix_time));
            }
            continue;
        };
        // Only consult the policy when the measurement actually changed
        // (a dropout leaves the previous fix in place).
        let is_new = fix.sample.time().secs() > last_seen_fix_time;
        if is_new {
            if let Some(gap_start) = gap_open.take() {
                // Lock regained: attest the outage window that just ended.
                let marker = session.sign_gap(gap_start, fix.sample.time())?;
                obs.emit(
                    alidrone_obs::Level::Warn,
                    "drone.flight",
                    "gps gap declared",
                    |f| {
                        f.field("start_s", gap_start.secs());
                        f.field("end_s", fix.sample.time().secs());
                    },
                );
                obs.counter("flight.gaps_declared").inc();
                poa.push_gap(marker);
            }
            last_seen_fix_time = fix.sample.time().secs();
        } else if gap_open.is_none()
            && last_seen_fix_time.is_finite()
            && clock.now().secs() - last_seen_fix_time > stale_after
        {
            gap_open = Some(Timestamp::from_secs(last_seen_fix_time));
        }
        let mut recorded = false;
        if is_new && policy.decide(&fix) == Decision::Sample {
            // One traced span per authenticated sample: the TEE's
            // `tee.sign` span opens on the same handle and nests under
            // this one (see `Obs::enter_span`).
            let span = obs.enter_span("drone.sample");
            match session.get_gps_auth() {
                Ok(signed) => {
                    policy.on_recorded(signed.sample());
                    poa.push(signed);
                    recorded = true;
                }
                Err(alidrone_tee::TeeError::NoData) => {}
                Err(e) => {
                    span.cancel();
                    return Err(e.into());
                }
            }
            drop(span);
        }
        events.push(SampleEvent {
            time: clock.now(),
            position: fix.sample.point(),
            recorded,
            nearest_boundary: zones.nearest_boundary_distance(&fix.sample.point()),
        });
    }

    // Landing anchor: make sure the PoA reaches the window end.
    let window_end = clock.now();
    if let Some(gap_start) = gap_open.take() {
        // Still in outage at landing: the gap runs to the window end.
        let marker = session.sign_gap(gap_start, window_end)?;
        obs.counter("flight.gaps_declared").inc();
        poa.push_gap(marker);
    }
    let need_final = poa.last_time().is_none_or(|t| t.secs() < window_end.secs());
    if need_final {
        let _span = obs.enter_span("drone.sample");
        if let Ok(signed) = session.get_gps_auth() {
            if poa
                .last_time()
                .is_none_or(|t| signed.sample().time().secs() > t.secs())
            {
                poa.push(signed);
            }
        }
    }

    Ok(FlightRecord {
        poa,
        events,
        strategy: policy.name(),
        window_start: start,
        window_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{origin, tee_key};
    use alidrone_geo::trajectory::TrajectoryBuilder;
    use alidrone_geo::{NoFlyZone, Speed};
    use alidrone_gps::SimulatedReceiver;
    use alidrone_tee::{CostModel, SecureWorldBuilder, TeeClient, GPS_SAMPLER_UUID};
    use std::sync::Arc;

    /// Sets up a shared receiver + TEE for a straight eastbound flight.
    fn setup(
        dist_m: f64,
        speed_mps: f64,
        hw_rate: f64,
    ) -> (SimClock, Arc<SimulatedReceiver>, TeeClient) {
        let a = origin();
        let b = a.destination(90.0, Distance::from_meters(dist_m));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(speed_mps))
            .build()
            .unwrap();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(
            traj,
            clock.clone(),
            hw_rate,
        ));
        let world = SecureWorldBuilder::new()
            .with_sign_key(tee_key().clone())
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap();
        (clock, receiver, world.client())
    }

    fn zone_ahead(dist_m: f64, radius_m: f64) -> ZoneSet {
        std::iter::once(NoFlyZone::new(
            origin().destination(90.0, Distance::from_meters(dist_m)),
            Distance::from_meters(radius_m),
        ))
        .collect()
    }

    #[test]
    fn fixed_rate_records_expected_count() {
        let (clock, receiver, client) = setup(600.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &ZoneSet::new(),
            SamplingStrategy::FixedRate(1.0),
            Duration::from_secs(30.0),
        )
        .unwrap();
        // 1 Hz over 30 s: samples at t = 0..30 inclusive.
        assert_eq!(rec.sample_count(), 31);
        assert_eq!(rec.events.len(), 151);
        assert!(alidrone_geo::check_monotonic(&rec.poa.alibi()).is_ok());
        // A healthy receiver never triggers a gap declaration.
        assert!(rec.poa.gaps().is_empty());
    }

    #[test]
    fn mid_flight_dropout_declares_signed_gap() {
        let a = origin();
        let b = a.destination(90.0, Distance::from_meters(600.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        let clock = SimClock::new();
        let mut receiver = SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0);
        // Lose lock for t in (10.0, 14.2): updates 51..=70 never arrive.
        for seq in 51..=70 {
            receiver.drop_update(seq);
        }
        let receiver = Arc::new(receiver);
        let world = SecureWorldBuilder::new()
            .with_sign_key(tee_key().clone())
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap();
        let client = world.client();
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &ZoneSet::new(),
            SamplingStrategy::FixedRate(1.0),
            Duration::from_secs(30.0),
        )
        .unwrap();
        let gaps = rec.poa.gaps();
        assert_eq!(gaps.len(), 1, "one outage, one marker");
        assert!((gaps[0].start().secs() - 10.0).abs() < 1e-9);
        assert!((gaps[0].end().secs() - 14.2).abs() < 1e-9);
        gaps[0].verify(&client.tee_public_key()).unwrap();
        // No sample timestamp may sit strictly inside the declared gap.
        assert!(rec
            .poa
            .alibi()
            .iter()
            .all(|s| s.time().secs() <= 10.0 || s.time().secs() >= 14.2));
    }

    #[test]
    fn adaptive_far_from_zone_uses_far_fewer_samples() {
        let (clock, receiver, client) = setup(600.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        // Zone 50 km north: essentially no sampling pressure.
        let zones: ZoneSet = std::iter::once(NoFlyZone::new(
            origin().destination(0.0, Distance::from_km(50.0)),
            Distance::from_meters(100.0),
        ))
        .collect();
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &zones,
            SamplingStrategy::Adaptive,
            Duration::from_secs(60.0),
        )
        .unwrap();
        // First anchor + landing anchor only.
        assert!(rec.sample_count() <= 3, "got {}", rec.sample_count());
        assert_eq!(rec.strategy, "adaptive");
    }

    #[test]
    fn adaptive_near_zone_samples_frequently() {
        let (clock, receiver, client) = setup(600.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        // Small zone right next to the path mid-flight.
        let zones = zone_ahead(300.0, 10.0);
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &zones,
            SamplingStrategy::Adaptive,
            Duration::from_secs(60.0),
        )
        .unwrap();
        assert!(
            rec.sample_count() > 10,
            "expected frequent sampling near zone, got {}",
            rec.sample_count()
        );
    }

    #[test]
    fn adaptive_poa_is_sufficient_for_its_zones() {
        let (clock, receiver, client) = setup(600.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        // Zone beside the path, 60 m off at closest approach.
        let zones: ZoneSet = std::iter::once(NoFlyZone::new(
            origin()
                .destination(90.0, Distance::from_meters(300.0))
                .destination(0.0, Distance::from_meters(80.0)),
            Distance::from_meters(20.0),
        ))
        .collect();
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &zones,
            SamplingStrategy::Adaptive,
            Duration::from_secs(60.0),
        )
        .unwrap();
        let report = alidrone_geo::sufficiency::check_alibi(
            &rec.poa.alibi(),
            &zones,
            alidrone_geo::FAA_MAX_SPEED,
            alidrone_geo::sufficiency::Criterion::Paper,
        );
        assert!(
            report.is_sufficient(),
            "{} insufficient pairs of {}",
            report.insufficient_count,
            rec.sample_count()
        );
    }

    #[test]
    fn all_signatures_verify() {
        let (clock, receiver, client) = setup(100.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &zone_ahead(2_000.0, 100.0),
            SamplingStrategy::FixedRate(2.0),
            Duration::from_secs(10.0),
        )
        .unwrap();
        for entry in rec.poa.entries() {
            entry.verify(&client.tee_public_key()).unwrap();
        }
    }

    #[test]
    fn events_track_nearest_boundary() {
        let (clock, receiver, client) = setup(200.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        let zones = zone_ahead(2_000.0, 100.0);
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &zones,
            SamplingStrategy::FixedRate(1.0),
            Duration::from_secs(20.0),
        )
        .unwrap();
        // Approaching the zone: boundary distance decreases.
        let first = rec.events.first().unwrap().nearest_boundary.unwrap();
        let last = rec.events.last().unwrap().nearest_boundary.unwrap();
        assert!(last < first);
    }

    #[test]
    fn mean_rate_reflects_strategy() {
        let (clock, receiver, client) = setup(600.0, 10.0, 5.0);
        let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
        let rec = run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &ZoneSet::new(),
            SamplingStrategy::FixedRate(2.0),
            Duration::from_secs(30.0),
        )
        .unwrap();
        // 2 Hz configured on a 5 Hz grid → effective ≈ 1.67 Hz.
        let rate = rec.mean_rate_hz();
        assert!(rate > 1.2 && rate <= 2.1, "rate {rate}");
    }
}
