//! Identifiers issued by the auditor (paper Table I).

use std::fmt;

/// `id_drone` — the drone's license-plate-like identifier, issued at
/// registration and physically carried on the drone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DroneId(u64);

impl DroneId {
    /// Creates an id from its numeric value (normally only the auditor
    /// mints these).
    pub fn new(v: u64) -> Self {
        DroneId(v)
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for DroneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drone-{:06}", self.0)
    }
}

/// `id_zone` — a registered no-fly zone's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ZoneId(u64);

impl ZoneId {
    /// Creates an id from its numeric value.
    pub fn new(v: u64) -> Self {
        ZoneId(v)
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone-{:06}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(DroneId::new(7).to_string(), "drone-000007");
        assert_eq!(ZoneId::new(42).to_string(), "zone-000042");
    }

    #[test]
    fn ordering_and_value() {
        assert!(DroneId::new(1) < DroneId::new(2));
        assert_eq!(ZoneId::new(9).value(), 9);
    }
}
