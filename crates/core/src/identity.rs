//! Identifiers issued by the auditor (paper Table I) and the
//! registration record kept per drone.

use std::fmt;

use alidrone_crypto::rsa::{RsaPublicKey, RsaVerifier};

/// `id_drone` — the drone's license-plate-like identifier, issued at
/// registration and physically carried on the drone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DroneId(u64);

impl DroneId {
    /// Creates an id from its numeric value (normally only the auditor
    /// mints these).
    pub fn new(v: u64) -> Self {
        DroneId(v)
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for DroneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drone-{:06}", self.0)
    }
}

/// `id_zone` — a registered no-fly zone's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ZoneId(u64);

impl ZoneId {
    /// Creates an id from its numeric value.
    pub fn new(v: u64) -> Self {
        ZoneId(v)
    }

    /// The numeric value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone-{:06}", self.0)
    }
}

/// What registration (step 0) stores per drone: `(D⁺, T⁺)` held in
/// *prepared* form.
///
/// Both keys are kept as [`RsaVerifier`]s, so the per-key Montgomery
/// parameters are computed exactly once — at registration or journal
/// replay — and every later zone query or PoA entry check reuses them.
/// The auditor never re-parses or re-prepares a public key per request.
pub(crate) struct Registration {
    operator: RsaVerifier,
    tee: RsaVerifier,
}

impl Registration {
    /// Prepares both keys once.
    pub(crate) fn new(operator_public: RsaPublicKey, tee_public: RsaPublicKey) -> Self {
        Registration {
            operator: operator_public.verifier(),
            tee: tee_public.verifier(),
        }
    }

    /// The prepared operator verification key `D⁺`.
    pub(crate) fn operator(&self) -> &RsaVerifier {
        &self.operator
    }

    /// The prepared TEE verification key `T⁺`.
    pub(crate) fn tee(&self) -> &RsaVerifier {
        &self.tee
    }

    /// The raw operator public key (snapshot serialisation).
    pub(crate) fn operator_public(&self) -> &RsaPublicKey {
        self.operator.public_key()
    }

    /// The raw TEE public key (snapshot serialisation, key export).
    pub(crate) fn tee_public(&self) -> &RsaPublicKey {
        self.tee.public_key()
    }
}

impl fmt::Debug for Registration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registration")
            .field("operator_bits", &self.operator_public().bits())
            .field("tee_bits", &self.tee_public().bits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(DroneId::new(7).to_string(), "drone-000007");
        assert_eq!(ZoneId::new(42).to_string(), "zone-000042");
    }

    #[test]
    fn ordering_and_value() {
        assert!(DroneId::new(1) < DroneId::new(2));
        assert_eq!(ZoneId::new(9).value(), 9);
    }
}
