//! Tamper-evident audit log: hash chain, Merkle checkpoints, and
//! offline proof verification.
//!
//! The auditor's word is the whole protocol's output — a verdict it can
//! silently rewrite is a verdict that never constrained anyone. This
//! module makes the journal's history *verifiable by third parties*:
//!
//! * Every durable mutation record (registrations, zones, nonces,
//!   stored verdicts) becomes a link in a **hash chain**: the chain
//!   head after entry `i` is `SHA-256(prev_head ‖ seq ‖ payload)`, so
//!   rewriting, dropping, or reordering any historical record changes
//!   every later head.
//! * The same payloads are leaves of an RFC 6962-style **Merkle tree**
//!   (leaf hash `SHA-256(0x00 ‖ payload)`, node hash
//!   `SHA-256(0x01 ‖ left ‖ right)`), whose root is periodically
//!   journaled as a [`Record::AuditCheckpoint`](crate::journal::Record)
//!   and served over the wire as a [`SignedTreeHead`].
//! * [`verify_inclusion`] and [`verify_consistency`] are pure
//!   functions over hashes — a client (or court) verifies that a
//!   verdict is included in a signed head, and that two signed heads
//!   describe the same append-only history, without trusting the
//!   auditor or even talking to it.
//!
//! Replication followers recompute the same chain while applying
//! shipped frames (see [`crate::repl`]), so a primary that forks its
//! history is refused with a typed error at the first checkpoint.

use std::fmt;

use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey, RsaPublicKey};
use alidrone_crypto::sha256::{sha256, Sha256, SHA256_LEN};

/// Byte length of every hash in this module.
pub const HASH_LEN: usize = SHA256_LEN;

/// One SHA-256 output.
pub type Hash = [u8; HASH_LEN];

/// Domain-separation prefix for leaf hashes (RFC 6962 §2.1).
const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior node hashes.
const NODE_PREFIX: u8 = 0x01;
/// Domain prefix mixed into every signed tree head, so an STH
/// signature can never be confused with any other RSA signature the
/// auditor key produces.
const STH_DOMAIN: &[u8; 8] = b"ALDSTH01";

// ------------------------------------------------------------------ errors

/// Typed audit-verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A requested leaf index lies outside the tree.
    IndexOutOfRange {
        /// The requested leaf index.
        index: u64,
        /// The tree size it was requested against.
        size: u64,
    },
    /// A consistency proof was requested for sizes that are not
    /// `0 < old <= new <= current`.
    BadRange {
        /// The older tree size.
        old: u64,
        /// The newer tree size.
        new: u64,
    },
    /// A recomputed root or chain head does not match the recorded one
    /// — the history was tampered with or forked.
    Divergence {
        /// Tree size (entry count) at which the mismatch was found.
        size: u64,
        /// What diverged.
        what: &'static str,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::IndexOutOfRange { index, size } => {
                write!(f, "audit leaf {index} out of range for tree size {size}")
            }
            AuditError::BadRange { old, new } => {
                write!(f, "bad audit proof range: {old} -> {new}")
            }
            AuditError::Divergence { size, what } => {
                write!(f, "audit divergence at size {size}: {what}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

// ------------------------------------------------------------------ hashes

/// RFC 6962 leaf hash: `SHA-256(0x00 ‖ payload)`.
pub fn leaf_hash(payload: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(payload);
    h.finalize()
}

/// RFC 6962 node hash: `SHA-256(0x01 ‖ left ‖ right)`.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// Advances the hash chain by one entry:
/// `SHA-256(prev_head ‖ seq_be ‖ payload)`.
pub fn chain_step(prev: &Hash, seq: u64, payload: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&seq.to_be_bytes());
    h.update(payload);
    h.finalize()
}

/// Merkle root of `leaves[lo..hi)` (RFC 6962 `MTH`), recursing on the
/// largest power of two strictly below the range length.
fn subtree_root(leaves: &[Hash], lo: usize, hi: usize) -> Hash {
    debug_assert!(lo < hi);
    if hi - lo == 1 {
        return leaves[lo];
    }
    let k = split_point(hi - lo);
    node_hash(
        &subtree_root(leaves, lo, lo + k),
        &subtree_root(leaves, lo + k, hi),
    )
}

/// Largest power of two strictly less than `n` (`n >= 2`).
fn split_point(n: usize) -> usize {
    let mut k = 1usize;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// Merkle root over the first `size` of `leaves` (`SHA-256("")` for an
/// empty tree, per RFC 6962).
pub fn merkle_root(leaves: &[Hash], size: usize) -> Hash {
    if size == 0 {
        return sha256(b"");
    }
    subtree_root(leaves, 0, size)
}

/// Inclusion proof (`PATH` in RFC 6962): the sibling hashes from leaf
/// `index` up to the root of the first `size` leaves, leaf-to-root
/// order.
fn subtree_path(leaves: &[Hash], index: usize, lo: usize, hi: usize, out: &mut Vec<Hash>) {
    if hi - lo == 1 {
        return;
    }
    let k = split_point(hi - lo);
    if index < lo + k {
        subtree_path(leaves, index, lo, lo + k, out);
        out.push(subtree_root(leaves, lo + k, hi));
    } else {
        subtree_path(leaves, index, lo + k, hi, out);
        out.push(subtree_root(leaves, lo, lo + k));
    }
}

/// Builds the inclusion proof for `leaves[index]` in the tree over the
/// first `size` leaves.
///
/// # Errors
///
/// [`AuditError::IndexOutOfRange`] when `index >= size` or the slice
/// is shorter than `size`.
pub fn inclusion_path(leaves: &[Hash], index: u64, size: u64) -> Result<Vec<Hash>, AuditError> {
    if index >= size || (size as usize) > leaves.len() {
        return Err(AuditError::IndexOutOfRange { index, size });
    }
    let mut out = Vec::new();
    subtree_path(leaves, index as usize, 0, size as usize, &mut out);
    Ok(out)
}

/// Consistency proof (`PROOF`/`SUBPROOF` in RFC 6962): the node hashes
/// a verifier needs to extend the tree of the first `old` leaves into
/// the tree of the first `new` leaves.
fn subproof(leaves: &[Hash], m: usize, lo: usize, hi: usize, whole: bool, out: &mut Vec<Hash>) {
    let n = hi - lo;
    if m == n {
        if !whole {
            out.push(subtree_root(leaves, lo, hi));
        }
        return;
    }
    let k = split_point(n);
    if m <= k {
        subproof(leaves, m, lo, lo + k, whole, out);
        out.push(subtree_root(leaves, lo + k, hi));
    } else {
        subproof(leaves, m - k, lo + k, hi, false, out);
        out.push(subtree_root(leaves, lo, lo + k));
    }
}

/// Builds the consistency proof from the tree over the first `old`
/// leaves to the tree over the first `new` leaves.
///
/// # Errors
///
/// [`AuditError::BadRange`] unless `0 < old <= new <= leaves.len()`.
pub fn consistency_path(leaves: &[Hash], old: u64, new: u64) -> Result<Vec<Hash>, AuditError> {
    if old == 0 || old > new || (new as usize) > leaves.len() {
        return Err(AuditError::BadRange { old, new });
    }
    if old == new {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    subproof(leaves, old as usize, 0, new as usize, true, &mut out);
    Ok(out)
}

// ------------------------------------------------------- offline verifiers

/// Verifies that the leaf with hash `leaf` sits at `index` in the tree
/// of `size` leaves whose root is `root` (RFC 6962-bis §2.1.3.2). Pure
/// function of hashes — usable offline, with no auditor in the loop.
pub fn verify_inclusion(leaf: &Hash, index: u64, size: u64, proof: &[Hash], root: &Hash) -> bool {
    if index >= size {
        return false;
    }
    let mut fn_ = index;
    let mut sn = size - 1;
    let mut r = *leaf;
    for p in proof {
        if sn == 0 {
            return false;
        }
        if fn_ & 1 == 1 || fn_ == sn {
            r = node_hash(p, &r);
            if fn_ & 1 == 0 {
                // Right-most node at this level: skip the levels where
                // it has no sibling.
                while fn_ != 0 && fn_ & 1 == 0 {
                    fn_ >>= 1;
                    sn >>= 1;
                }
            }
        } else {
            r = node_hash(&r, p);
        }
        fn_ >>= 1;
        sn >>= 1;
    }
    sn == 0 && r == *root
}

/// Verifies that the tree of `new` leaves with root `new_root` is an
/// append-only extension of the tree of `old` leaves with root
/// `old_root` (RFC 6962-bis §2.1.4.2). Pure function of hashes.
pub fn verify_consistency(
    old: u64,
    new: u64,
    proof: &[Hash],
    old_root: &Hash,
    new_root: &Hash,
) -> bool {
    if old > new || old == 0 {
        return false;
    }
    if old == new {
        return proof.is_empty() && old_root == new_root;
    }
    let mut fn_ = old - 1;
    let mut sn = new - 1;
    while fn_ & 1 == 1 {
        fn_ >>= 1;
        sn >>= 1;
    }
    let mut proof = proof.iter();
    let (mut fr, mut sr) = if fn_ != 0 {
        // The old tree is not a perfect power of two: its root is
        // derived from the first proof node.
        match proof.next() {
            Some(p) => (*p, *p),
            None => return false,
        }
    } else {
        (*old_root, *old_root)
    };
    for c in proof {
        if sn == 0 {
            return false;
        }
        if fn_ & 1 == 1 || fn_ == sn {
            fr = node_hash(c, &fr);
            sr = node_hash(c, &sr);
            if fn_ & 1 == 0 {
                while fn_ != 0 && fn_ & 1 == 0 {
                    fn_ >>= 1;
                    sn >>= 1;
                }
            }
        } else {
            sr = node_hash(&sr, c);
        }
        fn_ >>= 1;
        sn >>= 1;
    }
    sn == 0 && fr == *old_root && sr == *new_root
}

// ------------------------------------------------------------- tree heads

/// A signed tree head: the auditor's promise that the first `size`
/// audit entries hash to `root` with chain head `chain_head`. The
/// signature covers a domain-separated digest of all three, so holding
/// an STH is enough to later verify inclusion and consistency proofs
/// offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTreeHead {
    /// Number of audit entries covered.
    pub size: u64,
    /// Merkle root over those entries' leaf hashes.
    pub root: Hash,
    /// Hash-chain head after the last covered entry.
    pub chain_head: Hash,
    /// RSA-SHA256 signature by the auditor key over
    /// [`signing_bytes`](SignedTreeHead::signing_bytes).
    pub signature: Vec<u8>,
    /// Optional TEE countersignature over the same bytes (empty when
    /// no enclave countersigner is installed).
    pub tee_signature: Vec<u8>,
}

impl SignedTreeHead {
    /// The exact bytes both signatures cover:
    /// `"ALDSTH01" ‖ size_be ‖ root ‖ chain_head`.
    pub fn signing_bytes(size: u64, root: &Hash, chain_head: &Hash) -> Vec<u8> {
        let mut out = Vec::with_capacity(STH_DOMAIN.len() + 8 + 2 * HASH_LEN);
        out.extend_from_slice(STH_DOMAIN);
        out.extend_from_slice(&size.to_be_bytes());
        out.extend_from_slice(root);
        out.extend_from_slice(chain_head);
        out
    }

    /// Signs a tree head with the auditor's key.
    ///
    /// # Errors
    ///
    /// Propagates RSA signing failures.
    pub fn sign(
        size: u64,
        root: Hash,
        chain_head: Hash,
        key: &RsaPrivateKey,
    ) -> Result<SignedTreeHead, alidrone_crypto::CryptoError> {
        let msg = SignedTreeHead::signing_bytes(size, &root, &chain_head);
        let signature = key.sign(&msg, HashAlg::Sha256)?;
        Ok(SignedTreeHead {
            size,
            root,
            chain_head,
            signature,
            tee_signature: Vec::new(),
        })
    }

    /// Verifies the auditor signature under `key`.
    pub fn verify(&self, key: &RsaPublicKey) -> bool {
        let msg = SignedTreeHead::signing_bytes(self.size, &self.root, &self.chain_head);
        key.verify(&msg, &self.signature, HashAlg::Sha256).is_ok()
    }

    /// Verifies the TEE countersignature under the enclave key. `false`
    /// when no countersignature is present.
    pub fn verify_countersignature(&self, tee_key: &RsaPublicKey) -> bool {
        if self.tee_signature.is_empty() {
            return false;
        }
        let msg = SignedTreeHead::signing_bytes(self.size, &self.root, &self.chain_head);
        tee_key
            .verify(&msg, &self.tee_signature, HashAlg::Sha256)
            .is_ok()
    }
}

/// An inclusion proof as served over the wire: everything a client
/// needs to call [`verify_inclusion`] against an STH it already holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionProof {
    /// Leaf index of the proven entry.
    pub index: u64,
    /// Tree size the proof was built against.
    pub size: u64,
    /// Leaf hash of the proven entry.
    pub leaf: Hash,
    /// Sibling hashes, leaf-to-root.
    pub path: Vec<Hash>,
}

/// A consistency proof as served over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyProof {
    /// The older tree size.
    pub old_size: u64,
    /// The newer tree size.
    pub new_size: u64,
    /// Proof node hashes.
    pub path: Vec<Hash>,
}

// ------------------------------------------------------------------ chain

/// The auditor-side audit state: the hash chain head plus every leaf
/// hash (32 bytes per audited record), enough to serve inclusion and
/// consistency proofs for *any* historical size even after the journal
/// itself was compacted away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditChain {
    head: Hash,
    leaves: Vec<Hash>,
}

impl Default for AuditChain {
    fn default() -> Self {
        AuditChain::new()
    }
}

impl AuditChain {
    /// An empty chain (head = all zeros, no leaves).
    pub fn new() -> AuditChain {
        AuditChain {
            head: [0u8; HASH_LEN],
            leaves: Vec::new(),
        }
    }

    /// Rebuilds a chain from snapshot state.
    pub fn from_parts(head: Hash, leaves: Vec<Hash>) -> AuditChain {
        AuditChain { head, leaves }
    }

    /// Entries chained so far (== Merkle tree size).
    pub fn size(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// The chain head after the last entry.
    pub fn head(&self) -> Hash {
        self.head
    }

    /// The leaf hashes (for snapshots and proof construction).
    pub fn leaves(&self) -> &[Hash] {
        &self.leaves
    }

    /// Appends one audited record payload: advances the chain head and
    /// stores the Merkle leaf.
    pub fn append(&mut self, payload: &[u8]) {
        let seq = self.leaves.len() as u64;
        self.head = chain_step(&self.head, seq, payload);
        self.leaves.push(leaf_hash(payload));
    }

    /// Merkle root over the current entries.
    pub fn root(&self) -> Hash {
        merkle_root(&self.leaves, self.leaves.len())
    }

    /// Merkle root over the first `size` entries.
    ///
    /// # Errors
    ///
    /// [`AuditError::IndexOutOfRange`] when `size` exceeds the chain.
    pub fn root_at(&self, size: u64) -> Result<Hash, AuditError> {
        if size > self.size() {
            return Err(AuditError::IndexOutOfRange {
                index: size,
                size: self.size(),
            });
        }
        Ok(merkle_root(&self.leaves, size as usize))
    }

    /// Inclusion proof for leaf `index` against the tree of `size`
    /// entries.
    ///
    /// # Errors
    ///
    /// [`AuditError::IndexOutOfRange`] for out-of-range indexes.
    pub fn prove_inclusion(&self, index: u64, size: u64) -> Result<InclusionProof, AuditError> {
        let path = inclusion_path(&self.leaves, index, size)?;
        Ok(InclusionProof {
            index,
            size,
            leaf: self.leaves[index as usize],
            path,
        })
    }

    /// Consistency proof between the trees of `old` and `new` entries.
    ///
    /// # Errors
    ///
    /// [`AuditError::BadRange`] for invalid ranges.
    pub fn prove_consistency(&self, old: u64, new: u64) -> Result<ConsistencyProof, AuditError> {
        let path = consistency_path(&self.leaves, old, new)?;
        Ok(ConsistencyProof {
            old_size: old,
            new_size: new,
            path,
        })
    }

    /// Checks a journaled checkpoint claim against this chain's own
    /// history: the recorded `(size, root)` must match what this chain
    /// recomputed. This is how recovery and replication followers
    /// refuse forged or forked histories.
    ///
    /// # Errors
    ///
    /// [`AuditError::Divergence`] on any mismatch.
    pub fn check_checkpoint(&self, size: u64, root: &Hash) -> Result<(), AuditError> {
        if size > self.size() {
            return Err(AuditError::Divergence {
                size,
                what: "checkpoint claims entries the chain never saw",
            });
        }
        let ours = self.root_at(size).map_err(|_| AuditError::Divergence {
            size,
            what: "checkpoint size out of range",
        })?;
        if ours != *root {
            return Err(AuditError::Divergence {
                size,
                what: "checkpoint root does not match recomputed history",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash> {
        (0..n).map(|i| leaf_hash(&[i as u8, 0xA5])).collect()
    }

    fn chain_of(n: usize) -> AuditChain {
        let mut c = AuditChain::new();
        for i in 0..n {
            c.append(&[i as u8, 0xA5]);
        }
        c
    }

    #[test]
    fn empty_root_is_sha256_of_empty_string() {
        // RFC 6962: MTH({}) = SHA-256().
        let expect = [
            0xe3, 0xb0, 0xc4, 0x42, 0x98, 0xfc, 0x1c, 0x14, 0x9a, 0xfb, 0xf4, 0xc8, 0x99, 0x6f,
            0xb9, 0x24, 0x27, 0xae, 0x41, 0xe4, 0x64, 0x9b, 0x93, 0x4c, 0xa4, 0x95, 0x99, 0x1b,
            0x78, 0x52, 0xb8, 0x55,
        ];
        assert_eq!(merkle_root(&[], 0), expect);
    }

    #[test]
    fn chain_head_depends_on_every_entry_and_its_order() {
        let a = chain_of(5);
        let mut reordered = AuditChain::new();
        for i in [1usize, 0, 2, 3, 4] {
            reordered.append(&[i as u8, 0xA5]);
        }
        assert_ne!(a.head(), reordered.head());
        let mut dropped = AuditChain::new();
        for i in [0usize, 1, 2, 3] {
            dropped.append(&[i as u8, 0xA5]);
        }
        assert_ne!(a.head(), dropped.head());
    }

    #[test]
    fn inclusion_proofs_verify_for_every_leaf_at_every_size() {
        for n in 1..=20u64 {
            let c = chain_of(n as usize);
            for size in 1..=n {
                let root = c.root_at(size).unwrap();
                for index in 0..size {
                    let p = c.prove_inclusion(index, size).unwrap();
                    assert!(
                        verify_inclusion(&p.leaf, index, size, &p.path, &root),
                        "n={n} size={size} index={index}"
                    );
                    // A wrong leaf, index, or root must fail.
                    let bad = leaf_hash(b"not this one");
                    assert!(!verify_inclusion(&bad, index, size, &p.path, &root));
                    assert!(!verify_inclusion(&p.leaf, index, size, &p.path, &bad));
                    if size > 1 {
                        let wrong = (index + 1) % size;
                        assert!(
                            !verify_inclusion(&p.leaf, wrong, size, &p.path, &root),
                            "n={n} size={size} index={index}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn consistency_proofs_verify_for_every_size_pair() {
        let n = 20u64;
        let c = chain_of(n as usize);
        for old in 1..=n {
            let old_root = c.root_at(old).unwrap();
            for new in old..=n {
                let new_root = c.root_at(new).unwrap();
                let p = c.prove_consistency(old, new).unwrap();
                assert!(
                    verify_consistency(old, new, &p.path, &old_root, &new_root),
                    "old={old} new={new}"
                );
                // A forked old root must fail.
                let fork = leaf_hash(b"forked history");
                if old < new {
                    assert!(!verify_consistency(old, new, &p.path, &fork, &new_root));
                    assert!(!verify_consistency(old, new, &p.path, &old_root, &fork));
                }
            }
        }
    }

    #[test]
    fn consistency_rejects_rewritten_history() {
        // A server that rewrote entry 3 after handing out a size-6 head
        // cannot prove its new head consistent with that old head.
        let honest = chain_of(10);
        let mut forked = AuditChain::new();
        for i in 0..10usize {
            if i == 3 {
                forked.append(b"rewritten verdict");
            } else {
                forked.append(&[i as u8, 0xA5]);
            }
        }
        let old_root = honest.root_at(6).unwrap();
        let p = forked.prove_consistency(6, 10).unwrap();
        assert!(!verify_consistency(
            6,
            10,
            &p.path,
            &old_root,
            &forked.root()
        ));
        // Whereas a history that only *extends* the old head does prove
        // consistency — appends are allowed, rewrites are not.
        let p = honest.prove_consistency(6, 10).unwrap();
        assert!(verify_consistency(
            6,
            10,
            &p.path,
            &old_root,
            &honest.root()
        ));
    }

    #[test]
    fn bad_ranges_are_typed_errors() {
        let c = chain_of(4);
        assert!(matches!(
            c.prove_inclusion(4, 4),
            Err(AuditError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            c.prove_inclusion(0, 9),
            Err(AuditError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            c.prove_consistency(0, 3),
            Err(AuditError::BadRange { .. })
        ));
        assert!(matches!(
            c.prove_consistency(3, 2),
            Err(AuditError::BadRange { .. })
        ));
        assert!(matches!(
            c.prove_consistency(2, 5),
            Err(AuditError::BadRange { .. })
        ));
        assert!(c.root_at(9).is_err());
    }

    #[test]
    fn checkpoint_check_accepts_own_history_and_rejects_forks() {
        let c = chain_of(12);
        for size in 1..=12 {
            let root = c.root_at(size).unwrap();
            c.check_checkpoint(size, &root).unwrap();
        }
        let fork = leaf_hash(b"fork");
        let err = c.check_checkpoint(7, &fork).unwrap_err();
        assert!(matches!(err, AuditError::Divergence { size: 7, .. }));
        let err = c.check_checkpoint(13, &c.root()).unwrap_err();
        assert!(matches!(err, AuditError::Divergence { size: 13, .. }));
    }

    #[test]
    fn signed_tree_head_round_trips_and_binds_all_fields() {
        let key = crate::test_support::auditor_key();
        let c = chain_of(5);
        let sth = SignedTreeHead::sign(c.size(), c.root(), c.head(), key).unwrap();
        assert!(sth.verify(key.public_key()));
        // Any field change invalidates the signature.
        let mut bad = sth.clone();
        bad.size += 1;
        assert!(!bad.verify(key.public_key()));
        let mut bad = sth.clone();
        bad.root[0] ^= 1;
        assert!(!bad.verify(key.public_key()));
        let mut bad = sth.clone();
        bad.chain_head[31] ^= 1;
        assert!(!bad.verify(key.public_key()));
        // No countersignature installed: the TEE check reports absent.
        assert!(!sth.verify_countersignature(key.public_key()));
    }

    #[test]
    fn from_parts_round_trips_snapshot_state() {
        let c = chain_of(9);
        let rebuilt = AuditChain::from_parts(c.head(), c.leaves().to_vec());
        assert_eq!(rebuilt, c);
        assert_eq!(rebuilt.root(), c.root());
    }

    #[test]
    fn subtree_helpers_match_direct_leaves() {
        let l = leaves(7);
        let c = chain_of(7);
        assert_eq!(c.leaves(), l.as_slice());
        assert_eq!(merkle_root(&l, 7), c.root());
    }
}
