//! Per-flight symmetric authentication (paper §VII-A1a).
//!
//! Asymmetric signatures dominate the per-sample cost (Table II shows a
//! 2048-bit key cannot sustain 5 Hz). The extension: before each flight
//! the drone TEE and the auditor run a key exchange and derive an
//! ephemeral MAC key; during the flight samples are authenticated with
//! HMAC-SHA256 instead of RSA. The MAC key lives only in the TEE and at
//! the auditor, so the operator still cannot forge samples — but unlike
//! signatures, a MAC does not give *third parties* non-repudiation,
//! which is why this is an option rather than the default.

use alidrone_crypto::dh::{DhGroup, DhKeyPair};
use alidrone_crypto::hmac::{hmac_sha256, hmac_sha256_verify, HMAC_SHA256_LEN};
use alidrone_crypto::rng::Rng;
use alidrone_geo::GpsSample;

use crate::ProtocolError;

/// A GPS sample authenticated with the flight's MAC key.
#[derive(Debug, Clone, PartialEq)]
pub struct MacSample {
    /// The sample.
    pub sample: GpsSample,
    /// `HMAC-SHA256(flight_key, sample_bytes)`.
    pub tag: [u8; HMAC_SHA256_LEN],
}

/// One side's state for a per-flight symmetric session.
#[derive(Debug, Clone)]
pub struct FlightSession {
    key: [u8; 32],
}

impl FlightSession {
    /// Authenticates a sample (TEE side).
    pub fn authenticate(&self, sample: GpsSample) -> MacSample {
        MacSample {
            tag: hmac_sha256(&self.key, &sample.to_bytes()),
            sample,
        }
    }

    /// Verifies a sample (auditor side).
    pub fn verify(&self, mac_sample: &MacSample) -> bool {
        hmac_sha256_verify(&self.key, &mac_sample.sample.to_bytes(), &mac_sample.tag)
    }
}

/// Runs the key exchange between the drone TEE and the auditor, returning
/// both sides' sessions.
///
/// In deployment the two DH messages ride on the zone-query round trip;
/// here the exchange is executed directly, which is equivalent for every
/// property we test (both sides derive the same 32-byte key, and a
/// man-in-the-middle without either private value cannot).
///
/// # Errors
///
/// Propagates degenerate public-value errors from the DH layer.
pub fn establish_flight_key<R: Rng + ?Sized>(
    group: &DhGroup,
    rng: &mut R,
) -> Result<(FlightSession, FlightSession), ProtocolError> {
    let drone: DhKeyPair = group.generate_keypair(rng);
    let auditor: DhKeyPair = group.generate_keypair(rng);
    let drone_key = drone.derive_shared_key(auditor.public_value())?;
    let auditor_key = auditor.derive_shared_key(drone.public_value())?;
    debug_assert_eq!(drone_key, auditor_key);
    Ok((
        FlightSession { key: drone_key },
        FlightSession { key: auditor_key },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::origin;
    use alidrone_crypto::rng::XorShift64;
    use alidrone_geo::{Distance, Timestamp};

    fn sessions() -> (FlightSession, FlightSession) {
        let mut rng = XorShift64::seed_from_u64(71);
        establish_flight_key(&DhGroup::test_512(), &mut rng).unwrap()
    }

    fn sample(t: f64) -> GpsSample {
        GpsSample::new(
            origin().destination(90.0, Distance::from_meters(10.0 * t)),
            Timestamp::from_secs(t),
        )
    }

    #[test]
    fn authenticate_verify_round_trip() {
        let (drone, auditor) = sessions();
        let m = drone.authenticate(sample(1.0));
        assert!(auditor.verify(&m));
        assert!(drone.verify(&m)); // symmetric
    }

    #[test]
    fn tampered_sample_rejected() {
        let (drone, auditor) = sessions();
        let mut m = drone.authenticate(sample(1.0));
        m.sample = sample(2.0);
        assert!(!auditor.verify(&m));
    }

    #[test]
    fn tampered_tag_rejected() {
        let (drone, auditor) = sessions();
        let mut m = drone.authenticate(sample(1.0));
        m.tag[0] ^= 1;
        assert!(!auditor.verify(&m));
    }

    #[test]
    fn cross_flight_keys_do_not_verify() {
        let (drone1, _) = sessions();
        let mut rng = XorShift64::seed_from_u64(72);
        let (_, auditor2) = establish_flight_key(&DhGroup::test_512(), &mut rng).unwrap();
        let m = drone1.authenticate(sample(1.0));
        assert!(!auditor2.verify(&m));
    }

    #[test]
    fn both_sides_derive_same_key() {
        let (drone, auditor) = sessions();
        // Indirect check: everything one authenticates, the other
        // verifies, for many samples.
        for t in 0..20 {
            let m = drone.authenticate(sample(t as f64));
            assert!(auditor.verify(&m));
        }
    }
}
