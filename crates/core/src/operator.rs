//! The Drone Operator role.

use std::fmt;

use alidrone_crypto::rng::Rng;
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::{Duration, GeoPoint, Timestamp, ZoneSet};
use alidrone_gps::{GpsDevice, SimClock};
use alidrone_tee::{TeeClient, GPS_SAMPLER_UUID};

use crate::auditor::{Auditor, VerificationReport};
use crate::flight::{run_flight, FlightRecord, SamplingStrategy};
use crate::messages::{PoaSubmission, Submission, ZoneQuery, ZoneResponse};
use crate::{DroneId, ProtocolError};

/// A drone operator: owns the operator keypair `D`, holds the drone's
/// TEE client, and speaks the protocol with the auditor.
///
/// Note that in the threat model the operator is the *adversary*; this
/// type implements the honest behaviour, and the attack suite builds
/// dishonest variants on top of the same primitives.
pub struct DroneOperator {
    key: RsaPrivateKey,
    tee: TeeClient,
    drone_id: Option<DroneId>,
}

impl DroneOperator {
    /// Creates an operator with their keypair and the drone's TEE.
    pub fn new(key: RsaPrivateKey, tee: TeeClient) -> Self {
        DroneOperator {
            key,
            tee,
            drone_id: None,
        }
    }

    /// The issued drone id, if registered.
    pub fn drone_id(&self) -> Option<DroneId> {
        self.drone_id
    }

    /// The TEE client for this drone.
    pub fn tee(&self) -> &TeeClient {
        &self.tee
    }

    /// Step 0 — registers with the auditor, submitting `D⁺` and `T⁺`.
    pub fn register_with(&mut self, auditor: &Auditor) -> DroneId {
        let id = auditor.register_drone(self.key.public_key().clone(), self.tee.tee_public_key());
        self.drone_id = Some(id);
        id
    }

    /// Steps 2–3 — queries the auditor for zones within the rectangular
    /// navigation area.
    ///
    /// # Errors
    ///
    /// Fails if the drone is unregistered or the auditor rejects the
    /// query.
    pub fn query_zones<R: Rng + ?Sized>(
        &self,
        auditor: &Auditor,
        corner1: GeoPoint,
        corner2: GeoPoint,
        rng: &mut R,
    ) -> Result<ZoneResponse, ProtocolError> {
        let drone_id = self
            .drone_id
            .ok_or(ProtocolError::Malformed("drone not registered"))?;
        let mut nonce = [0u8; 16];
        rng.fill_bytes(&mut nonce);
        let query = ZoneQuery::new_signed(drone_id, corner1, corner2, nonce, &self.key)?;
        auditor.handle_zone_query(&query)
    }

    /// Plans a compliant route to `goal` around the queried zones with
    /// the given clearance margin (paper §IV-B step 3: "the drone can
    /// use the NFZ information to compute a viable route to its
    /// destination").
    ///
    /// # Errors
    ///
    /// Wraps [`PlanError`](alidrone_geo::planner::PlanError) as a
    /// [`ProtocolError::Malformed`] (the caller has the typed planner
    /// available in `alidrone_geo::planner` when it needs detail).
    pub fn plan_route(
        &self,
        start: GeoPoint,
        goal: GeoPoint,
        zones: &ZoneSet,
        margin: alidrone_geo::Distance,
    ) -> Result<Vec<GeoPoint>, ProtocolError> {
        alidrone_geo::planner::plan_route(start, goal, zones, margin)
            .map_err(|_| ProtocolError::Malformed("no compliant route"))
    }

    /// Flies the drone: runs the sampling loop against the shared
    /// receiver and the TEE's GPS Sampler session.
    ///
    /// # Errors
    ///
    /// Propagates TEE/session failures.
    pub fn fly(
        &self,
        clock: &SimClock,
        receiver: &dyn GpsDevice,
        zones: &ZoneSet,
        strategy: SamplingStrategy,
        duration: Duration,
    ) -> Result<FlightRecord, ProtocolError> {
        let session = self.tee.open_session(GPS_SAMPLER_UUID)?;
        run_flight(clock, receiver, &session, zones, strategy, duration)
    }

    /// Step 4 — submits the flight's PoA to the auditor in plaintext.
    ///
    /// # Errors
    ///
    /// Fails if unregistered or the auditor rejects the transport.
    pub fn submit(
        &self,
        auditor: &Auditor,
        record: &FlightRecord,
        now: Timestamp,
    ) -> Result<VerificationReport, ProtocolError> {
        let drone_id = self
            .drone_id
            .ok_or(ProtocolError::Malformed("drone not registered"))?;
        auditor.verify(
            &Submission::plain(PoaSubmission {
                drone_id,
                window_start: record.window_start,
                window_end: record.window_end,
                poa: record.poa.clone(),
            }),
            now,
        )
    }

    /// Step 4, encrypted — the Adapter encrypts the PoA under the
    /// auditor's public key before it leaves the drone (paper §V-C).
    ///
    /// # Errors
    ///
    /// Adds encryption failures to those of [`submit`](Self::submit).
    pub fn submit_encrypted<R: Rng + ?Sized>(
        &self,
        auditor: &Auditor,
        record: &FlightRecord,
        now: Timestamp,
        rng: &mut R,
    ) -> Result<VerificationReport, ProtocolError> {
        let drone_id = self
            .drone_id
            .ok_or(ProtocolError::Malformed("drone not registered"))?;
        let encrypted = record.poa.encrypt(auditor.public_encryption_key(), rng)?;
        auditor.verify(
            &Submission::encrypted(drone_id, record.window_start, record.window_end, encrypted),
            now,
        )
    }
}

impl fmt::Debug for DroneOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DroneOperator")
            .field("drone_id", &self.drone_id)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::AuditorConfig;
    use crate::test_support::{auditor_key, operator_key, origin, tee_key};
    use alidrone_crypto::rng::XorShift64;
    use alidrone_geo::trajectory::TrajectoryBuilder;
    use alidrone_geo::{Distance, NoFlyZone, Speed};
    use alidrone_gps::SimulatedReceiver;
    use alidrone_tee::{CostModel, SecureWorldBuilder};
    use std::sync::Arc;

    fn setup() -> (SimClock, Arc<SimulatedReceiver>, DroneOperator, Auditor) {
        let a = origin();
        let b = a.destination(90.0, Distance::from_meters(600.0));
        let traj = TrajectoryBuilder::start_at(a)
            .travel_to(b, Speed::from_mps(10.0))
            .build()
            .unwrap();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0));
        let world = SecureWorldBuilder::new()
            .with_sign_key(tee_key().clone())
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap();
        let operator = DroneOperator::new(operator_key().clone(), world.client());
        let auditor = Auditor::new(AuditorConfig::default(), auditor_key().clone());
        (clock, receiver, operator, auditor)
    }

    #[test]
    fn full_honest_protocol_run() {
        let (clock, receiver, mut operator, auditor) = setup();
        let mut rng = XorShift64::seed_from_u64(41);

        // Registration.
        let id = operator.register_with(&auditor);
        assert_eq!(operator.drone_id(), Some(id));

        // A zone near (but off) the flight path.
        auditor.register_zone(NoFlyZone::new(
            origin()
                .destination(90.0, Distance::from_meters(300.0))
                .destination(0.0, Distance::from_meters(100.0)),
            Distance::from_meters(30.0),
        ));

        // Zone query for the navigation area.
        let resp = operator
            .query_zones(
                &auditor,
                origin().destination(225.0, Distance::from_km(2.0)),
                origin().destination(45.0, Distance::from_km(2.0)),
                &mut rng,
            )
            .unwrap();
        assert_eq!(resp.zones.len(), 1);

        // Fly adaptively, then submit.
        let record = operator
            .fly(
                &clock,
                receiver.as_ref(),
                &resp.zone_set(),
                SamplingStrategy::Adaptive,
                Duration::from_secs(60.0),
            )
            .unwrap();
        let report = operator.submit(&auditor, &record, clock.now()).unwrap();
        assert!(report.is_compliant(), "verdict {}", report.verdict);
    }

    #[test]
    fn encrypted_submission_also_compliant() {
        let (clock, receiver, mut operator, auditor) = setup();
        let mut rng = XorShift64::seed_from_u64(43);
        operator.register_with(&auditor);
        let record = operator
            .fly(
                &clock,
                receiver.as_ref(),
                &ZoneSet::new(),
                SamplingStrategy::FixedRate(1.0),
                Duration::from_secs(20.0),
            )
            .unwrap();
        let report = operator
            .submit_encrypted(&auditor, &record, clock.now(), &mut rng)
            .unwrap();
        assert!(report.is_compliant());
    }

    #[test]
    fn unregistered_operator_cannot_query_or_submit() {
        let (clock, receiver, operator, auditor) = setup();
        let mut rng = XorShift64::seed_from_u64(44);
        assert!(operator
            .query_zones(&auditor, origin(), origin(), &mut rng)
            .is_err());
        let record = operator
            .fly(
                &clock,
                receiver.as_ref(),
                &ZoneSet::new(),
                SamplingStrategy::FixedRate(1.0),
                Duration::from_secs(5.0),
            )
            .unwrap();
        assert!(operator.submit(&auditor, &record, clock.now()).is_err());
    }
}
