//! Protocol messages exchanged with the auditor (paper §IV-B).

use std::fmt;

use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey, RsaPublicKey, RsaVerifier};
use alidrone_geo::{GeoPoint, Timestamp};

use crate::poa::{EncryptedPoa, ProofOfAlibi};
use crate::{DroneId, ProtocolError, ZoneId};

/// Step 2 — a zone query: "the drone id, two GPS coordinates …
/// indicating a rectangular navigation area, and a random nonce signed by
/// the drone sign key D⁻".
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneQuery {
    /// The querying drone.
    pub drone_id: DroneId,
    /// One corner of the navigation rectangle.
    pub corner1: GeoPoint,
    /// The opposite corner.
    pub corner2: GeoPoint,
    /// Anti-replay nonce.
    pub nonce: [u8; 16],
    /// `Sig(nonce, D⁻)`.
    pub signature: Vec<u8>,
}

impl ZoneQuery {
    /// Builds and signs a query with the operator key `D⁻`.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn new_signed(
        drone_id: DroneId,
        corner1: GeoPoint,
        corner2: GeoPoint,
        nonce: [u8; 16],
        operator_key: &RsaPrivateKey,
    ) -> Result<Self, ProtocolError> {
        let signature = operator_key.sign(&nonce, HashAlg::Sha256)?;
        Ok(ZoneQuery {
            drone_id,
            corner1,
            corner2,
            nonce,
            signature,
        })
    }

    /// Verifies the nonce signature under the registered `D⁺`.
    ///
    /// One-shot convenience over [`verify_with`](Self::verify_with).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuerySignatureInvalid`] on mismatch.
    pub fn verify(&self, operator_public: &RsaPublicKey) -> Result<(), ProtocolError> {
        self.verify_with(&operator_public.verifier())
    }

    /// Verifies the nonce signature with a prepared `D⁺` verifier,
    /// skipping the per-key precomputation.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify).
    pub fn verify_with(&self, operator: &RsaVerifier) -> Result<(), ProtocolError> {
        operator
            .verify(&self.nonce, &self.signature, HashAlg::Sha256)
            .map_err(|_| ProtocolError::QuerySignatureInvalid)
    }
}

/// Step 3 — the auditor's reply: zone ids with their geometry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZoneResponse {
    /// Registered zones whose centres fall inside the query rectangle.
    pub zones: Vec<(ZoneId, alidrone_geo::NoFlyZone)>,
}

impl ZoneResponse {
    /// Just the geometry, as a [`ZoneSet`](alidrone_geo::ZoneSet) for the
    /// sampler.
    pub fn zone_set(&self) -> alidrone_geo::ZoneSet {
        self.zones.iter().map(|(_, z)| *z).collect()
    }
}

/// Step 4 — a Proof-of-Alibi submission covering a claimed flight window.
#[derive(Debug, Clone, PartialEq)]
pub struct PoaSubmission {
    /// The submitting drone.
    pub drone_id: DroneId,
    /// Claimed takeoff time.
    pub window_start: Timestamp,
    /// Claimed landing time.
    pub window_end: Timestamp,
    /// The proof.
    pub poa: ProofOfAlibi,
}

impl fmt::Display for PoaSubmission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} flight [{} → {}] with {}",
            self.drone_id, self.window_start, self.window_end, self.poa
        )
    }
}

/// A step-4 submission in either transport form — the typed entry point
/// for [`Auditor::verify`](crate::Auditor::verify).
///
/// Both protocol variants (plaintext PoA and the §V-C
/// encrypted-under-the-server-key form) funnel through one verification
/// path; this enum is the seam. The older
/// `verify_submission`/`verify_encrypted_submission` methods remain as
/// thin wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum Submission {
    /// A plaintext Proof-of-Alibi submission.
    Plain(PoaSubmission),
    /// A PoA encrypted under the auditor's public key (paper §V-C).
    Encrypted {
        /// The submitting drone.
        drone_id: DroneId,
        /// Claimed takeoff time.
        window_start: Timestamp,
        /// Claimed landing time.
        window_end: Timestamp,
        /// The encrypted proof.
        poa: EncryptedPoa,
    },
}

impl Submission {
    /// Wraps a plaintext submission.
    pub fn plain(submission: PoaSubmission) -> Self {
        Submission::Plain(submission)
    }

    /// Wraps an encrypted submission with its claimed flight window.
    pub fn encrypted(
        drone_id: DroneId,
        window_start: Timestamp,
        window_end: Timestamp,
        poa: EncryptedPoa,
    ) -> Self {
        Submission::Encrypted {
            drone_id,
            window_start,
            window_end,
            poa,
        }
    }

    /// The submitting drone, in either form.
    pub fn drone_id(&self) -> DroneId {
        match self {
            Submission::Plain(s) => s.drone_id,
            Submission::Encrypted { drone_id, .. } => *drone_id,
        }
    }

    /// The claimed flight window, in either form.
    pub fn window(&self) -> (Timestamp, Timestamp) {
        match self {
            Submission::Plain(s) => (s.window_start, s.window_end),
            Submission::Encrypted {
                window_start,
                window_end,
                ..
            } => (*window_start, *window_end),
        }
    }
}

impl From<PoaSubmission> for Submission {
    fn from(s: PoaSubmission) -> Self {
        Submission::Plain(s)
    }
}

/// A zone owner's report: "I saw drone X near my zone at time T"
/// (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accusation {
    /// The reporting owner's zone.
    pub zone_id: ZoneId,
    /// The drone id read off the aircraft.
    pub drone_id: DroneId,
    /// Time of the sighting.
    pub time: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{operator_key, origin, signed_samples, tee_key};

    #[test]
    fn zone_query_signature_round_trip() {
        let q = ZoneQuery::new_signed(
            DroneId::new(1),
            origin(),
            origin().destination(45.0, alidrone_geo::Distance::from_km(10.0)),
            [7u8; 16],
            operator_key(),
        )
        .unwrap();
        q.verify(operator_key().public_key()).unwrap();
    }

    #[test]
    fn zone_query_wrong_key_rejected() {
        let q = ZoneQuery::new_signed(
            DroneId::new(1),
            origin(),
            origin(),
            [7u8; 16],
            operator_key(),
        )
        .unwrap();
        // The TEE key is not the operator key.
        assert_eq!(
            q.verify(tee_key().public_key()),
            Err(ProtocolError::QuerySignatureInvalid)
        );
    }

    #[test]
    fn zone_query_tampered_nonce_rejected() {
        let mut q = ZoneQuery::new_signed(
            DroneId::new(1),
            origin(),
            origin(),
            [7u8; 16],
            operator_key(),
        )
        .unwrap();
        q.nonce[0] ^= 1;
        assert!(q.verify(operator_key().public_key()).is_err());
    }

    #[test]
    fn zone_response_to_zone_set() {
        let z = alidrone_geo::NoFlyZone::new(origin(), alidrone_geo::Distance::from_meters(50.0));
        let r = ZoneResponse {
            zones: vec![(ZoneId::new(1), z), (ZoneId::new(2), z)],
        };
        assert_eq!(r.zone_set().len(), 2);
    }

    #[test]
    fn submission_display() {
        let s = PoaSubmission {
            drone_id: DroneId::new(3),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(10.0),
            poa: ProofOfAlibi::from_entries(signed_samples(2)),
        };
        let text = s.to_string();
        assert!(text.contains("drone-000003"));
        assert!(text.contains("2 samples"));
    }
}
