//! Crash-safe write-ahead journal for the auditor's durable state.
//!
//! The networked auditor (PR 3) keeps every registration, zone, nonce,
//! and verified PoA in memory; one crash silently destroys the audit
//! trail the whole protocol exists to produce. This module gives the
//! auditor a durable append-only journal with bounded-cost recovery:
//!
//! ```text
//! | magic "ALDJ" u32 | version u8 |            file header (5 bytes)
//! | len u32 | crc32 u32 | payload (len bytes) |   record frame
//! | len u32 | crc32 u32 | payload (len bytes) |
//! ...
//! ```
//!
//! The CRC covers the payload only; the payload's first byte is a record
//! tag (see [`Record`]) followed by a body in the wire codec. Records are
//! written with a single [`StorageBackend::append`] call each, so a crash
//! can only ever leave a *torn tail*: a truncated final frame. Recovery
//! distinguishes the two failure shapes the paper's threat model cares
//! about:
//!
//! - **Torn tail** (truncated final record): the crash interrupted the
//!   last write. Recovery stops cleanly at the last whole record, logs
//!   the event, and truncates the tail so the journal is appendable
//!   again.
//! - **Mid-journal corruption** (CRC mismatch, bad length, bad header):
//!   bytes *behind* the durable horizon changed — storage rot or
//!   tampering. Recovery refuses with a typed [`JournalError::Corrupt`];
//!   silently skipping records would forge history.
//!
//! Compaction bounds recovery cost: [`Journal::compact`] atomically
//! replaces the whole journal with a single [`Record::Snapshot`] frame
//! (the auditor's existing snapshot format), after which appends resume.

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::wire::codec::{Reader, Writer};
use crate::ProtocolError;

/// Journal file magic: `"ALDJ"`.
pub const JOURNAL_MAGIC: u32 = 0x414C_444A;
/// Current journal format version.
pub const JOURNAL_VERSION: u8 = 1;
/// Header length in bytes (magic + version).
pub const HEADER_LEN: usize = 5;
/// Frame overhead per record (length + CRC).
pub const FRAME_OVERHEAD: usize = 8;
/// Upper bound on a single record payload (matches the wire codec cap).
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

// ------------------------------------------------------------------ errors

/// Typed journal failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O failure in the storage backend.
    Io(String),
    /// The backend has no space left (injected or real `ENOSPC`).
    DiskFull,
    /// Bytes behind the durable horizon are damaged: a record whose
    /// frame is complete fails its CRC, declares an impossible length,
    /// or the file header itself is wrong.
    Corrupt {
        /// Byte offset of the damaged frame (0 for the header).
        offset: usize,
        /// What recovery found there.
        reason: &'static str,
    },
    /// A record payload decoded to something the auditor cannot apply.
    Malformed(&'static str),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::DiskFull => write!(f, "journal storage full"),
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            JournalError::Malformed(what) => write!(f, "malformed journal record: {what}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<JournalError> for ProtocolError {
    fn from(e: JournalError) -> Self {
        ProtocolError::Storage(e.to_string())
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::StorageFull {
            JournalError::DiskFull
        } else {
            JournalError::Io(e.to_string())
        }
    }
}

// ----------------------------------------------------------------- backend

/// Where journal bytes live. Implementations take `&self`; they are the
/// single writer for their underlying store and serialize internally.
pub trait StorageBackend: Send + Sync {
    /// Reads the entire journal image (empty for a fresh store).
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    fn read(&self) -> Result<Vec<u8>, JournalError>;

    /// Appends `bytes` atomically-enough: a crash mid-append may leave a
    /// prefix of `bytes` (a torn tail) but never interleaved garbage.
    ///
    /// # Errors
    ///
    /// Backend I/O failures, including [`JournalError::DiskFull`].
    fn append(&self, bytes: &[u8]) -> Result<(), JournalError>;

    /// Atomically replaces the whole journal image (compaction). After a
    /// crash the store holds either the old image or the new one, never
    /// a mix.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    fn replace(&self, bytes: &[u8]) -> Result<(), JournalError>;
}

/// A real filesystem backend. Appends go through `O_APPEND` + flush;
/// [`replace`](StorageBackend::replace) writes a sibling temp file and
/// renames it over the journal, the standard atomic-swap idiom.
#[derive(Debug)]
pub struct FsBackend {
    path: PathBuf,
    /// Serializes writers; the fs itself orders appends, but the tmp
    /// path used by `replace` must not race a concurrent `replace`.
    lock: Mutex<()>,
}

impl FsBackend {
    /// A backend at `path`. The file need not exist yet.
    pub fn new(path: impl AsRef<Path>) -> Self {
        FsBackend {
            path: path.as_ref().to_path_buf(),
            lock: Mutex::new(()),
        }
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StorageBackend for FsBackend {
    fn read(&self) -> Result<Vec<u8>, JournalError> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&self, bytes: &[u8]) -> Result<(), JournalError> {
        // A poisoned lock only means another writer panicked mid-append;
        // the fs state is still a clean prefix, so keep going.
        let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(bytes)?;
        f.flush()?;
        Ok(())
    }

    fn replace(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let _g = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

/// Knobs for the in-memory backend's injected faults (driven by the
/// chaos plane; every field optional and one-shot where noted).
#[derive(Debug, Default)]
struct MemFaults {
    /// Total byte budget; appends that would exceed it fail with
    /// [`JournalError::DiskFull`] without writing anything.
    capacity: Option<usize>,
    /// One-shot torn write: the next append persists only this many
    /// bytes of the record, then reports an I/O error (the "crash
    /// during write" shape).
    tear_next: Option<usize>,
    /// One-shot hard failure for the next append.
    fail_next: bool,
}

/// An in-memory backend with deterministic fault injection, used by the
/// chaos campaign and the crash-at-every-offset property test.
#[derive(Debug, Default)]
pub struct MemBackend {
    data: Mutex<Vec<u8>>,
    faults: Mutex<MemFaults>,
}

impl MemBackend {
    /// An empty store.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// A store pre-seeded with a journal image (e.g. a truncated copy of
    /// another backend's bytes, to model a crash at that offset).
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        MemBackend {
            data: Mutex::new(bytes),
            faults: Mutex::new(MemFaults::default()),
        }
    }

    /// A copy of the current journal image.
    pub fn bytes(&self) -> Vec<u8> {
        self.data.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Caps the store at `capacity` total bytes; appends beyond it fail
    /// with [`JournalError::DiskFull`].
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .capacity = capacity;
    }

    /// Arms a one-shot torn write: the next append persists only `keep`
    /// bytes and reports an error, modelling a crash mid-write.
    pub fn tear_next_append(&self, keep: usize) {
        self.faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .tear_next = Some(keep);
    }

    /// Arms a one-shot append failure that persists nothing.
    pub fn fail_next_append(&self) {
        self.faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .fail_next = true;
    }

    /// Flips the bits selected by `mask` at `offset`, modelling storage
    /// rot behind the durable horizon. Out-of-range offsets are ignored.
    pub fn flip_bits(&self, offset: usize, mask: u8) {
        let mut data = self.data.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(b) = data.get_mut(offset) {
            *b ^= mask;
        }
    }

    /// Truncates the image to `len` bytes, modelling a crash that lost
    /// the tail.
    pub fn truncate(&self, len: usize) {
        let mut data = self.data.lock().unwrap_or_else(|p| p.into_inner());
        data.truncate(len);
    }

    /// Current image length.
    pub fn len(&self) -> usize {
        self.data.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_empty()
    }
}

impl StorageBackend for MemBackend {
    fn read(&self) -> Result<Vec<u8>, JournalError> {
        Ok(self.bytes())
    }

    fn append(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let mut faults = self.faults.lock().unwrap_or_else(|p| p.into_inner());
        if faults.fail_next {
            faults.fail_next = false;
            return Err(JournalError::Io("injected append failure".into()));
        }
        if let Some(keep) = faults.tear_next.take() {
            let keep = keep.min(bytes.len());
            drop(faults);
            let mut data = self.data.lock().unwrap_or_else(|p| p.into_inner());
            data.extend_from_slice(&bytes[..keep]);
            return Err(JournalError::Io("injected torn write".into()));
        }
        let capacity = faults.capacity;
        drop(faults);
        let mut data = self.data.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(cap) = capacity {
            if data.len() + bytes.len() > cap {
                return Err(JournalError::DiskFull);
            }
        }
        data.extend_from_slice(bytes);
        Ok(())
    }

    fn replace(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let capacity = self
            .faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .capacity;
        if let Some(cap) = capacity {
            if bytes.len() > cap {
                return Err(JournalError::DiskFull);
            }
        }
        let mut data = self.data.lock().unwrap_or_else(|p| p.into_inner());
        *data = bytes.to_vec();
        Ok(())
    }
}

// ------------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ----------------------------------------------------------------- records

/// Record payload tags.
const TAG_REGISTER_DRONE: u8 = 1;
const TAG_REGISTER_ZONE: u8 = 2;
const TAG_NONCE_USED: u8 = 3;
const TAG_POA_STORED: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;
const TAG_EPOCH: u8 = 6;
const TAG_AUDIT_CHECKPOINT: u8 = 7;

/// One durable state mutation. Records carry the ids the live auditor
/// assigned, so replay reconstructs *exactly* the same registries.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A drone registration: the assigned id plus `D⁺` and `T⁺` as
    /// big-endian (modulus, exponent) byte strings.
    RegisterDrone {
        /// Assigned drone id.
        id: u64,
        /// Operator public key modulus.
        op_modulus: Vec<u8>,
        /// Operator public key exponent.
        op_exponent: Vec<u8>,
        /// TEE public key modulus.
        tee_modulus: Vec<u8>,
        /// TEE public key exponent.
        tee_exponent: Vec<u8>,
    },
    /// A circular zone registration.
    RegisterZone {
        /// Assigned zone id.
        id: u64,
        /// Center latitude, degrees.
        lat_deg: f64,
        /// Center longitude, degrees.
        lon_deg: f64,
        /// Radius, meters.
        radius_m: f64,
    },
    /// A query nonce was consumed (anti-replay state is durable: losing
    /// it would reopen query replay after a crash).
    NonceUsed {
        /// The querying drone.
        drone: u64,
        /// The consumed nonce.
        nonce: [u8; 16],
    },
    /// A verified PoA was retained, with the verdict it received.
    PoaStored {
        /// Submitting drone.
        drone: u64,
        /// Claimed window start, seconds.
        window_start: f64,
        /// Claimed window end, seconds.
        window_end: f64,
        /// `ProofOfAlibi::to_bytes`.
        poa: Vec<u8>,
        /// `wire`-encoded verdict bytes.
        verdict: Vec<u8>,
        /// Storage time, seconds.
        stored_at: f64,
    },
    /// A full auditor snapshot (`Auditor::snapshot` bytes). Written by
    /// compaction as the first record of a fresh journal image.
    Snapshot(Vec<u8>),
    /// A leadership-epoch boundary: every record *after* this one was
    /// written by the primary holding the named epoch. Promotion appends
    /// one (see [`crate::repl`]), so replicated logs carry the fencing
    /// history and replay it into [`Auditor::current_epoch`](crate::Auditor::current_epoch).
    Epoch(u64),
    /// A Merkle checkpoint over the audit chain (see [`crate::audit`]):
    /// the tree size and root after the last audited record, signed by
    /// the auditor key and optionally countersigned by the TEE. Replay
    /// and replication followers recompute the root and refuse the log
    /// on mismatch — this is the tamper-evidence anchor.
    AuditCheckpoint {
        /// Audit entries covered (Merkle tree size).
        size: u64,
        /// Merkle root over those entries.
        root: [u8; 32],
        /// Auditor RSA-SHA256 signature over the STH signing bytes.
        sig: Vec<u8>,
        /// Optional TEE countersignature (empty when absent).
        tee_sig: Vec<u8>,
    },
}

impl Record {
    /// Whether this record is a link in the tamper-evident audit chain
    /// (see [`crate::audit`]). Mutation records are; `Snapshot`/`Epoch`
    /// bookkeeping and the checkpoints themselves are not — compaction
    /// re-journals those, so chaining them would fork the chain across
    /// a compaction boundary.
    pub fn is_audited(&self) -> bool {
        matches!(
            self,
            Record::RegisterDrone { .. }
                | Record::RegisterZone { .. }
                | Record::NonceUsed { .. }
                | Record::PoaStored { .. }
        )
    }

    /// Encodes the payload (tag + body).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Record::RegisterDrone {
                id,
                op_modulus,
                op_exponent,
                tee_modulus,
                tee_exponent,
            } => {
                w.put_u8(TAG_REGISTER_DRONE)
                    .put_u64(*id)
                    .put_bytes(op_modulus)
                    .put_bytes(op_exponent)
                    .put_bytes(tee_modulus)
                    .put_bytes(tee_exponent);
            }
            Record::RegisterZone {
                id,
                lat_deg,
                lon_deg,
                radius_m,
            } => {
                w.put_u8(TAG_REGISTER_ZONE)
                    .put_u64(*id)
                    .put_f64(*lat_deg)
                    .put_f64(*lon_deg)
                    .put_f64(*radius_m);
            }
            Record::NonceUsed { drone, nonce } => {
                w.put_u8(TAG_NONCE_USED).put_u64(*drone);
                for b in nonce {
                    w.put_u8(*b);
                }
            }
            Record::PoaStored {
                drone,
                window_start,
                window_end,
                poa,
                verdict,
                stored_at,
            } => {
                w.put_u8(TAG_POA_STORED)
                    .put_u64(*drone)
                    .put_f64(*window_start)
                    .put_f64(*window_end)
                    .put_bytes(poa)
                    .put_bytes(verdict)
                    .put_f64(*stored_at);
            }
            Record::Snapshot(bytes) => {
                w.put_u8(TAG_SNAPSHOT).put_bytes(bytes);
            }
            Record::Epoch(epoch) => {
                w.put_u8(TAG_EPOCH).put_u64(*epoch);
            }
            Record::AuditCheckpoint {
                size,
                root,
                sig,
                tee_sig,
            } => {
                w.put_u8(TAG_AUDIT_CHECKPOINT).put_u64(*size);
                for b in root {
                    w.put_u8(*b);
                }
                w.put_bytes(sig).put_bytes(tee_sig);
            }
        }
        w.into_bytes()
    }

    /// Decodes a payload.
    ///
    /// # Errors
    ///
    /// [`JournalError::Malformed`] for unknown tags or truncated bodies.
    pub fn from_payload(payload: &[u8]) -> Result<Record, JournalError> {
        let mut r = Reader::new(payload);
        let mal = |_| JournalError::Malformed("truncated record body");
        let tag = r.get_u8().map_err(mal)?;
        let rec = match tag {
            TAG_REGISTER_DRONE => Record::RegisterDrone {
                id: r.get_u64().map_err(mal)?,
                op_modulus: r.get_bytes().map_err(mal)?.to_vec(),
                op_exponent: r.get_bytes().map_err(mal)?.to_vec(),
                tee_modulus: r.get_bytes().map_err(mal)?.to_vec(),
                tee_exponent: r.get_bytes().map_err(mal)?.to_vec(),
            },
            TAG_REGISTER_ZONE => Record::RegisterZone {
                id: r.get_u64().map_err(mal)?,
                lat_deg: r.get_f64().map_err(mal)?,
                lon_deg: r.get_f64().map_err(mal)?,
                radius_m: r.get_f64().map_err(mal)?,
            },
            TAG_NONCE_USED => Record::NonceUsed {
                drone: r.get_u64().map_err(mal)?,
                nonce: r.get_array().map_err(mal)?,
            },
            TAG_POA_STORED => Record::PoaStored {
                drone: r.get_u64().map_err(mal)?,
                window_start: r.get_f64().map_err(mal)?,
                window_end: r.get_f64().map_err(mal)?,
                poa: r.get_bytes().map_err(mal)?.to_vec(),
                verdict: r.get_bytes().map_err(mal)?.to_vec(),
                stored_at: r.get_f64().map_err(mal)?,
            },
            TAG_SNAPSHOT => Record::Snapshot(r.get_bytes().map_err(mal)?.to_vec()),
            TAG_EPOCH => Record::Epoch(r.get_u64().map_err(mal)?),
            TAG_AUDIT_CHECKPOINT => Record::AuditCheckpoint {
                size: r.get_u64().map_err(mal)?,
                root: r.get_array().map_err(mal)?,
                sig: r.get_bytes().map_err(mal)?.to_vec(),
                tee_sig: r.get_bytes().map_err(mal)?.to_vec(),
            },
            _ => return Err(JournalError::Malformed("unknown record tag")),
        };
        r.finish()
            .map_err(|_| JournalError::Malformed("trailing record bytes"))?;
        Ok(rec)
    }
}

// ------------------------------------------------------------------ replay

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Whole records successfully decoded.
    pub records_applied: usize,
    /// `true` when a truncated final frame was discarded (crash during
    /// the last append).
    pub torn_tail: bool,
    /// Bytes of torn tail discarded (0 when `torn_tail` is false).
    pub torn_bytes: usize,
    /// Total journal bytes scanned (after any tail truncation).
    pub bytes_replayed: usize,
}

/// Parses a journal image into records, applying the torn-tail rule.
///
/// # Errors
///
/// [`JournalError::Corrupt`] for a bad header or any damaged frame that
/// is *not* a clean truncation of the final record.
pub fn parse_image(bytes: &[u8]) -> Result<(Vec<Record>, ReplayReport), JournalError> {
    let mut report = ReplayReport::default();
    if bytes.is_empty() {
        return Ok((Vec::new(), report));
    }
    if bytes.len() < HEADER_LEN {
        // Crash while writing the very first header: treat as torn tail
        // of an empty journal.
        report.torn_tail = true;
        report.torn_bytes = bytes.len();
        return Ok((Vec::new(), report));
    }
    if u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) != JOURNAL_MAGIC {
        return Err(JournalError::Corrupt {
            offset: 0,
            reason: "bad magic",
        });
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(JournalError::Corrupt {
            offset: 4,
            reason: "unsupported version",
        });
    }
    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < FRAME_OVERHEAD {
            // Truncated frame header at the tail: torn write.
            report.torn_tail = true;
            report.torn_bytes = rest.len();
            break;
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len == 0 || len > MAX_RECORD_LEN {
            // A frame header this wrong cannot be a clean truncation —
            // the length bytes themselves were fully written.
            return Err(JournalError::Corrupt {
                offset: off,
                reason: "impossible record length",
            });
        }
        let payload = &rest[FRAME_OVERHEAD..];
        if payload.len() < len {
            // Payload shorter than declared *at the tail*: torn write.
            report.torn_tail = true;
            report.torn_bytes = rest.len();
            break;
        }
        let payload = &payload[..len];
        if crc32(payload) != crc {
            // The whole frame is present but its checksum fails: this is
            // rot or tampering, never a clean crash.
            return Err(JournalError::Corrupt {
                offset: off,
                reason: "crc mismatch",
            });
        }
        records.push(Record::from_payload(payload)?);
        report.records_applied += 1;
        off += FRAME_OVERHEAD + len;
    }
    report.bytes_replayed = off;
    Ok((records, report))
}

// ----------------------------------------------------------------- journal

/// What [`Journal::read_from`] hands a log shipper.
///
/// Offsets are *logical*: a monotonically increasing byte position in
/// the journal's lifetime stream. Appends extend the stream; compaction
/// rebases it — the fresh image occupies logical bytes starting at the
/// old durable end, so any offset acked before compaction is now behind
/// [`Journal::base_offset`] and resolves to [`ShipSource::Rebased`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipSource {
    /// Raw frame bytes from the requested offset to the durable end.
    /// Appending them to a follower image that ends at the requested
    /// offset reproduces this journal's image byte-for-byte.
    Tail(Vec<u8>),
    /// The requested offset predates the current image (compaction
    /// reclaimed it): the whole current image, re-based at `base`. The
    /// follower must replace its image wholesale and resume from
    /// `base + image.len()`.
    Rebased {
        /// Logical offset of the image's first byte.
        base: u64,
        /// The full current journal image (header + frames).
        image: Vec<u8>,
    },
}

/// An open, appendable journal over a [`StorageBackend`].
pub struct Journal {
    backend: std::sync::Arc<dyn StorageBackend>,
    /// Serializes record framing so concurrent appends cannot interleave,
    /// and guards the offset pair below so shippers read a consistent
    /// (base, end, image) view.
    write_lock: Mutex<()>,
    /// Logical offset of the current image's first byte (jumps to the
    /// previous durable end on every compaction).
    base: std::sync::atomic::AtomicU64,
    /// Logical durable end: `base` + bytes of the image known to hold
    /// whole records. A failed append never advances it, so shippers
    /// can never ship a torn tail.
    end: std::sync::atomic::AtomicU64,
}

impl Journal {
    /// Opens (or creates) a journal on `backend`, returning the decoded
    /// records and a replay report. A torn tail is truncated away so the
    /// journal is appendable; mid-journal corruption is refused.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] for damaged journals, plus backend I/O
    /// failures.
    pub fn open(
        backend: std::sync::Arc<dyn StorageBackend>,
    ) -> Result<(Journal, Vec<Record>, ReplayReport), JournalError> {
        let bytes = backend.read()?;
        let (records, report) = parse_image(&bytes)?;
        let mut clean_len = bytes.len();
        if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&JOURNAL_MAGIC.to_be_bytes());
            header.push(JOURNAL_VERSION);
            backend.append(&header)?;
            clean_len = HEADER_LEN;
        } else if report.torn_tail {
            // Drop the torn tail so future appends land on a record
            // boundary. bytes_replayed is the clean prefix length, but a
            // headerless torn image replays to a fresh header.
            if report.bytes_replayed >= HEADER_LEN {
                backend.replace(&bytes[..report.bytes_replayed])?;
                clean_len = report.bytes_replayed;
            } else {
                let mut header = Vec::with_capacity(HEADER_LEN);
                header.extend_from_slice(&JOURNAL_MAGIC.to_be_bytes());
                header.push(JOURNAL_VERSION);
                backend.replace(&header)?;
                clean_len = HEADER_LEN;
            }
        }
        Ok((
            Journal {
                backend,
                write_lock: Mutex::new(()),
                base: std::sync::atomic::AtomicU64::new(0),
                end: std::sync::atomic::AtomicU64::new(clean_len as u64),
            },
            records,
            report,
        ))
    }

    /// Logical offset of the current image's first byte. Offsets below
    /// this were reclaimed by compaction; shipping from them requires a
    /// [`ShipSource::Rebased`] image transfer.
    pub fn base_offset(&self) -> u64 {
        self.base.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Logical durable end: the offset the next appended byte will
    /// occupy. A follower acked up to this offset holds every record.
    pub fn end_offset(&self) -> u64 {
        self.end.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Reads the durable bytes a follower acked up to `from` still
    /// needs: a raw tail when `from` is inside the current image, or the
    /// whole re-based image when compaction has reclaimed `from`.
    ///
    /// # Errors
    ///
    /// Backend read failures, and [`JournalError::Malformed`] when
    /// `from` lies beyond the durable end (the follower claims bytes
    /// this journal never wrote — a protocol violation, not a race).
    pub fn read_from(&self, from: u64) -> Result<ShipSource, JournalError> {
        use std::sync::atomic::Ordering;
        let _g = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        let base = self.base.load(Ordering::Acquire);
        let end = self.end.load(Ordering::Acquire);
        let bytes = self.backend.read()?;
        // The tracked end is the durable horizon: a failed append may
        // have left a torn physical tail past it, which must never ship.
        let durable = ((end - base) as usize).min(bytes.len());
        let image = &bytes[..durable];
        // `from == base` after a rebase (base > 0) still needs a full
        // image transfer: the follower's physical bytes at that offset
        // are the pre-compaction history, not this image's header —
        // appending the image would embed a second journal header.
        if from < base || (from == base && base > 0) {
            return Ok(ShipSource::Rebased {
                base,
                image: image.to_vec(),
            });
        }
        if from > end {
            return Err(JournalError::Malformed("ship offset beyond durable end"));
        }
        Ok(ShipSource::Tail(image[(from - base) as usize..].to_vec()))
    }

    /// Appends one record as a single backend write (frame = length,
    /// CRC, payload), so a crash can only tear the final record.
    ///
    /// # Errors
    ///
    /// Backend failures; on error the journal may hold a torn tail,
    /// which the next [`Journal::open`] cleans up.
    pub fn append_record(&self, record: &Record) -> Result<(), JournalError> {
        let payload = record.to_payload();
        if payload.is_empty() || payload.len() > MAX_RECORD_LEN {
            // A frame outside the parseable length range would poison
            // the journal: parse_image would refuse the whole image as
            // corrupt. Reject it as a typed error before any byte lands.
            return Err(JournalError::Malformed("record exceeds frame length cap"));
        }
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        let _g = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        self.backend.append(&frame)?;
        self.end
            .fetch_add(frame.len() as u64, std::sync::atomic::Ordering::AcqRel);
        Ok(())
    }

    /// Compacts the journal to a single [`Record::Snapshot`] frame via an
    /// atomic image replacement, bounding future recovery cost.
    ///
    /// # Errors
    ///
    /// Backend failures; the old image survives a failed replace.
    pub fn compact(&self, snapshot: &[u8]) -> Result<(), JournalError> {
        use std::sync::atomic::Ordering;
        let payload = Record::Snapshot(snapshot.to_vec()).to_payload();
        if payload.len() > MAX_RECORD_LEN {
            return Err(JournalError::Malformed("record exceeds frame length cap"));
        }
        let mut image = Vec::with_capacity(HEADER_LEN + FRAME_OVERHEAD + payload.len());
        image.extend_from_slice(&JOURNAL_MAGIC.to_be_bytes());
        image.push(JOURNAL_VERSION);
        image.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        image.extend_from_slice(&crc32(&payload).to_be_bytes());
        image.extend_from_slice(&payload);
        let _g = self.write_lock.lock().unwrap_or_else(|p| p.into_inner());
        self.backend.replace(&image)?;
        // Rebase the logical stream: the fresh image occupies bytes
        // starting at the old durable end, so pre-compaction acked
        // offsets resolve to ShipSource::Rebased.
        let new_base = self.end.load(Ordering::Acquire);
        self.base.store(new_base, Ordering::Release);
        self.end
            .store(new_base + image.len() as u64, Ordering::Release);
        Ok(())
    }

    /// The backend, for inspection in tests.
    pub fn backend(&self) -> &std::sync::Arc<dyn StorageBackend> {
        &self.backend
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn zone_record(id: u64) -> Record {
        Record::RegisterZone {
            id,
            lat_deg: 40.0,
            lon_deg: -88.0,
            radius_m: 150.0,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn open_fresh_writes_header_then_round_trips() {
        let backend = Arc::new(MemBackend::new());
        let (journal, records, report) = Journal::open(backend.clone()).unwrap();
        assert!(records.is_empty());
        assert!(!report.torn_tail);
        journal.append_record(&zone_record(1)).unwrap();
        journal
            .append_record(&Record::NonceUsed {
                drone: 7,
                nonce: [9; 16],
            })
            .unwrap();
        drop(journal);
        let (_, records, report) = Journal::open(backend).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], zone_record(1));
        assert_eq!(report.records_applied, 2);
        assert!(!report.torn_tail);
    }

    #[test]
    fn every_record_variant_round_trips() {
        let all = vec![
            Record::RegisterDrone {
                id: 3,
                op_modulus: vec![1, 2, 3],
                op_exponent: vec![1, 0, 1],
                tee_modulus: vec![9, 9],
                tee_exponent: vec![3],
            },
            zone_record(5),
            Record::NonceUsed {
                drone: 1,
                nonce: [0xAB; 16],
            },
            Record::PoaStored {
                drone: 2,
                window_start: 0.0,
                window_end: 30.0,
                poa: vec![0, 0, 0, 0],
                verdict: vec![0],
                stored_at: 31.0,
            },
            Record::Snapshot(vec![0xDE, 0xAD]),
            Record::Epoch(7),
            Record::AuditCheckpoint {
                size: 42,
                root: [0x5A; 32],
                sig: vec![1, 2, 3, 4],
                tee_sig: vec![],
            },
        ];
        for rec in all {
            let payload = rec.to_payload();
            assert_eq!(Record::from_payload(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn only_mutation_records_are_audited() {
        assert!(zone_record(1).is_audited());
        assert!(Record::NonceUsed {
            drone: 1,
            nonce: [0; 16]
        }
        .is_audited());
        assert!(!Record::Snapshot(vec![]).is_audited());
        assert!(!Record::Epoch(3).is_audited());
        assert!(!Record::AuditCheckpoint {
            size: 0,
            root: [0; 32],
            sig: vec![],
            tee_sig: vec![],
        }
        .is_audited());
    }

    #[test]
    fn torn_tail_is_truncated_and_logged() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        journal.append_record(&zone_record(2)).unwrap();
        let full = backend.bytes();
        // Crash mid-way through the second record.
        for cut in 1..FRAME_OVERHEAD + 4 {
            let torn = Arc::new(MemBackend::with_bytes(full[..full.len() - cut].to_vec()));
            let (_, records, report) = Journal::open(torn.clone()).unwrap();
            assert_eq!(records.len(), 1, "cut {cut}");
            assert!(report.torn_tail, "cut {cut}");
            // The tail was truncated away; reopening is now clean.
            let (_, records2, report2) = Journal::open(torn).unwrap();
            assert_eq!(records2.len(), 1);
            assert!(!report2.torn_tail);
        }
    }

    #[test]
    fn mid_journal_corruption_is_typed_error() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        journal.append_record(&zone_record(2)).unwrap();
        // Flip a payload bit inside the *first* record.
        backend.flip_bits(HEADER_LEN + FRAME_OVERHEAD + 2, 0x10);
        let err = Journal::open(Arc::new(MemBackend::with_bytes(backend.bytes()))).unwrap_err();
        assert!(
            matches!(
                err,
                JournalError::Corrupt {
                    reason: "crc mismatch",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        let mut bytes = backend.bytes();
        bytes[0] ^= 0xFF;
        let err = parse_image(&bytes).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { offset: 0, .. }));
        let mut bytes = backend.bytes();
        bytes[4] = 99;
        let err = parse_image(&bytes).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { offset: 4, .. }));
    }

    #[test]
    fn impossible_length_is_corruption_not_torn_tail() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        let mut bytes = backend.bytes();
        // Zero out the length field of the first frame.
        for b in &mut bytes[HEADER_LEN..HEADER_LEN + 4] {
            *b = 0;
        }
        let err = parse_image(&bytes).unwrap_err();
        assert!(matches!(
            err,
            JournalError::Corrupt {
                reason: "impossible record length",
                ..
            }
        ));
    }

    #[test]
    fn compaction_replaces_image_with_snapshot_record() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        for i in 0..10 {
            journal.append_record(&zone_record(i)).unwrap();
        }
        let before = backend.bytes().len();
        journal.compact(b"snapshot-bytes").unwrap();
        assert!(backend.bytes().len() < before);
        journal.append_record(&zone_record(99)).unwrap();
        let (_, records, _) = Journal::open(backend).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], Record::Snapshot(b"snapshot-bytes".to_vec()));
        assert_eq!(records[1], zone_record(99));
    }

    #[test]
    fn disk_full_is_typed_and_nondestructive() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        let len = backend.bytes().len();
        backend.set_capacity(Some(len));
        assert_eq!(
            journal.append_record(&zone_record(2)),
            Err(JournalError::DiskFull)
        );
        // Nothing was written; the journal still parses cleanly.
        backend.set_capacity(None);
        let (_, records, report) = Journal::open(backend).unwrap();
        assert_eq!(records.len(), 1);
        assert!(!report.torn_tail);
    }

    #[test]
    fn torn_write_fault_recovers_on_reopen() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        backend.tear_next_append(5);
        assert!(journal.append_record(&zone_record(2)).is_err());
        let (_, records, report) = Journal::open(backend).unwrap();
        assert_eq!(records.len(), 1);
        assert!(report.torn_tail);
    }

    #[test]
    fn fs_backend_round_trips_and_replaces() {
        let dir =
            std::env::temp_dir().join(format!("alidrone-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auditor.wal");
        let _ = std::fs::remove_file(&path);
        let backend = Arc::new(FsBackend::new(&path));
        assert!(backend.read().unwrap().is_empty());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        journal.append_record(&zone_record(2)).unwrap();
        drop(journal);
        let (journal, records, _) = Journal::open(Arc::new(FsBackend::new(&path))).unwrap();
        assert_eq!(records.len(), 2);
        journal.compact(b"snap").unwrap();
        let (_, records, _) = Journal::open(Arc::new(FsBackend::new(&path))).unwrap();
        assert_eq!(records, vec![Record::Snapshot(b"snap".to_vec())]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn offsets_track_appends_and_read_from_ships_exact_tails() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        assert_eq!(journal.base_offset(), 0);
        assert_eq!(journal.end_offset(), HEADER_LEN as u64);
        journal.append_record(&zone_record(1)).unwrap();
        let end1 = journal.end_offset();
        journal.append_record(&zone_record(2)).unwrap();
        let end2 = journal.end_offset();
        assert_eq!(end2, backend.bytes().len() as u64);

        // A follower at offset 0 receives the whole image; one at end1
        // receives exactly the second record's frame.
        let full = backend.bytes();
        assert_eq!(
            journal.read_from(0).unwrap(),
            ShipSource::Tail(full.clone())
        );
        let ShipSource::Tail(tail) = journal.read_from(end1).unwrap() else {
            panic!("in-image offset must ship a tail");
        };
        assert_eq!(tail, full[end1 as usize..].to_vec());
        // Fully caught up: an empty tail.
        assert_eq!(
            journal.read_from(end2).unwrap(),
            ShipSource::Tail(Vec::new())
        );
        // Beyond the durable end is a protocol violation, typed.
        assert!(matches!(
            journal.read_from(end2 + 1),
            Err(JournalError::Malformed(_))
        ));
    }

    #[test]
    fn compaction_rebases_the_logical_stream() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        for i in 0..5 {
            journal.append_record(&zone_record(i)).unwrap();
        }
        let old_end = journal.end_offset();
        journal.compact(b"snap").unwrap();
        assert_eq!(journal.base_offset(), old_end);
        assert_eq!(journal.end_offset(), old_end + backend.bytes().len() as u64);
        // A follower acked before compaction gets the re-based image.
        let ShipSource::Rebased { base, image } = journal.read_from(old_end - 1).unwrap() else {
            panic!("pre-compaction offset must rebase");
        };
        assert_eq!(base, old_end);
        assert_eq!(image, backend.bytes());
        // Appends after compaction extend the re-based stream.
        journal.append_record(&zone_record(99)).unwrap();
        let ShipSource::Tail(tail) = journal.read_from(base + image.len() as u64).unwrap() else {
            panic!("post-compaction offset must ship a tail");
        };
        assert_eq!(tail.len(), backend.bytes().len() - image.len());
    }

    #[test]
    fn failed_append_never_advances_the_durable_end() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        journal.append_record(&zone_record(1)).unwrap();
        let end = journal.end_offset();
        backend.tear_next_append(5);
        assert!(journal.append_record(&zone_record(2)).is_err());
        assert_eq!(journal.end_offset(), end, "torn append must not advance");
        // read_from must not ship the torn physical tail.
        let ShipSource::Tail(tail) = journal.read_from(0).unwrap() else {
            panic!("tail expected");
        };
        assert_eq!(tail.len() as u64, end);
        parse_image(&tail).expect("shipped bytes are a clean image");
    }

    #[test]
    fn oversized_record_is_rejected_before_any_byte_lands() {
        let backend = Arc::new(MemBackend::new());
        let (journal, _, _) = Journal::open(backend.clone()).unwrap();
        let len = backend.bytes().len();
        let huge = Record::Snapshot(vec![0u8; MAX_RECORD_LEN + 1]);
        assert!(matches!(
            journal.append_record(&huge),
            Err(JournalError::Malformed(_))
        ));
        assert_eq!(backend.bytes().len(), len, "nothing may be written");
    }

    #[test]
    fn header_only_torn_image_resets_to_fresh() {
        // A crash while writing the 5-byte header itself.
        let torn = Arc::new(MemBackend::with_bytes(vec![0x41, 0x4C]));
        let (journal, records, report) = Journal::open(torn).unwrap();
        assert!(records.is_empty());
        assert!(report.torn_tail);
        journal.append_record(&zone_record(1)).unwrap();
    }
}
