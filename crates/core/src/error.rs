//! Protocol-level error type.

use std::error::Error;
use std::fmt;

use crate::{DroneId, ZoneId};

/// Errors produced by protocol operations (registration, queries,
/// submission plumbing). Verification *verdicts* — a PoA being judged
/// non-compliant — are not errors; see
/// [`Verdict`](crate::Verdict).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The drone id is not registered with the auditor.
    UnknownDrone(DroneId),
    /// The zone id is not registered with the auditor.
    UnknownZone(ZoneId),
    /// A zone-query signature did not verify under the drone's `D⁺`.
    QuerySignatureInvalid,
    /// The nonce in a zone query was already used (replayed query).
    NonceReplayed,
    /// The underlying TEE returned an error.
    Tee(alidrone_tee::TeeError),
    /// A cryptographic operation failed.
    Crypto(alidrone_crypto::CryptoError),
    /// Geometry/validation failure.
    Geo(alidrone_geo::GeoError),
    /// Malformed message or payload.
    Malformed(&'static str),
    /// A transport-level failure: the request or response was lost in
    /// flight (connection reset, broken pipe, injected fault). Retryable
    /// for idempotent request kinds — see
    /// [`Request::is_idempotent`](crate::wire::Request::is_idempotent).
    Transport(String),
    /// A per-call deadline or socket timeout elapsed before a response
    /// arrived. Retryable like [`ProtocolError::Transport`].
    Timeout,
    /// A requested stored PoA does not exist.
    PoaNotFound,
    /// An accusation referenced a time not covered by the stored PoA.
    TimeNotCovered,
    /// Privacy extension: a revealed key does not decrypt its sample.
    RevealInvalid,
    /// Durable-storage failure: the auditor's write-ahead journal could
    /// not be read or written (I/O error, disk full, or detected
    /// corruption). Not retryable — storage faults need operator action.
    Storage(String),
    /// A shared-state lock was poisoned by a panicking handler thread.
    /// Surfaced instead of propagating the panic so clients see a typed
    /// error, never a torn response.
    LockPoisoned(&'static str),
    /// The server shed the request before executing it — admission queue
    /// full or the source drone exceeded its token-bucket rate. The
    /// request was **not** processed; the client may retry after the
    /// hinted delay (any request kind: shedding happens before any
    /// state change, so a shed request is never partially applied).
    Overloaded {
        /// Server's hint for how long to back off before retrying.
        retry_after_ms: u64,
    },
    /// The client-side circuit breaker is open: recent calls failed or
    /// were shed, so the client fails fast without touching the wire.
    /// Retry after the breaker's open interval elapses.
    CircuitOpen,
    /// The tamper-evident audit chain diverged from the journaled
    /// history: a Merkle checkpoint's recorded root does not match the
    /// root recomputed from the records preceding it (see
    /// [`crate::audit`]). Not retryable — the history was tampered with
    /// or forked, and the holder refuses to serve or extend it.
    AuditDivergence {
        /// Audit tree size (entry count) at which the mismatch was
        /// detected.
        size: u64,
    },
}

impl ProtocolError {
    /// `true` for transport-level losses ([`ProtocolError::Transport`]
    /// and [`ProtocolError::Timeout`]) — the failures a client may
    /// answer by resending, provided the request kind is idempotent.
    pub fn is_transport(&self) -> bool {
        matches!(self, ProtocolError::Transport(_) | ProtocolError::Timeout)
    }

    /// `true` when the failure is safe to answer by resending *any*
    /// request kind: the server shed the request before execution
    /// ([`ProtocolError::Overloaded`]) or the client never sent it
    /// ([`ProtocolError::CircuitOpen`]). Unlike
    /// [`is_transport`](Self::is_transport), these carry no
    /// "response lost after execution" ambiguity, so even
    /// non-idempotent requests may retry.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ProtocolError::Overloaded { .. } | ProtocolError::CircuitOpen
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownDrone(id) => write!(f, "unknown drone {id}"),
            ProtocolError::UnknownZone(id) => write!(f, "unknown zone {id}"),
            ProtocolError::QuerySignatureInvalid => write!(f, "zone query signature invalid"),
            ProtocolError::NonceReplayed => write!(f, "zone query nonce replayed"),
            ProtocolError::Tee(e) => write!(f, "tee error: {e}"),
            ProtocolError::Crypto(e) => write!(f, "crypto error: {e}"),
            ProtocolError::Geo(e) => write!(f, "geometry error: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtocolError::Transport(what) => write!(f, "transport failure: {what}"),
            ProtocolError::Timeout => write!(f, "deadline exceeded waiting for response"),
            ProtocolError::PoaNotFound => write!(f, "no stored proof-of-alibi found"),
            ProtocolError::TimeNotCovered => {
                write!(f, "accused time not covered by the stored proof-of-alibi")
            }
            ProtocolError::RevealInvalid => write!(f, "revealed key does not open the sample"),
            ProtocolError::Storage(what) => write!(f, "storage failure: {what}"),
            ProtocolError::LockPoisoned(which) => {
                write!(f, "internal lock poisoned: {which}")
            }
            ProtocolError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded, retry after {retry_after_ms}ms")
            }
            ProtocolError::CircuitOpen => {
                write!(f, "circuit breaker open, failing fast")
            }
            ProtocolError::AuditDivergence { size } => {
                write!(f, "audit chain divergence at tree size {size}")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Tee(e) => Some(e),
            ProtocolError::Crypto(e) => Some(e),
            ProtocolError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alidrone_tee::TeeError> for ProtocolError {
    fn from(e: alidrone_tee::TeeError) -> Self {
        ProtocolError::Tee(e)
    }
}

impl From<alidrone_crypto::CryptoError> for ProtocolError {
    fn from(e: alidrone_crypto::CryptoError) -> Self {
        ProtocolError::Crypto(e)
    }
}

impl From<alidrone_geo::GeoError> for ProtocolError {
    fn from(e: alidrone_geo::GeoError) -> Self {
        ProtocolError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProtocolError::Tee(alidrone_tee::TeeError::NoData);
        assert!(e.to_string().contains("no data"));
        assert!(e.source().is_some());
        assert!(ProtocolError::NonceReplayed.source().is_none());
    }

    #[test]
    fn conversions() {
        let _: ProtocolError = alidrone_tee::TeeError::NoData.into();
        let _: ProtocolError = alidrone_crypto::CryptoError::DecryptionFailed.into();
        let _: ProtocolError = alidrone_geo::GeoError::InvalidLatitude(99.0).into();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
