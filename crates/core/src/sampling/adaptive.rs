//! The adaptive sampling algorithm (paper §IV-C3, Algorithm 1).
//!
//! Let `S₁` be the last sample recorded in the PoA and `S₂` the latest
//! measurement, with `D₁`, `D₂` their distances to the boundary of the
//! nearest no-fly zone. With GPS update rate `R`, Algorithm 1 records
//! `S₂` when
//!
//! ```text
//! t₂ − t₁  ≤  (D₁ + D₂) / v_max  ≤  t₂ − t₁ + 2/R        (eq. 2 ∧ 3)
//! ```
//!
//! i.e. the pair is *still* sufficient now (eq. 2) but would *not* be
//! after one more skipped update (eq. 3).
//!
//! **Recovery deviation.** As printed, Algorithm 1 never samples again
//! once eq. 2 has failed (e.g. after a GPS dropout): the left inequality
//! stays false while the drone remains near the zone, so the PoA gap
//! grows forever. The paper's own field study shows the prototype
//! recovering — adaptive sampling records exactly one insufficient pair
//! at the dropout, not a truncated trace (§VI-A3). We therefore sample
//! whenever the *right* inequality holds (`D₁+D₂ ≤ v_max(t₂−t₁+2/R)`),
//! which equals Algorithm 1 when eq. 2 holds and recovers immediately
//! (accepting the one already-insufficient pair) when it does not.

use std::sync::Arc;

use alidrone_geo::{GpsSample, Speed, ZoneSet, FAA_MAX_SPEED};
use alidrone_gps::GpsFix;
use alidrone_obs::{Counter, Level, Obs};

use super::{Decision, SamplingPolicy};

/// The paper's adaptive sampler.
#[derive(Debug, Clone)]
pub struct AdaptiveSampler {
    zones: ZoneSet,
    v_max: Speed,
    hw_rate_hz: f64,
    last_recorded: Option<GpsSample>,
    strict: bool,
    pairwise: bool,
    obs: Obs,
    samples: Arc<Counter>,
    skips: Arc<Counter>,
}

impl AdaptiveSampler {
    /// Creates an adaptive sampler for the given zone set, the FAA
    /// `v_max`, and the receiver's hardware update rate `R`.
    pub fn new(zones: ZoneSet, hw_rate_hz: f64) -> Self {
        Self::with_v_max(zones, hw_rate_hz, FAA_MAX_SPEED)
    }

    /// As [`new`](Self::new) with an explicit speed bound.
    pub fn with_v_max(zones: ZoneSet, hw_rate_hz: f64, v_max: Speed) -> Self {
        let obs = Obs::noop();
        let samples = obs.counter("sampler.decisions.sample");
        let skips = obs.counter("sampler.decisions.skip");
        AdaptiveSampler {
            zones,
            v_max,
            hw_rate_hz: hw_rate_hz.max(0.1),
            last_recorded: None,
            strict: false,
            pairwise: false,
            obs,
            samples,
            skips,
        }
    }

    /// Routes decision counters and rate-change events (with the
    /// Algorithm 1 distance terms `D₁`, `D₂` as fields) into `obs`.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self.samples = obs.counter("sampler.decisions.sample");
        self.skips = obs.counter("sampler.decisions.skip");
        self
    }

    /// A variant that evaluates the trigger against **every** zone (the
    /// minimum of `D₁+D₂` over the zone set) instead of only the zone
    /// nearest to the current fix.
    ///
    /// The paper argues the nearest zone suffices ("a PoA proving alibi
    /// to the nearest NFZ is also sufficient for the other NFZs",
    /// §IV-C3) — which holds pointwise per sample, but **not per pair**:
    /// at a sharp turn between two zones, the zone nearest to `S₂` can
    /// differ from the zone minimising `D₁+D₂`, and the nearest-zone
    /// trigger fires too late, leaving one insufficient pair at the
    /// corner. This reproduction discovered the case empirically (see
    /// EXPERIMENTS.md); the pairwise variant closes it at the same
    /// O(|Z|) per-update cost.
    pub fn pairwise_safe(zones: ZoneSet, hw_rate_hz: f64) -> Self {
        AdaptiveSampler {
            pairwise: true,
            ..Self::new(zones, hw_rate_hz)
        }
    }

    /// The *literal* Algorithm 1: requires eq. 2 **and** eq. 3 — no
    /// recovery once a pair has already gone insufficient. Exists for the
    /// ablation study showing why the prototype cannot have behaved this
    /// way (one dropout near a zone stalls sampling permanently).
    pub fn strict_paper(zones: ZoneSet, hw_rate_hz: f64) -> Self {
        AdaptiveSampler {
            strict: true,
            ..Self::new(zones, hw_rate_hz)
        }
    }

    /// The last PoA sample this policy knows about.
    pub fn last_recorded(&self) -> Option<&GpsSample> {
        self.last_recorded.as_ref()
    }
}

impl SamplingPolicy for AdaptiveSampler {
    fn decide(&mut self, fix: &GpsFix) -> Decision {
        // The very first sample anchors the PoA.
        let Some(last) = self.last_recorded else {
            self.samples.inc();
            self.obs
                .emit(Level::Info, "sampler.adaptive", "anchor_sample", |f| {
                    f.field("t", fix.sample.time().secs());
                });
            return Decision::Sample;
        };
        let dt = fix.sample.time().since(last.time());
        if dt.secs() <= 0.0 {
            // Stale measurement (dropout repeating the old fix).
            self.skips.inc();
            return Decision::Skip;
        }
        if self.zones.is_empty() {
            // No zones: nothing to prove, skip (the flight driver still
            // records takeoff/landing anchors).
            self.skips.inc();
            return Decision::Skip;
        }
        let (d1, d2) = if self.pairwise {
            // Tightest zone across the *pair*: min over zones of D1+D2.
            self.zones
                .iter()
                .map(|z| {
                    (
                        z.boundary_distance(&last.point()).meters(),
                        z.boundary_distance(&fix.sample.point()).meters(),
                    )
                })
                .min_by(|a, b| (a.0 + a.1).total_cmp(&(b.0 + b.1)))
                .expect("non-empty zones")
        } else {
            // Only the nearest zone matters (paper §IV-C3, Algorithm 1).
            let zone = self.zones.nearest(&fix.sample.point()).expect("non-empty");
            (
                zone.boundary_distance(&last.point()).meters(),
                zone.boundary_distance(&fix.sample.point()).meters(),
            )
        };
        let budget_now = self.v_max.mps() * dt.secs();
        let budget_next = self.v_max.mps() * (dt.secs() + 2.0 / self.hw_rate_hz);
        if self.strict && d1 + d2 < budget_now {
            // Literal Algorithm 1: eq. 2 already failed; never sample.
            self.skips.inc();
            return Decision::Skip;
        }
        if d1 + d2 <= budget_next {
            // The effective sampling rate steps up here: the trigger
            // fired because the distance budget is nearly exhausted.
            self.samples.inc();
            self.obs
                .emit(Level::Info, "sampler.adaptive", "rate_change", |f| {
                    f.field("d1_m", d1)
                        .field("d2_m", d2)
                        .field("dt_s", dt.secs())
                        .field("budget_m", budget_next);
                });
            Decision::Sample
        } else {
            self.skips.inc();
            Decision::Skip
        }
    }

    fn on_recorded(&mut self, sample: &GpsSample) {
        self.last_recorded = Some(*sample);
    }

    fn name(&self) -> String {
        match (self.strict, self.pairwise) {
            (true, _) => "adaptive-strict".to_string(),
            (_, true) => "adaptive-pairwise".to_string(),
            _ => "adaptive".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::{Distance, GeoPoint, NoFlyZone, Timestamp};
    use alidrone_gps::GpsFix;

    fn origin() -> GeoPoint {
        GeoPoint::new(40.1, -88.2).unwrap()
    }

    fn fix_at(dist_east_m: f64, t: f64) -> GpsFix {
        GpsFix {
            sample: GpsSample::new(
                origin().destination(90.0, Distance::from_meters(dist_east_m)),
                Timestamp::from_secs(t),
            ),
            speed: Speed::from_mps(10.0),
            sequence: (t * 5.0) as u64,
        }
    }

    fn zone_north(dist_m: f64, radius_m: f64) -> ZoneSet {
        std::iter::once(NoFlyZone::new(
            origin().destination(0.0, Distance::from_meters(dist_m)),
            Distance::from_meters(radius_m),
        ))
        .collect()
    }

    #[test]
    fn first_update_always_sampled() {
        let mut s = AdaptiveSampler::new(ZoneSet::new(), 5.0);
        assert_eq!(s.decide(&fix_at(0.0, 0.0)), Decision::Sample);
    }

    #[test]
    fn far_zone_skips() {
        // Zone 10 km away: pairs stay sufficient for a long time.
        let mut s = AdaptiveSampler::new(zone_north(10_000.0, 50.0), 5.0);
        s.on_recorded(&fix_at(0.0, 0.0).sample);
        for k in 1..50 {
            let d = s.decide(&fix_at(2.0 * k as f64, 0.2 * k as f64));
            assert_eq!(d, Decision::Skip, "update {k}");
        }
    }

    #[test]
    fn samples_just_before_insufficiency() {
        // Zone boundary 500 m away; D1+D2 ≈ 1000 m; at v_max 44.7 m/s the
        // budget reaches 1000 m at dt ≈ 22.4 s; with R = 5 Hz the trigger
        // window starts at dt ≈ 22.4 − 0.4 s.
        let zones = zone_north(600.0, 100.0);
        let mut s = AdaptiveSampler::new(zones, 5.0);
        s.on_recorded(&fix_at(0.0, 0.0).sample);
        // Drone hovers at the same spot (D constant).
        assert_eq!(s.decide(&fix_at(0.0, 21.6)), Decision::Skip);
        assert_eq!(s.decide(&fix_at(0.0, 22.0)), Decision::Sample);
    }

    #[test]
    fn recovers_after_dropout() {
        // After a long dropout the pair is already insufficient; the
        // sampler must sample immediately rather than deadlock.
        let zones = zone_north(600.0, 100.0);
        let mut s = AdaptiveSampler::new(zones, 5.0);
        s.on_recorded(&fix_at(0.0, 0.0).sample);
        assert_eq!(s.decide(&fix_at(0.0, 60.0)), Decision::Sample);
    }

    #[test]
    fn stale_fix_skipped() {
        let zones = zone_north(100.0, 50.0);
        let mut s = AdaptiveSampler::new(zones, 5.0);
        let f = fix_at(0.0, 1.0);
        s.on_recorded(&f.sample);
        // Same timestamp (receiver dropped the update): skip.
        assert_eq!(s.decide(&f), Decision::Skip);
    }

    #[test]
    fn no_zones_never_samples_after_first() {
        let mut s = AdaptiveSampler::new(ZoneSet::new(), 5.0);
        assert_eq!(s.decide(&fix_at(0.0, 0.0)), Decision::Sample);
        s.on_recorded(&fix_at(0.0, 0.0).sample);
        assert_eq!(s.decide(&fix_at(10.0, 1.0)), Decision::Skip);
        assert_eq!(s.decide(&fix_at(1_000.0, 100.0)), Decision::Skip);
    }

    #[test]
    fn closer_zone_drives_rate_up() {
        // Two zones; when the drone nears the small one, sampling must
        // trigger on its distance, not the far one's.
        let near = NoFlyZone::new(
            origin().destination(0.0, Distance::from_meters(60.0)),
            Distance::from_meters(10.0),
        );
        let far = NoFlyZone::new(
            origin().destination(0.0, Distance::from_km(50.0)),
            Distance::from_meters(10.0),
        );
        let zones: ZoneSet = [far, near].into_iter().collect();
        let mut s = AdaptiveSampler::new(zones, 5.0);
        s.on_recorded(&fix_at(0.0, 0.0).sample);
        // D1 = D2 = 50 m ⇒ trigger when 100 ≤ 44.7·(dt+0.4):
        // dt ≥ 1.84 s.
        assert_eq!(s.decide(&fix_at(0.0, 1.6)), Decision::Skip);
        assert_eq!(s.decide(&fix_at(0.0, 2.0)), Decision::Sample);
    }

    #[test]
    fn pairwise_variant_matches_nearest_for_single_zone() {
        // With one zone the nearest-zone and pairwise rules coincide.
        let zones = zone_north(600.0, 100.0);
        for dt in [5.0, 15.0, 21.0, 22.0, 30.0] {
            let mut near = AdaptiveSampler::new(zones.clone(), 5.0);
            let mut pair = AdaptiveSampler::pairwise_safe(zones.clone(), 5.0);
            near.on_recorded(&fix_at(0.0, 0.0).sample);
            pair.on_recorded(&fix_at(0.0, 0.0).sample);
            let f = fix_at(0.0, dt);
            assert_eq!(near.decide(&f), pair.decide(&f), "dt={dt}");
        }
    }

    #[test]
    fn rate_change_events_carry_distances() {
        use alidrone_obs::RingBuffer;
        use std::sync::Arc;

        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(16));
        obs.set_subscriber(ring.clone());
        // Hovering 500 m from the boundary: skip at 21.6 s, sample at
        // 22.0 s (see samples_just_before_insufficiency).
        let mut s = AdaptiveSampler::new(zone_north(600.0, 100.0), 5.0).with_obs(&obs);
        s.on_recorded(&fix_at(0.0, 0.0).sample);
        assert_eq!(s.decide(&fix_at(0.0, 21.6)), Decision::Skip);
        assert_eq!(s.decide(&fix_at(0.0, 22.0)), Decision::Sample);

        let snap = obs.snapshot();
        assert_eq!(snap.counter("sampler.decisions.sample"), 1);
        assert_eq!(snap.counter("sampler.decisions.skip"), 1);
        let events = ring.events();
        let ev = events
            .iter()
            .find(|e| e.message == "rate_change")
            .expect("rate_change event");
        let d1 = ev.field("d1_m").unwrap().as_f64().unwrap();
        let d2 = ev.field("d2_m").unwrap().as_f64().unwrap();
        assert!((d1 - 500.0).abs() < 1.0, "d1 {d1}");
        assert!((d2 - 500.0).abs() < 1.0, "d2 {d2}");
        assert_eq!(ev.field("dt_s").unwrap().as_f64(), Some(22.0));
    }

    #[test]
    fn policy_names_distinguish_variants() {
        let z = zone_north(100.0, 10.0);
        assert_eq!(AdaptiveSampler::new(z.clone(), 5.0).name(), "adaptive");
        assert_eq!(
            AdaptiveSampler::pairwise_safe(z.clone(), 5.0).name(),
            "adaptive-pairwise"
        );
        assert_eq!(
            AdaptiveSampler::strict_paper(z, 5.0).name(),
            "adaptive-strict"
        );
    }

    #[test]
    fn strict_variant_deadlocks_after_dropout() {
        // The literal Algorithm 1: once the pair is already insufficient
        // (dropout pushed dt past the window), it never samples again
        // while the drone stays near the zone — the recovery ablation.
        let zones = zone_north(600.0, 100.0);
        let mut strict = AdaptiveSampler::strict_paper(zones.clone(), 5.0);
        let mut recovering = AdaptiveSampler::new(zones, 5.0);
        for s in [&mut strict, &mut recovering] {
            s.on_recorded(&fix_at(0.0, 0.0).sample);
        }
        // Window for D=500 m each side ends at dt ≈ 22.4 s; at 60 s the
        // pair is long insufficient.
        assert_eq!(strict.decide(&fix_at(0.0, 60.0)), Decision::Skip);
        assert_eq!(strict.decide(&fix_at(0.0, 120.0)), Decision::Skip);
        assert_eq!(recovering.decide(&fix_at(0.0, 60.0)), Decision::Sample);
    }

    #[test]
    fn strict_and_recovering_agree_inside_window() {
        let zones = zone_north(600.0, 100.0);
        for dt in [5.0, 15.0, 21.0, 22.0] {
            let mut strict = AdaptiveSampler::strict_paper(zones.clone(), 5.0);
            let mut rec = AdaptiveSampler::new(zones.clone(), 5.0);
            strict.on_recorded(&fix_at(0.0, 0.0).sample);
            rec.on_recorded(&fix_at(0.0, 0.0).sample);
            let f = fix_at(0.0, dt);
            assert_eq!(strict.decide(&f), rec.decide(&f), "dt={dt}");
        }
    }

    #[test]
    fn paper_window_semantics_hold() {
        // When eq. 2 holds, our rule must agree exactly with Algorithm 1:
        // sample iff (D1+D2)/vmax ≤ dt + 2/R.
        let zones = zone_north(600.0, 100.0);
        let v = FAA_MAX_SPEED.mps();
        for dt in [5.0, 10.0, 15.0, 20.0, 21.0, 22.0, 22.3] {
            let mut s = AdaptiveSampler::new(zones.clone(), 5.0);
            s.on_recorded(&fix_at(0.0, 0.0).sample);
            let d_sum = 2.0 * 500.0; // hovering at 500 m from boundary
            let alg1 = dt <= d_sum / v && d_sum / v <= dt + 0.4;
            let ours = s.decide(&fix_at(0.0, dt)) == Decision::Sample;
            if d_sum / v >= dt {
                assert_eq!(alg1, ours, "dt={dt}");
            }
        }
    }
}
