//! Sampling policies: when does the Adapter call `GetGPSAuth`?
//!
//! The Adapter daemon polls the GPS receiver in the normal world at the
//! hardware update rate and decides, per update, whether to pay for an
//! authenticated sample (two world switches + an RSA signature). The
//! paper contributes the *adaptive* policy (Algorithm 1) and evaluates it
//! against the fixed-rate baseline of §VI-A1; both live here as pure
//! decision objects so they can be unit-tested without a TEE, then driven
//! against one by [`run_flight`](crate::run_flight).

mod adaptive;
mod fixed;

pub use adaptive::AdaptiveSampler;
pub use fixed::FixedRateSampler;

use alidrone_geo::GpsSample;
use alidrone_gps::GpsFix;

/// A sampler's decision at one hardware update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Call `GetGPSAuth` and record the sample in the PoA.
    Sample,
    /// Skip this update (sleep until the next one).
    Skip,
}

/// A sampling policy, consulted once per hardware GPS update.
pub trait SamplingPolicy {
    /// Decides whether to record an authenticated sample given the
    /// normal-world view of the current fix.
    fn decide(&mut self, fix: &GpsFix) -> Decision;

    /// Notifies the policy that a sample was actually recorded (with the
    /// TEE-confirmed position/time, which is what future sufficiency
    /// windows are measured from).
    fn on_recorded(&mut self, sample: &GpsSample);

    /// Short policy name for reports.
    fn name(&self) -> String;
}
