//! The fixed-rate baseline (paper §VI-A1).
//!
//! "Every time after a GPS data is sampled, the sampling thread will
//! sleep for a period according to the sampling rate. Since the GPS
//! hardware has an independent rate for updating the measurements, the
//! sampler cannot always get the most updated GPS data immediately after
//! it wakes up. Therefore, we let the sampler wait until the first
//! measurement update for each time after it wakes up."
//!
//! Example from the paper: hardware at 5 Hz (updates at 0.0, 0.2, 0.4,
//! 0.6, 0.8 s), sampler at 3 Hz (wakes at 0.0, 0.33, 0.67 s) ⇒ samples
//! land at 0.0, 0.4, 0.8 s — the actual rate is *at most* the configured
//! rate.

use alidrone_geo::GpsSample;
use alidrone_gps::GpsFix;

use super::{Decision, SamplingPolicy};

/// Fixed-rate sampling with wait-for-update semantics.
#[derive(Debug, Clone)]
pub struct FixedRateSampler {
    rate_hz: f64,
    /// Absolute wake deadline; `None` until the first sample anchors it.
    next_wake_secs: Option<f64>,
    /// Timestamp of the last measurement we actually sampled, so a
    /// repeated (dropped-update) fix is not recorded twice.
    last_sampled_secs: Option<f64>,
}

impl FixedRateSampler {
    /// Creates a sampler at `rate_hz` (positive).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn new(rate_hz: f64) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "sampling rate must be positive, got {rate_hz}"
        );
        FixedRateSampler {
            rate_hz,
            next_wake_secs: None,
            last_sampled_secs: None,
        }
    }

    /// The configured rate.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }
}

impl SamplingPolicy for FixedRateSampler {
    fn decide(&mut self, fix: &GpsFix) -> Decision {
        let t = fix.sample.time().secs();
        // Never re-record the same measurement (dropout repeats a fix).
        if self.last_sampled_secs.is_some_and(|last| t <= last) {
            return Decision::Skip;
        }
        match self.next_wake_secs {
            None => Decision::Sample, // first update: sample immediately
            // The 1 µs tolerance absorbs float accumulation when the
            // sampler period is an exact multiple of the update period
            // (0.4 + 0.2 > 3/5 in f64).
            Some(wake) if t >= wake - 1e-6 => Decision::Sample,
            Some(_) => Decision::Skip,
        }
    }

    fn on_recorded(&mut self, sample: &GpsSample) {
        let t = sample.time().secs();
        self.last_sampled_secs = Some(t);
        // Sleep one period from the moment the sample was taken.
        self.next_wake_secs = Some(t + 1.0 / self.rate_hz);
    }

    fn name(&self) -> String {
        format!("fixed-{}hz", self.rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::{GeoPoint, Speed, Timestamp};

    fn fix_at(t: f64) -> GpsFix {
        GpsFix {
            sample: GpsSample::new(GeoPoint::new(40.0, -88.0).unwrap(), Timestamp::from_secs(t)),
            speed: Speed::from_mps(0.0),
            sequence: (t * 5.0).round() as u64,
        }
    }

    /// Runs the policy over hardware updates at `hw_rate` for `secs` and
    /// returns the recorded sample times.
    fn simulate(rate: f64, hw_rate: f64, secs: f64) -> Vec<f64> {
        let mut s = FixedRateSampler::new(rate);
        let mut out = Vec::new();
        let n = (secs * hw_rate) as usize;
        for k in 0..=n {
            let t = k as f64 / hw_rate;
            let f = fix_at(t);
            if s.decide(&f) == Decision::Sample {
                s.on_recorded(&f.sample);
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn paper_example_3hz_on_5hz_hardware() {
        let times = simulate(3.0, 5.0, 0.9);
        // Paper: wakes at 0, 1/3, 2/3 ⇒ samples at 0.0, 0.4, 0.8.
        assert_eq!(times, vec![0.0, 0.4, 0.8]);
    }

    #[test]
    fn rate_equal_to_hardware_takes_every_update() {
        let times = simulate(5.0, 5.0, 1.0);
        assert_eq!(times.len(), 6); // t = 0.0 .. 1.0 inclusive
    }

    #[test]
    fn one_hz_on_5hz_hardware() {
        let times = simulate(1.0, 5.0, 3.0);
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_hz_on_5hz_hardware_degrades_gracefully() {
        // 2 Hz wants 0.5 s periods; hardware grid is 0.2 s ⇒ samples at
        // 0.0, 0.6, 1.2, 1.8 … (wait for first update after wake).
        let times = simulate(2.0, 5.0, 2.0);
        assert_eq!(times, vec![0.0, 0.6, 1.2, 1.8]);
    }

    #[test]
    fn actual_rate_never_exceeds_configured() {
        for rate in [1.0, 2.0, 3.0, 5.0] {
            let times = simulate(rate, 5.0, 30.0);
            let actual = (times.len() - 1) as f64 / 30.0;
            assert!(
                actual <= rate + 1e-9,
                "configured {rate} Hz, actual {actual} Hz"
            );
        }
    }

    #[test]
    fn repeated_fix_not_sampled_twice() {
        let mut s = FixedRateSampler::new(5.0);
        let f = fix_at(1.0);
        assert_eq!(s.decide(&f), Decision::Sample);
        s.on_recorded(&f.sample);
        // The receiver repeats the same measurement (dropout).
        assert_eq!(s.decide(&f), Decision::Skip);
        // A genuinely new one (past the wake deadline) is taken.
        let f2 = fix_at(1.4);
        assert_eq!(s.decide(&f2), Decision::Sample);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be positive")]
    fn zero_rate_panics() {
        FixedRateSampler::new(0.0);
    }

    #[test]
    fn name_includes_rate() {
        assert_eq!(FixedRateSampler::new(2.0).name(), "fixed-2hz");
    }
}
