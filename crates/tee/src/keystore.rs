//! The secure-world key store.
//!
//! Holds the TEE sign keypair `T = (T⁺, T⁻)` that is "generated at
//! manufacturing time" and whose private half "is only accessible by
//! TEE" (paper §IV-B step 0). The type is `pub(crate)`: nothing outside
//! this crate can reach the private key, and the crate's public surface
//! only ever returns signatures and the public key.

use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey, RsaPublicKey, RsaVerifier};
use alidrone_crypto::CryptoError;

/// The in-enclave key store. Not exported from the crate.
pub(crate) struct KeyStore {
    sign_key: RsaPrivateKey,
    hash_alg: HashAlg,
    /// The prepared public half `T⁺`, built once at installation so
    /// export and self-checks never re-derive it from the private key.
    verifier: RsaVerifier,
}

impl KeyStore {
    /// Installs the manufacturing-time sign key, preparing the public
    /// half once.
    pub(crate) fn new(sign_key: RsaPrivateKey, hash_alg: HashAlg) -> Self {
        let verifier = sign_key.public_key().verifier();
        KeyStore {
            sign_key,
            hash_alg,
            verifier,
        }
    }

    /// The verification key `T⁺`, exportable to the normal world.
    pub(crate) fn public_key(&self) -> RsaPublicKey {
        self.verifier.public_key().clone()
    }

    /// The prepared `T⁺` verifier handle (borrow, no re-derivation).
    pub(crate) fn verifier(&self) -> &RsaVerifier {
        &self.verifier
    }

    /// Key size in bits (drives the cost model).
    pub(crate) fn key_bits(&self) -> usize {
        self.sign_key.bits()
    }

    /// Signs `data` with `T⁻`. Only callable from inside the secure
    /// world.
    pub(crate) fn sign(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.sign_key.sign(data, self.hash_alg)
    }
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately omits key material.
        f.debug_struct("KeyStore")
            .field("key_bits", &self.key_bits())
            .field("hash_alg", &self.hash_alg)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_crypto::rng::XorShift64;

    #[test]
    fn signs_and_public_verifies() {
        let mut rng = XorShift64::seed_from_u64(21);
        let ks = KeyStore::new(RsaPrivateKey::generate(512, &mut rng), HashAlg::Sha1);
        let sig = ks.sign(b"payload").unwrap();
        ks.public_key()
            .verify(b"payload", &sig, HashAlg::Sha1)
            .unwrap();
        assert_eq!(ks.key_bits(), 512);
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let mut rng = XorShift64::seed_from_u64(22);
        let key = RsaPrivateKey::generate(512, &mut rng);
        let modulus_hex = key.public_key().modulus().to_hex();
        let ks = KeyStore::new(key, HashAlg::Sha1);
        let dbg = format!("{ks:?}");
        assert!(!dbg.contains(&modulus_hex));
        assert!(dbg.contains("key_bits"));
    }
}
