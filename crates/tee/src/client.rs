//! The normal-world client API (the GlobalPlatform TEE Client API of
//! Fig. 1, as seen by the Adapter daemon).

use std::fmt;

use alidrone_crypto::rsa::{RsaPublicKey, RsaVerifier};
use alidrone_geo::GpsSample;

use crate::world::Param;
use crate::{
    CostLedger, SecureWorld, SignedSample, TeeError, Uuid, CMD_GET_GPS_AUTH, CMD_READ_GPS_RAW,
};

/// A normal-world handle to the TEE. All it can do is open sessions to
/// trusted applications and read public metadata — private key material
/// never crosses this boundary.
#[derive(Clone)]
pub struct TeeClient {
    world: SecureWorld,
}

impl TeeClient {
    pub(crate) fn new(world: SecureWorld) -> Self {
        TeeClient { world }
    }

    /// Opens a session to the trusted application `uuid`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] when no TA with that UUID is
    /// installed (tee-supplicant could not locate it).
    pub fn open_session(&self, uuid: Uuid) -> Result<TeeSession, TeeError> {
        if !self.world.has_ta(uuid) {
            return Err(TeeError::ItemNotFound);
        }
        Ok(TeeSession {
            world: self.world.clone(),
            uuid,
        })
    }

    /// The TEE verification key `T⁺`, which the drone operator submits
    /// to the auditor at registration (paper §IV-B step 0).
    pub fn tee_public_key(&self) -> RsaPublicKey {
        self.world.inner.public_key()
    }

    /// The prepared `T⁺` verifier. Call sites that check many signatures
    /// under this key should hold this handle instead of re-preparing the
    /// public key per check.
    pub fn tee_verifier(&self) -> RsaVerifier {
        self.world.inner.verifier().clone()
    }

    /// The cost ledger for this TEE instance.
    pub fn cost_ledger(&self) -> CostLedger {
        self.world.ledger()
    }
}

impl fmt::Debug for TeeClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeClient").finish_non_exhaustive()
    }
}

/// An open session to a trusted application.
#[derive(Clone)]
pub struct TeeSession {
    world: SecureWorld,
    uuid: Uuid,
}

impl TeeSession {
    /// The UUID of the TA this session talks to.
    pub fn uuid(&self) -> Uuid {
        self.uuid
    }

    /// Raw command invocation (crosses the modelled world boundary and
    /// pays its cost).
    ///
    /// # Errors
    ///
    /// Propagates the TA's `TEE_Result`-style error.
    pub fn invoke(&self, cmd: u32, params: &[Param]) -> Result<Vec<Param>, TeeError> {
        self.world.smc_invoke(self.uuid, cmd, params)
    }

    /// `GetGPSAuth` (paper §IV-C2): ask the GPS Sampler TA for the
    /// current sample signed under `T⁻`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NoData`] when the receiver has no fix, plus
    /// any dispatch errors.
    pub fn get_gps_auth(&self) -> Result<SignedSample, TeeError> {
        let out = self.invoke(CMD_GET_GPS_AUTH, &[])?;
        if out.len() != 2 {
            return Err(TeeError::MalformedData("GetGPSAuth output arity"));
        }
        let sample_bytes: [u8; 24] = out[0]
            .as_bytes()?
            .try_into()
            .map_err(|_| TeeError::MalformedData("sample length"))?;
        let sample = GpsSample::from_bytes(&sample_bytes)
            .map_err(|_| TeeError::MalformedData("sample coordinates"))?;
        Ok(SignedSample::from_parts(
            sample,
            out[1].as_bytes()?.to_vec(),
            self.world.inner.hash_alg(),
        ))
    }

    /// 3-D `GetGPSAuth` (paper §VII-B1): the 4-tuple sample signed under
    /// `T⁻`. Requires the world to have a 3-D GPS device.
    ///
    /// # Errors
    ///
    /// [`TeeError::MissingComponent`] without a 3-D device,
    /// [`TeeError::NoData`] without a fix.
    pub fn get_gps_auth_3d(&self) -> Result<crate::SignedSample3d, TeeError> {
        let out = self.invoke(crate::CMD_GET_GPS_AUTH_3D, &[])?;
        if out.len() != 2 {
            return Err(TeeError::MalformedData("GetGPSAuth3d output arity"));
        }
        let bytes: [u8; 32] = out[0]
            .as_bytes()?
            .try_into()
            .map_err(|_| TeeError::MalformedData("sample3d length"))?;
        let sample = alidrone_geo::three_d::GpsSample3d::from_bytes(&bytes)
            .map_err(|_| TeeError::MalformedData("sample3d fields"))?;
        Ok(crate::SignedSample3d::from_parts(
            sample,
            out[1].as_bytes()?.to_vec(),
            self.world.inner.hash_alg(),
        ))
    }

    /// Batch mode (paper §VII-A1b): sample the GPS into the secure cache
    /// without signing. Returns the number of cached samples.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NoData`] when the receiver has no fix.
    pub fn cache_sample(&self) -> Result<u64, TeeError> {
        let out = self.invoke(crate::CMD_CACHE_SAMPLE, &[])?;
        out.first()
            .ok_or(TeeError::MalformedData("empty output"))?
            .as_value()
    }

    /// Batch mode: sign the whole cached trace with one RSA operation and
    /// clear the cache.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NoData`] when nothing has been cached.
    pub fn sign_trace(&self) -> Result<crate::SignedTrace, TeeError> {
        let out = self.invoke(crate::CMD_SIGN_TRACE, &[])?;
        if out.len() != 2 {
            return Err(TeeError::MalformedData("SignTrace output arity"));
        }
        crate::SignedTrace::from_parts(
            out[0].as_bytes()?.to_vec(),
            out[1].as_bytes()?.to_vec(),
            self.world.inner.hash_alg(),
        )
    }

    /// Degraded mode: ask the TEE to sign a declared GPS-outage window
    /// `[start, end]`. A forged gap only ever weakens the alibi (it is
    /// an admission against interest), so the normal world may initiate
    /// this freely.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] for a non-finite or inverted
    /// window, plus any dispatch errors.
    pub fn sign_gap(
        &self,
        start: alidrone_geo::Timestamp,
        end: alidrone_geo::Timestamp,
    ) -> Result<crate::SignedGapMarker, TeeError> {
        let mut window = Vec::with_capacity(16);
        window.extend_from_slice(&start.secs().to_be_bytes());
        window.extend_from_slice(&end.secs().to_be_bytes());
        let out = self.invoke(crate::CMD_SIGN_GAP, &[Param::Bytes(window)])?;
        if out.len() != 1 {
            return Err(TeeError::MalformedData("SignGap output arity"));
        }
        Ok(crate::SignedGapMarker::from_parts(
            start,
            end,
            out[0].as_bytes()?.to_vec(),
            self.world.inner.hash_alg(),
        ))
    }

    /// Countersigns an auditor audit-log tree head: the enclave attests
    /// it witnessed this (size, root, chain head) triple. `sth_bytes`
    /// must be the exact domain-separated signing encoding produced by
    /// the auditor (`"ALDSTH01" || size || root || chain_head`).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] when the buffer is not a
    /// well-formed tree-head encoding, plus any dispatch errors.
    pub fn sign_checkpoint(&self, sth_bytes: &[u8]) -> Result<Vec<u8>, TeeError> {
        let out = self.invoke(
            crate::CMD_SIGN_CHECKPOINT,
            &[Param::Bytes(sth_bytes.to_vec())],
        )?;
        if out.len() != 1 {
            return Err(TeeError::MalformedData("SignCheckpoint output arity"));
        }
        Ok(out[0].as_bytes()?.to_vec())
    }

    /// Reads the raw (unsigned) sample the secure-world driver sees.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NoData`] when the receiver has no fix.
    pub fn read_gps_raw(&self) -> Result<GpsSample, TeeError> {
        let out = self.invoke(CMD_READ_GPS_RAW, &[])?;
        let bytes: [u8; 24] = out
            .first()
            .ok_or(TeeError::MalformedData("empty output"))?
            .as_bytes()?
            .try_into()
            .map_err(|_| TeeError::MalformedData("sample length"))?;
        GpsSample::from_bytes(&bytes).map_err(|_| TeeError::MalformedData("sample coordinates"))
    }
}

impl fmt::Debug for TeeSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeSession")
            .field("uuid", &self.uuid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_key, TestReceiver};
    use crate::{CostModel, SecureWorldBuilder, GPS_SAMPLER_UUID};

    fn client() -> TeeClient {
        SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_gps_device(Box::new(TestReceiver::fixed(40.1, -88.2, 12.0)))
            .with_cost_model(CostModel::free())
            .build()
            .unwrap()
            .client()
    }

    #[test]
    fn open_session_to_known_ta() {
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        assert_eq!(s.uuid(), GPS_SAMPLER_UUID);
    }

    #[test]
    fn open_session_to_unknown_ta_fails() {
        let c = client();
        assert_eq!(
            c.open_session(Uuid::from_u128(1)).err(),
            Some(TeeError::ItemNotFound)
        );
    }

    #[test]
    fn get_gps_auth_verifies_under_public_key() {
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        let signed = s.get_gps_auth().unwrap();
        signed.verify(&c.tee_public_key()).unwrap();
        assert!((signed.sample().lat_deg() - 40.1).abs() < 1e-4);
        assert!((signed.sample().time().secs() - 12.0).abs() < 0.01);
    }

    #[test]
    fn tampered_sample_fails_verification() {
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        let signed = s.get_gps_auth().unwrap();
        // Move the claimed position: forged alibi.
        let forged_sample = GpsSample::new(
            alidrone_geo::GeoPoint::new(41.0, -88.2).unwrap(),
            signed.sample().time(),
        );
        let forged = SignedSample::from_parts(
            forged_sample,
            signed.signature().to_vec(),
            signed.hash_alg(),
        );
        assert_eq!(
            forged.verify(&c.tee_public_key()),
            Err(TeeError::SignatureInvalid)
        );
    }

    #[test]
    fn sign_checkpoint_signs_only_domain_separated_heads() {
        use alidrone_crypto::rsa::HashAlg;
        let c = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_cost_model(CostModel::free())
            .with_hash_alg(HashAlg::Sha256)
            .build()
            .unwrap()
            .client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();

        let mut sth = Vec::with_capacity(80);
        sth.extend_from_slice(b"ALDSTH01");
        sth.extend_from_slice(&7u64.to_be_bytes());
        sth.extend_from_slice(&[0xAB; 32]);
        sth.extend_from_slice(&[0xCD; 32]);
        let sig = s.sign_checkpoint(&sth).unwrap();
        c.tee_public_key()
            .verify(&sth, &sig, HashAlg::Sha256)
            .unwrap();

        // Wrong prefix: a GPS-sample-shaped buffer must be refused even
        // at the right length.
        let mut bogus = sth.clone();
        bogus[0] = b'X';
        assert!(matches!(
            s.sign_checkpoint(&bogus),
            Err(TeeError::BadParameters(_))
        ));
        // Wrong length refused too.
        assert!(matches!(
            s.sign_checkpoint(&sth[..79]),
            Err(TeeError::BadParameters(_))
        ));
        // Signing a checkpoint is metered like any other signature.
        assert_eq!(c.cost_ledger().snapshot().signatures, 1);
    }

    #[test]
    fn read_gps_raw_matches_signed_position() {
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        let raw = s.read_gps_raw().unwrap();
        let signed = s.get_gps_auth().unwrap();
        assert!(raw.point().distance_to(&signed.sample().point()).meters() < 0.5);
    }

    #[test]
    fn batch_mode_caches_then_signs_once() {
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        assert_eq!(s.cache_sample().unwrap(), 1);
        assert_eq!(s.cache_sample().unwrap(), 2);
        assert_eq!(s.cache_sample().unwrap(), 3);
        // No signatures were produced while caching.
        assert_eq!(c.cost_ledger().snapshot().signatures, 0);
        let trace = s.sign_trace().unwrap();
        assert_eq!(trace.samples().len(), 3);
        trace.verify(&c.tee_public_key()).unwrap();
        assert_eq!(c.cost_ledger().snapshot().signatures, 1);
        // Cache was cleared by signing.
        assert_eq!(s.sign_trace().err(), Some(TeeError::NoData));
    }

    #[test]
    fn tampered_batch_trace_rejected() {
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        s.cache_sample().unwrap();
        s.cache_sample().unwrap();
        let trace = s.sign_trace().unwrap();
        // Rebuild with one sample's bytes altered.
        let mut bytes: Vec<u8> = trace
            .samples()
            .iter()
            .flat_map(|smp| smp.to_bytes())
            .collect();
        bytes[30] ^= 0x01;
        let forged = crate::SignedTrace::from_parts(
            bytes,
            trace.signature().to_vec(),
            alidrone_crypto::rsa::HashAlg::Sha1,
        )
        .unwrap();
        assert_eq!(
            forged.verify(&c.tee_public_key()),
            Err(TeeError::SignatureInvalid)
        );
    }

    #[test]
    fn sign_gap_verifies_and_rejects_inverted_window() {
        use alidrone_geo::Timestamp;
        let c = client();
        let s = c.open_session(GPS_SAMPLER_UUID).unwrap();
        let marker = s
            .sign_gap(Timestamp::from_secs(10.0), Timestamp::from_secs(20.0))
            .unwrap();
        marker.verify(&c.tee_public_key()).unwrap();
        // A tampered window fails verification.
        let forged = crate::SignedGapMarker::from_parts(
            Timestamp::from_secs(10.0),
            Timestamp::from_secs(15.0),
            marker.signature().to_vec(),
            marker.hash_alg(),
        );
        assert_eq!(
            forged.verify(&c.tee_public_key()),
            Err(TeeError::SignatureInvalid)
        );
        // Inverted windows never reach the signer.
        assert!(matches!(
            s.sign_gap(Timestamp::from_secs(20.0), Timestamp::from_secs(10.0)),
            Err(TeeError::BadParameters(_))
        ));
    }

    #[test]
    fn signature_from_wrong_tee_rejected() {
        // Relay attack: a sample signed by drone A presented as drone B's.
        let a = client();
        let mut rng = alidrone_crypto::rng::XorShift64::seed_from_u64(777);
        let other_world = SecureWorldBuilder::new()
            .with_generated_key(512, &mut rng)
            .build()
            .unwrap();
        let sa = a.open_session(GPS_SAMPLER_UUID).unwrap();
        let signed = sa.get_gps_auth().unwrap();
        assert_eq!(
            signed.verify(&other_world.client().tee_public_key()),
            Err(TeeError::SignatureInvalid)
        );
    }
}
