//! A software model of ARM TrustZone / OP-TEE for the AliDrone
//! reproduction.
//!
//! The AliDrone prototype (paper §II-C, §IV-C2, §V) runs on a Raspberry
//! Pi 3 with OP-TEE: a *secure world* hosts the GPS Driver (a
//! pseudo-trusted application with direct access to the GPS peripheral)
//! and the GPS Sampler (a trusted application holding the TEE sign key
//! `T⁻`), while the *normal world* runs the Adapter daemon that decides
//! *when* to ask for an authenticated sample. We have no TrustZone
//! hardware, so this crate models the architecture in software with the
//! two properties that matter preserved **by construction**:
//!
//! 1. **Key isolation.** The TEE sign key lives inside [`SecureWorld`],
//!    which is never exposed; the only handle the normal world gets is a
//!    [`TeeClient`], whose API can return *signatures* and the *public*
//!    key but not private key material. This API boundary stands in for
//!    the hardware world boundary.
//! 2. **Cost shape.** Every secure-world invocation is metered by a
//!    calibratable [`CostModel`] (world switches + signing time, with
//!    Raspberry Pi 3 defaults derived from the paper's Table II), so the
//!    evaluation harness reproduces the paper's CPU/power numbers.
//!
//! The GlobalPlatform flavour of the API is kept: sessions are opened to
//! trusted applications by [`Uuid`], commands carry [`Param`] lists, and
//! errors mirror `TEE_Result` codes.
//!
//! # Example
//!
//! ```
//! use alidrone_gps::{SimClock, SimulatedReceiver};
//! use alidrone_geo::trajectory::TrajectoryBuilder;
//! use alidrone_geo::{Distance, Duration, GeoPoint, Speed};
//! use alidrone_tee::{SecureWorldBuilder, GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH};
//! use alidrone_crypto::rng::XorShift64;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = GeoPoint::new(40.0, -88.0)?;
//! let b = a.destination(90.0, Distance::from_km(1.0));
//! let traj = TrajectoryBuilder::start_at(a)
//!     .travel_to(b, Speed::from_mph(30.0))
//!     .build()?;
//! let clock = SimClock::new();
//! let receiver = SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0);
//!
//! let mut rng = XorShift64::seed_from_u64(1);
//! let world = SecureWorldBuilder::new()
//!     .with_generated_key(512, &mut rng) // test-size key
//!     .with_gps_device(Box::new(receiver))
//!     .build()?;
//! let client = world.client();
//!
//! clock.advance(Duration::from_secs(2.0));
//! let session = client.open_session(GPS_SAMPLER_UUID)?;
//! let signed = session.get_gps_auth()?;       // convenience wrapper
//! signed.verify(&client.tee_public_key())?;   // normal world can verify
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cost;
mod error;
mod keystore;
mod sampler;
pub mod spoof;
mod storage;
#[cfg(test)]
mod test_support;
mod uuid;
mod world;

pub use client::{TeeClient, TeeSession};
pub use cost::{CostLedger, CostModel, CostSnapshot};
pub use error::TeeError;
pub use sampler::{SignedGapMarker, SignedSample, SignedSample3d, SignedTrace};
pub use spoof::{Environment, PlausibilityDetector, SpoofDetector, TrustingDetector};
pub use storage::SecureStorage;
pub use uuid::Uuid;
pub use world::{NmeaFaultHook, Param, SecureWorld, SecureWorldBuilder, SignFaultHook};

/// UUID of the GPS Sampler trusted application.
pub const GPS_SAMPLER_UUID: Uuid = Uuid::from_u128(0x8aaaf200_2450_11e4_abe2_0002a5d5c51b);

/// Command id: produce an authenticated GPS sample (`GetGPSAuth`,
/// paper §IV-C2). No input params; output is `[Bytes(sample), Bytes(sig)]`.
pub const CMD_GET_GPS_AUTH: u32 = 1;

/// Command id: return the TEE verification key `T⁺` as
/// `[Bytes(modulus), Bytes(exponent)]`.
pub const CMD_GET_PUBLIC_KEY: u32 = 2;

/// Command id: read the raw (unsigned) GPS sample the secure-world driver
/// currently sees — used by diagnostics and tests; output `[Bytes(sample)]`.
pub const CMD_READ_GPS_RAW: u32 = 3;

/// Command id: batch mode (paper §VII-A1b "sign all traces at once") —
/// sample the GPS and *cache* the sample in secure memory without
/// signing. Output `[Value(cached_count)]`.
pub const CMD_CACHE_SAMPLE: u32 = 4;

/// Command id: batch mode — sign the entire cached trace with one RSA
/// operation and clear the cache. Output `[Bytes(trace), Bytes(sig)]`.
pub const CMD_SIGN_TRACE: u32 = 5;

/// Command id: 3-D variant of `GetGPSAuth` (paper §VII-B1) — produce an
/// authenticated 4-tuple `(lat, lon, alt, t)` sample. Requires a 3-D
/// GPS device; output `[Bytes(sample3d 32B), Bytes(sig)]`.
pub const CMD_GET_GPS_AUTH_3D: u32 = 6;

/// Command id: degraded mode — sign a declared GPS-outage window
/// (`SignGap`). Input `[Bytes(start f64 BE || end f64 BE)]` (16 bytes);
/// output `[Bytes(sig)]`. Safe to expose to the normal world because a
/// declared gap only ever *weakens* the alibi.
pub const CMD_SIGN_GAP: u32 = 7;

/// Command id: countersign an auditor audit-log checkpoint
/// (`SignCheckpoint`). Input `[Bytes(sth_signing_bytes)]` — exactly the
/// 80-byte domain-separated signed-tree-head encoding
/// (`"ALDSTH01" || size || root || chain_head`); output `[Bytes(sig)]`.
///
/// Safe to expose: the enclave refuses any buffer that does not carry
/// the `ALDSTH01` domain prefix, and no GPS artifact it signs shares
/// that prefix or length (samples are 24 B, 3-D samples 32 B, traces
/// multiples of 24 B, gap markers 23 B), so a checkpoint signature can
/// never be confused with a location attestation.
pub const CMD_SIGN_CHECKPOINT: u32 = 8;
