//! Shared fixtures for this crate's unit tests.

use std::sync::OnceLock;

use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::{GeoPoint, GpsSample, Speed, Timestamp};
use alidrone_gps::{GpsDevice, GpsFix};

/// A cached 512-bit RSA key: keygen in debug builds is slow enough that
/// regenerating per test would dominate the suite.
pub(crate) fn test_key() -> &'static RsaPrivateKey {
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(0x7EE);
        RsaPrivateKey::generate(512, &mut rng)
    })
}

/// A trivial receiver for tests: either a constant fix or no fix at all.
pub(crate) struct TestReceiver {
    fix: Option<GpsFix>,
}

impl TestReceiver {
    /// Always reports the same fix.
    pub(crate) fn fixed(lat: f64, lon: f64, t: f64) -> Self {
        TestReceiver {
            fix: Some(GpsFix {
                sample: GpsSample::new(
                    GeoPoint::new(lat, lon).expect("valid test coords"),
                    Timestamp::from_secs(t),
                ),
                speed: Speed::from_mps(0.0),
                sequence: 0,
            }),
        }
    }

    /// Cold receiver: never has a fix.
    pub(crate) fn no_fix() -> Self {
        TestReceiver { fix: None }
    }
}

impl GpsDevice for TestReceiver {
    fn latest_fix(&self) -> Option<GpsFix> {
        self.fix
    }

    fn update_rate_hz(&self) -> f64 {
        5.0
    }
}
