//! Cost accounting for secure-world operations.
//!
//! We cannot measure a Raspberry Pi 3's TrustZone on this machine, so the
//! performance side of the reproduction runs on a *cost model*: every
//! secure-world invocation deposits its modelled CPU time into a ledger,
//! and the evaluation harness converts accumulated busy time into the
//! CPU-utilisation and power numbers of the paper's Table II.
//!
//! The default model is calibrated **from the paper's own Table II**:
//! with a 1024-bit key the fixed-rate rows give ≈ 43.5 ms of CPU per
//! authenticated sample (2.17 %·4 cores / 2 Hz = 43.4 ms, 3 Hz ⇒ 42.3 ms,
//! 5 Hz ⇒ 44.7 ms), and with a 2048-bit key ≈ 220 ms (2 Hz ⇒ 218.8 ms,
//! 3 Hz ⇒ 224.1 ms). Those per-sample costs are dominated by the RSA
//! signature plus two world switches.

use std::sync::Arc;

use alidrone_geo::Duration;
use std::sync::Mutex;

/// Modelled CPU cost of each secure-world operation class.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One direction of a world switch (SMC + context save/restore).
    pub world_switch: Duration,
    /// RSASSA-PKCS1-v1.5 signature with a 1024-bit key.
    pub sign_1024: Duration,
    /// RSASSA-PKCS1-v1.5 signature with a 2048-bit key.
    pub sign_2048: Duration,
    /// Reading + parsing the latest NMEA message in the GPS driver.
    pub read_gps: Duration,
    /// RSAES-PKCS1-v1.5 encryption of a sample for the auditor (public
    /// key op — cheap relative to signing).
    pub encrypt: Duration,
}

impl CostModel {
    /// The Raspberry Pi 3 Model B model calibrated from the paper's
    /// Table II (see module docs).
    pub fn raspberry_pi_3() -> Self {
        CostModel {
            world_switch: Duration::from_millis(0.75),
            sign_1024: Duration::from_millis(41.0),
            sign_2048: Duration::from_millis(217.5),
            read_gps: Duration::from_millis(0.3),
            encrypt: Duration::from_millis(0.7),
        }
    }

    /// A zero-cost model for tests that don't care about accounting.
    pub fn free() -> Self {
        CostModel {
            world_switch: Duration::ZERO,
            sign_1024: Duration::ZERO,
            sign_2048: Duration::ZERO,
            read_gps: Duration::ZERO,
            encrypt: Duration::ZERO,
        }
    }

    /// Signature cost for an arbitrary key size, scaling cubically from
    /// the calibrated points (CRT RSA signing is Θ(bits³) with schoolbook
    /// multiplication, which both OP-TEE's libmpa-era code and our
    /// [`BigUint`](alidrone_crypto::bigint::BigUint) exhibit).
    pub fn sign_cost(&self, key_bits: usize) -> Duration {
        match key_bits {
            1024 => self.sign_1024,
            2048 => self.sign_2048,
            bits => {
                let scale = (bits as f64 / 1024.0).powi(3);
                Duration::from_secs(self.sign_1024.secs() * scale)
            }
        }
    }

    /// Total modelled cost of one `GetGPSAuth` call: enter + exit world
    /// switches, a driver read, and a signature.
    pub fn get_gps_auth_cost(&self, key_bits: usize) -> Duration {
        self.world_switch * 2.0 + self.read_gps + self.sign_cost(key_bits)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::raspberry_pi_3()
    }
}

/// A snapshot of accumulated costs.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct CostSnapshot {
    /// Total modelled secure-world CPU time.
    pub busy: Duration,
    /// Number of world switches (each direction counted once).
    pub world_switches: u64,
    /// Number of signatures produced.
    pub signatures: u64,
    /// Number of GPS driver reads.
    pub gps_reads: u64,
}

/// Thread-safe ledger accumulating modelled costs. Cloning shares the
/// underlying ledger.
#[derive(Debug, Default, Clone)]
pub struct CostLedger {
    inner: Arc<Mutex<CostSnapshot>>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Records `n` world switches costing `each`.
    pub fn record_world_switches(&self, n: u64, each: Duration) {
        let mut s = self.inner.lock().unwrap();
        s.world_switches += n;
        s.busy = s.busy + each * n as f64;
    }

    /// Records one signature costing `cost`.
    pub fn record_signature(&self, cost: Duration) {
        let mut s = self.inner.lock().unwrap();
        s.signatures += 1;
        s.busy = s.busy + cost;
    }

    /// Records one GPS read costing `cost`.
    pub fn record_gps_read(&self, cost: Duration) {
        let mut s = self.inner.lock().unwrap();
        s.gps_reads += 1;
        s.busy = s.busy + cost;
    }

    /// Records generic busy time.
    pub fn record_busy(&self, cost: Duration) {
        let mut s = self.inner.lock().unwrap();
        s.busy = s.busy + cost;
    }

    /// The current totals.
    pub fn snapshot(&self) -> CostSnapshot {
        *self.inner.lock().unwrap()
    }

    /// Resets the ledger to zero.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = CostSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi3_per_sample_cost_matches_table_2_calibration() {
        let m = CostModel::raspberry_pi_3();
        let c1024 = m.get_gps_auth_cost(1024).millis();
        let c2048 = m.get_gps_auth_cost(2048).millis();
        // Paper-derived targets: ~43.5 ms and ~220 ms.
        assert!((c1024 - 43.3).abs() < 1.5, "1024-bit {c1024} ms");
        assert!((c2048 - 219.8).abs() < 3.0, "2048-bit {c2048} ms");
        // The ratio ~5x is what makes 2048 @ 5 Hz infeasible in Table II.
        assert!(c2048 / c1024 > 4.5 && c2048 / c1024 < 5.6);
    }

    #[test]
    fn fixed_5hz_1024_fits_one_core_but_2048_does_not() {
        let m = CostModel::raspberry_pi_3();
        let per_sec_1024 = m.get_gps_auth_cost(1024).secs() * 5.0;
        let per_sec_2048 = m.get_gps_auth_cost(2048).secs() * 5.0;
        assert!(per_sec_1024 < 1.0, "1024-bit @5 Hz must be feasible");
        assert!(per_sec_2048 > 1.0, "2048-bit @5 Hz must exceed one core");
    }

    #[test]
    fn sign_cost_scales_cubically_for_other_sizes() {
        let m = CostModel::raspberry_pi_3();
        let c512 = m.sign_cost(512);
        assert!((c512.millis() - m.sign_1024.millis() / 8.0).abs() < 1e-6);
        let c4096 = m.sign_cost(4096);
        assert!((c4096.millis() - m.sign_1024.millis() * 64.0).abs() < 1e-6);
    }

    #[test]
    fn ledger_accumulates() {
        let l = CostLedger::new();
        l.record_world_switches(2, Duration::from_millis(1.0));
        l.record_signature(Duration::from_millis(40.0));
        l.record_gps_read(Duration::from_millis(0.5));
        let s = l.snapshot();
        assert_eq!(s.world_switches, 2);
        assert_eq!(s.signatures, 1);
        assert_eq!(s.gps_reads, 1);
        assert!((s.busy.millis() - 42.5).abs() < 1e-9);
    }

    #[test]
    fn ledger_clones_share_state() {
        let a = CostLedger::new();
        let b = a.clone();
        a.record_signature(Duration::from_millis(10.0));
        assert_eq!(b.snapshot().signatures, 1);
    }

    #[test]
    fn reset_zeroes() {
        let l = CostLedger::new();
        l.record_signature(Duration::from_millis(10.0));
        l.reset();
        assert_eq!(l.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.get_gps_auth_cost(1024), Duration::ZERO);
        assert_eq!(m.sign_cost(4096), Duration::ZERO);
    }
}
