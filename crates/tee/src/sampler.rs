//! The GPS Sampler trusted application and its output type.
//!
//! The GPS Sampler "runs in non-privileged mode in the secure world. It
//! exposes an interface `GetGPSAuth` to the Adapter to produce an
//! authenticated GPS sample. It reads the parsed GPS data from the
//! underlying GPS Driver and signs the data with the TEE sign key `T⁻`"
//! (paper §IV-C2).

use std::fmt;

use alidrone_crypto::rsa::{HashAlg, RsaPublicKey, RsaVerifier};
use alidrone_geo::three_d::GpsSample3d;
use alidrone_geo::GpsSample;

use alidrone_geo::Timestamp;

use crate::world::{Param, WorldInner};
use crate::{
    TeeError, CMD_CACHE_SAMPLE, CMD_GET_GPS_AUTH, CMD_GET_GPS_AUTH_3D, CMD_GET_PUBLIC_KEY,
    CMD_READ_GPS_RAW, CMD_SIGN_GAP, CMD_SIGN_TRACE,
};

/// Secure-storage object id for the batch-mode sample cache.
const TRACE_CACHE_ID: &str = "gps-sampler/trace-cache";

/// An authenticated GPS sample: the atom of a Proof-of-Alibi.
///
/// `PoA = {(S₀, Sig(S₀, T⁻)), (S₁, Sig(S₁, T⁻)), …}` — this type is one
/// element of that sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedSample {
    sample: GpsSample,
    signature: Vec<u8>,
    hash_alg: HashAlg,
}

impl SignedSample {
    /// Reassembles a signed sample from its parts (e.g. after network
    /// transfer). No verification is performed here — call
    /// [`verify`](Self::verify).
    pub fn from_parts(sample: GpsSample, signature: Vec<u8>, hash_alg: HashAlg) -> Self {
        SignedSample {
            sample,
            signature,
            hash_alg,
        }
    }

    /// The GPS sample.
    pub fn sample(&self) -> &GpsSample {
        &self.sample
    }

    /// The TEE signature over [`GpsSample::to_bytes`].
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// The hash algorithm inside the signature.
    pub fn hash_alg(&self) -> HashAlg {
        self.hash_alg
    }

    /// Verifies the signature under the TEE verification key `T⁺`.
    ///
    /// One-shot convenience over [`verify_with`](Self::verify_with) —
    /// callers checking many samples under the same key should prepare
    /// an [`RsaVerifier`] once and reuse it.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SignatureInvalid`] when the signature does not
    /// verify (tampered sample, tampered signature, or wrong drone key).
    pub fn verify(&self, tee_public: &RsaPublicKey) -> Result<(), TeeError> {
        self.verify_with(&tee_public.verifier())
    }

    /// Verifies the signature with a prepared `T⁺` verifier, skipping
    /// the per-key precomputation.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify).
    pub fn verify_with(&self, tee_verifier: &RsaVerifier) -> Result<(), TeeError> {
        tee_verifier
            .verify(&self.sample.to_bytes(), &self.signature, self.hash_alg)
            .map_err(|_| TeeError::SignatureInvalid)
    }

    /// Serialises to the wire format
    /// `[alg: u8][sample: 24B][sig_len: u16 BE][sig]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(27 + self.signature.len());
        out.push(match self.hash_alg {
            HashAlg::Sha1 => 1,
            HashAlg::Sha256 => 2,
        });
        out.extend_from_slice(&self.sample.to_bytes());
        out.extend_from_slice(&(self.signature.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses the wire format produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::MalformedData`] on truncation or unknown
    /// algorithm tags.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TeeError> {
        if bytes.len() < 27 {
            return Err(TeeError::MalformedData("signed sample too short"));
        }
        let hash_alg = match bytes[0] {
            1 => HashAlg::Sha1,
            2 => HashAlg::Sha256,
            _ => return Err(TeeError::MalformedData("unknown hash algorithm tag")),
        };
        let sample_bytes: [u8; 24] = bytes[1..25].try_into().expect("24 bytes");
        let sample = GpsSample::from_bytes(&sample_bytes)
            .map_err(|_| TeeError::MalformedData("invalid sample coordinates"))?;
        let sig_len = u16::from_be_bytes([bytes[25], bytes[26]]) as usize;
        if bytes.len() != 27 + sig_len {
            return Err(TeeError::MalformedData("signature length mismatch"));
        }
        Ok(SignedSample {
            sample,
            signature: bytes[27..].to_vec(),
            hash_alg,
        })
    }
}

impl fmt::Display for SignedSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signed {}", self.sample)
    }
}

/// An authenticated 3-D GPS sample (paper §VII-B1): the 4-tuple
/// `(lat, lon, alt, t)` signed under `T⁻`.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedSample3d {
    sample: GpsSample3d,
    signature: Vec<u8>,
    hash_alg: HashAlg,
}

impl SignedSample3d {
    /// Reassembles a signed 3-D sample from its parts.
    pub fn from_parts(sample: GpsSample3d, signature: Vec<u8>, hash_alg: HashAlg) -> Self {
        SignedSample3d {
            sample,
            signature,
            hash_alg,
        }
    }

    /// The 3-D sample.
    pub fn sample(&self) -> &GpsSample3d {
        &self.sample
    }

    /// The TEE signature over [`GpsSample3d::to_bytes`].
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// Verifies the signature under `T⁺`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SignatureInvalid`] on any tampering —
    /// including of the altitude, which is the field a dishonest
    /// operator would forge to turn a low pass into a legal overflight.
    pub fn verify(&self, tee_public: &RsaPublicKey) -> Result<(), TeeError> {
        self.verify_with(&tee_public.verifier())
    }

    /// Verifies with a prepared `T⁺` verifier.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify).
    pub fn verify_with(&self, tee_verifier: &RsaVerifier) -> Result<(), TeeError> {
        tee_verifier
            .verify(&self.sample.to_bytes(), &self.signature, self.hash_alg)
            .map_err(|_| TeeError::SignatureInvalid)
    }
}

/// Domain separator for gap-marker signing bytes. The serialised marker
/// is 23 bytes — never 24 (a [`GpsSample`]) nor a multiple of 24 (a
/// batch trace) — so a gap signature can never be replayed as a sample
/// signature or vice versa.
const GAP_DOMAIN: &[u8; 7] = b"ALIDGAP";

/// A signed declaration that the sampler had **no usable GPS fix** over
/// `[start, end]` (degraded-mode operation).
///
/// When the receiver goes stale mid-flight the paper's prototype would
/// simply record nothing, leaving an unmarked hole in the sample stream.
/// A gap marker turns the hole into attested evidence: the auditor's
/// sufficiency check inflates the travel budget of pairs overlapping a
/// declared gap, so missing samples *weaken* the alibi instead of
/// vanishing.
///
/// Gap signing is safe to expose to the (adversarial) normal world: a
/// forged or spurious gap is an admission against interest — it can only
/// make the drone's alibi weaker, never stronger.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedGapMarker {
    start: Timestamp,
    end: Timestamp,
    signature: Vec<u8>,
    hash_alg: HashAlg,
}

impl SignedGapMarker {
    /// Reassembles a gap marker from its parts. No verification is
    /// performed here — call [`verify`](Self::verify).
    pub fn from_parts(
        start: Timestamp,
        end: Timestamp,
        signature: Vec<u8>,
        hash_alg: HashAlg,
    ) -> Self {
        SignedGapMarker {
            start,
            end,
            signature,
            hash_alg,
        }
    }

    /// When the outage began.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// When a fix next became available (or the flight ended).
    pub fn end(&self) -> Timestamp {
        self.end
    }

    /// The TEE signature over the domain-separated gap bytes.
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// The hash algorithm inside the signature.
    pub fn hash_alg(&self) -> HashAlg {
        self.hash_alg
    }

    /// The bytes the TEE signs: `"ALIDGAP" || start f64 BE || end f64 BE`.
    pub fn signing_bytes(start: Timestamp, end: Timestamp) -> [u8; 23] {
        let mut out = [0u8; 23];
        out[..7].copy_from_slice(GAP_DOMAIN);
        out[7..15].copy_from_slice(&start.secs().to_be_bytes());
        out[15..23].copy_from_slice(&end.secs().to_be_bytes());
        out
    }

    /// Verifies the signature under the TEE verification key `T⁺`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SignatureInvalid`] on tampering.
    pub fn verify(&self, tee_public: &RsaPublicKey) -> Result<(), TeeError> {
        self.verify_with(&tee_public.verifier())
    }

    /// Verifies with a prepared `T⁺` verifier.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify).
    pub fn verify_with(&self, tee_verifier: &RsaVerifier) -> Result<(), TeeError> {
        tee_verifier
            .verify(
                &Self::signing_bytes(self.start, self.end),
                &self.signature,
                self.hash_alg,
            )
            .map_err(|_| TeeError::SignatureInvalid)
    }

    /// Serialises to the wire format
    /// `[alg: u8][start: f64 BE][end: f64 BE][sig_len: u16 BE][sig]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(19 + self.signature.len());
        out.push(match self.hash_alg {
            HashAlg::Sha1 => 1,
            HashAlg::Sha256 => 2,
        });
        out.extend_from_slice(&self.start.secs().to_be_bytes());
        out.extend_from_slice(&self.end.secs().to_be_bytes());
        out.extend_from_slice(&(self.signature.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses the wire format produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::MalformedData`] on truncation, non-finite
    /// times, an inverted window, or unknown algorithm tags.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TeeError> {
        if bytes.len() < 19 {
            return Err(TeeError::MalformedData("gap marker too short"));
        }
        let hash_alg = match bytes[0] {
            1 => HashAlg::Sha1,
            2 => HashAlg::Sha256,
            _ => return Err(TeeError::MalformedData("unknown hash algorithm tag")),
        };
        let start = f64::from_be_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let end = f64::from_be_bytes(bytes[9..17].try_into().expect("8 bytes"));
        if !start.is_finite() || !end.is_finite() || end <= start {
            return Err(TeeError::MalformedData("invalid gap window"));
        }
        let sig_len = u16::from_be_bytes([bytes[17], bytes[18]]) as usize;
        if bytes.len() != 19 + sig_len {
            return Err(TeeError::MalformedData("signature length mismatch"));
        }
        Ok(SignedGapMarker {
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
            signature: bytes[19..].to_vec(),
            hash_alg,
        })
    }
}

impl fmt::Display for SignedGapMarker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "signed gap [{:.3}, {:.3}]",
            self.start.secs(),
            self.end.secs()
        )
    }
}

/// A whole GPS trace signed with a single RSA operation — the output of
/// batch mode (paper §VII-A1b). Compare with per-sample [`SignedSample`]s:
/// one signature amortised over the flight instead of one per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedTrace {
    samples: Vec<GpsSample>,
    trace_bytes: Vec<u8>,
    signature: Vec<u8>,
    hash_alg: HashAlg,
}

impl SignedTrace {
    /// Reassembles a signed trace from the raw concatenated sample bytes
    /// and the signature over them.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::MalformedData`] if `trace_bytes` is not a
    /// whole number of 24-byte samples or contains invalid coordinates.
    pub fn from_parts(
        trace_bytes: Vec<u8>,
        signature: Vec<u8>,
        hash_alg: HashAlg,
    ) -> Result<Self, TeeError> {
        if trace_bytes.is_empty() || !trace_bytes.len().is_multiple_of(24) {
            return Err(TeeError::MalformedData("trace length not 24-byte aligned"));
        }
        let mut samples = Vec::with_capacity(trace_bytes.len() / 24);
        for chunk in trace_bytes.chunks_exact(24) {
            let arr: [u8; 24] = chunk.try_into().expect("24 bytes");
            samples.push(
                GpsSample::from_bytes(&arr)
                    .map_err(|_| TeeError::MalformedData("invalid sample in trace"))?,
            );
        }
        Ok(SignedTrace {
            samples,
            trace_bytes,
            signature,
            hash_alg,
        })
    }

    /// The decoded samples.
    pub fn samples(&self) -> &[GpsSample] {
        &self.samples
    }

    /// The signature over the concatenated sample bytes.
    pub fn signature(&self) -> &[u8] {
        &self.signature
    }

    /// Verifies the single trace signature under `T⁺`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SignatureInvalid`] on any tampering.
    pub fn verify(&self, tee_public: &RsaPublicKey) -> Result<(), TeeError> {
        self.verify_with(&tee_public.verifier())
    }

    /// Verifies with a prepared `T⁺` verifier.
    ///
    /// # Errors
    ///
    /// Same as [`verify`](Self::verify).
    pub fn verify_with(&self, tee_verifier: &RsaVerifier) -> Result<(), TeeError> {
        tee_verifier
            .verify(&self.trace_bytes, &self.signature, self.hash_alg)
            .map_err(|_| TeeError::SignatureInvalid)
    }
}

/// Secure-world command dispatch for the GPS Sampler TA.
pub(crate) fn invoke(
    world: &WorldInner,
    cmd: u32,
    params: &[Param],
) -> Result<Vec<Param>, TeeError> {
    match cmd {
        CMD_GET_GPS_AUTH => {
            if !params.is_empty() {
                return Err(TeeError::BadParameters("GetGPSAuth takes no parameters"));
            }
            let sample = world.driver_read_gps_checked()?;
            let bytes = sample.to_bytes();
            let signature = world.keystore_sign(&bytes)?;
            Ok(vec![Param::Bytes(bytes.to_vec()), Param::Bytes(signature)])
        }
        CMD_GET_PUBLIC_KEY => {
            let pk = world.public_key();
            Ok(vec![
                Param::Bytes(pk.modulus().to_bytes_be()),
                Param::Bytes(pk.exponent().to_bytes_be()),
            ])
        }
        CMD_GET_GPS_AUTH_3D => {
            if !params.is_empty() {
                return Err(TeeError::BadParameters("GetGPSAuth3d takes no parameters"));
            }
            let sample = world.driver_read_gps_3d_checked()?;
            let bytes = sample.to_bytes();
            let signature = world.keystore_sign(&bytes)?;
            Ok(vec![Param::Bytes(bytes.to_vec()), Param::Bytes(signature)])
        }
        CMD_READ_GPS_RAW => {
            let sample = world.driver_read_gps()?;
            Ok(vec![Param::Bytes(sample.to_bytes().to_vec())])
        }
        CMD_CACHE_SAMPLE => {
            // §VII-A1b: "caches the GPS samples in the secure memory and
            // sign the whole trace at once. This is feasible because the
            // flight time of drones are usually no more than 30 minutes
            // and the size of each GPS sample is small."
            let sample = world.driver_read_gps_checked()?;
            let mut storage = world.storage_mut();
            let mut buf = storage.get(TRACE_CACHE_ID).unwrap_or(&[]).to_vec();
            buf.extend_from_slice(&sample.to_bytes());
            let count = (buf.len() / 24) as u64;
            storage.put(TRACE_CACHE_ID, buf);
            Ok(vec![Param::Value(count)])
        }
        CMD_SIGN_TRACE => {
            let mut storage = world.storage_mut();
            let trace = storage
                .delete(TRACE_CACHE_ID)
                .map_err(|_| TeeError::NoData)?;
            drop(storage);
            if trace.is_empty() {
                return Err(TeeError::NoData);
            }
            let signature = world.keystore_sign(&trace)?;
            Ok(vec![Param::Bytes(trace), Param::Bytes(signature)])
        }
        CMD_SIGN_GAP => {
            // Degraded mode: attest a GPS outage window. The window
            // arrives from the (untrusted) normal world, which is safe
            // because a declared gap only ever weakens the alibi.
            let [Param::Bytes(window)] = params else {
                return Err(TeeError::BadParameters("SignGap takes one byte buffer"));
            };
            if window.len() != 16 {
                return Err(TeeError::BadParameters("SignGap window must be 16 bytes"));
            }
            let start = f64::from_be_bytes(window[..8].try_into().expect("8 bytes"));
            let end = f64::from_be_bytes(window[8..].try_into().expect("8 bytes"));
            if !start.is_finite() || !end.is_finite() || end <= start {
                return Err(TeeError::BadParameters("SignGap window invalid"));
            }
            let bytes = SignedGapMarker::signing_bytes(
                Timestamp::from_secs(start),
                Timestamp::from_secs(end),
            );
            let signature = world.keystore_sign(&bytes)?;
            Ok(vec![Param::Bytes(signature)])
        }
        crate::CMD_SIGN_CHECKPOINT => {
            // Countersign an auditor tree head. The enclave only vouches
            // for buffers under the `ALDSTH01` domain prefix so this key
            // can never be tricked into signing a location artifact.
            let [Param::Bytes(sth)] = params else {
                return Err(TeeError::BadParameters(
                    "SignCheckpoint takes one byte buffer",
                ));
            };
            if sth.len() != STH_SIGNING_LEN || !sth.starts_with(STH_DOMAIN_PREFIX) {
                return Err(TeeError::BadParameters(
                    "SignCheckpoint input is not a domain-separated tree head",
                ));
            }
            let signature = world.keystore_sign(sth)?;
            Ok(vec![Param::Bytes(signature)])
        }
        other => Err(TeeError::NotSupported(other)),
    }
}

/// Domain prefix an auditor signed-tree-head encoding must carry before
/// the enclave will countersign it (mirrors `alidrone-core`'s
/// `audit::SignedTreeHead::signing_bytes`).
const STH_DOMAIN_PREFIX: &[u8] = b"ALDSTH01";

/// Exact length of a signed-tree-head encoding: 8-byte prefix +
/// u64 size + 32-byte Merkle root + 32-byte chain head.
const STH_SIGNING_LEN: usize = 8 + 8 + 32 + 32;

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::{GeoPoint, Timestamp};

    fn sample() -> GpsSample {
        GpsSample::new(
            GeoPoint::new(40.1, -88.2).unwrap(),
            Timestamp::from_secs(17.5),
        )
    }

    #[test]
    fn wire_round_trip() {
        let s = SignedSample::from_parts(sample(), vec![0xAA; 64], HashAlg::Sha1);
        let rt = SignedSample::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, rt);
    }

    #[test]
    fn wire_round_trip_sha256() {
        let s = SignedSample::from_parts(sample(), vec![0x55; 128], HashAlg::Sha256);
        let rt = SignedSample::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(rt.hash_alg(), HashAlg::Sha256);
        assert_eq!(rt.signature().len(), 128);
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let s = SignedSample::from_parts(sample(), vec![0xAA; 64], HashAlg::Sha1);
        let bytes = s.to_bytes();
        assert!(SignedSample::from_bytes(&bytes[..10]).is_err());
        assert!(SignedSample::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn from_bytes_rejects_unknown_alg() {
        let s = SignedSample::from_parts(sample(), vec![0xAA; 4], HashAlg::Sha1);
        let mut bytes = s.to_bytes();
        bytes[0] = 9;
        assert_eq!(
            SignedSample::from_bytes(&bytes),
            Err(TeeError::MalformedData("unknown hash algorithm tag"))
        );
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let s = SignedSample::from_parts(sample(), vec![0xAA; 4], HashAlg::Sha1);
        let mut bytes = s.to_bytes();
        bytes.push(0);
        assert!(SignedSample::from_bytes(&bytes).is_err());
    }

    #[test]
    fn gap_marker_wire_round_trip() {
        let g = SignedGapMarker::from_parts(
            Timestamp::from_secs(10.0),
            Timestamp::from_secs(14.5),
            vec![0xBB; 64],
            HashAlg::Sha1,
        );
        let rt = SignedGapMarker::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(g, rt);
        assert_eq!(rt.start().secs(), 10.0);
        assert_eq!(rt.end().secs(), 14.5);
    }

    #[test]
    fn gap_marker_rejects_inverted_or_truncated() {
        let g = SignedGapMarker::from_parts(
            Timestamp::from_secs(5.0),
            Timestamp::from_secs(2.0),
            vec![0xBB; 8],
            HashAlg::Sha1,
        );
        assert!(SignedGapMarker::from_bytes(&g.to_bytes()).is_err());
        let ok = SignedGapMarker::from_parts(
            Timestamp::from_secs(2.0),
            Timestamp::from_secs(5.0),
            vec![0xBB; 8],
            HashAlg::Sha1,
        );
        let bytes = ok.to_bytes();
        assert!(SignedGapMarker::from_bytes(&bytes[..10]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SignedGapMarker::from_bytes(&trailing).is_err());
    }

    #[test]
    fn gap_signing_bytes_cannot_collide_with_samples() {
        // 23 bytes: not a 24-byte sample, not a multiple of 24 (trace).
        let b =
            SignedGapMarker::signing_bytes(Timestamp::from_secs(0.0), Timestamp::from_secs(1.0));
        assert_eq!(b.len(), 23);
        assert_eq!(&b[..7], b"ALIDGAP");
    }
}
