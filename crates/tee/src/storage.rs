//! Secure storage — the OP-TEE trusted-storage service (paper Fig. 1's
//! "storage" box, reached via tee-supplicant).
//!
//! Objects are opaque byte strings keyed by object id. In real OP-TEE the
//! backing store is the untrusted filesystem with authenticated
//! encryption applied inside the secure world; here the store lives in
//! secure-world memory, which gives the same visible semantics (only
//! secure-world code can read or tamper with objects).

use std::collections::BTreeMap;

use crate::TeeError;

/// An in-memory secure object store.
#[derive(Debug, Default)]
pub struct SecureStorage {
    objects: BTreeMap<String, Vec<u8>>,
}

impl SecureStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        SecureStorage::default()
    }

    /// Creates or replaces the object `id`.
    pub fn put(&mut self, id: &str, data: Vec<u8>) {
        self.objects.insert(id.to_string(), data);
    }

    /// Reads object `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] when no such object exists.
    pub fn get(&self, id: &str) -> Result<&[u8], TeeError> {
        self.objects
            .get(id)
            .map(Vec::as_slice)
            .ok_or(TeeError::ItemNotFound)
    }

    /// Deletes object `id`, returning its contents.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] when no such object exists.
    pub fn delete(&mut self, id: &str) -> Result<Vec<u8>, TeeError> {
        self.objects.remove(id).ok_or(TeeError::ItemNotFound)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Object ids in sorted order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.objects.keys().map(String::as_str)
    }

    /// Fault injection: flips the bits selected by `mask` at byte
    /// `offset` of object `id`, modelling corruption of the untrusted
    /// backing store. Out-of-range offsets leave the object unchanged
    /// (the fault landed in slack space).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] when no such object exists.
    pub fn tamper(&mut self, id: &str, offset: usize, mask: u8) -> Result<(), TeeError> {
        let obj = self.objects.get_mut(id).ok_or(TeeError::ItemNotFound)?;
        if let Some(b) = obj.get_mut(offset) {
            *b ^= mask;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = SecureStorage::new();
        s.put("poa/0", vec![1, 2, 3]);
        assert_eq!(s.get("poa/0").unwrap(), &[1, 2, 3]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn get_missing_is_item_not_found() {
        let s = SecureStorage::new();
        assert_eq!(s.get("nope"), Err(TeeError::ItemNotFound));
    }

    #[test]
    fn put_replaces() {
        let mut s = SecureStorage::new();
        s.put("k", vec![1]);
        s.put("k", vec![2]);
        assert_eq!(s.get("k").unwrap(), &[2]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_removes_and_returns() {
        let mut s = SecureStorage::new();
        s.put("k", vec![9]);
        assert_eq!(s.delete("k").unwrap(), vec![9]);
        assert_eq!(s.delete("k"), Err(TeeError::ItemNotFound));
        assert!(s.is_empty());
    }

    #[test]
    fn ids_sorted() {
        let mut s = SecureStorage::new();
        s.put("b", vec![]);
        s.put("a", vec![]);
        let ids: Vec<&str> = s.ids().collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn get_after_delete_is_item_not_found() {
        let mut s = SecureStorage::new();
        s.put("k", vec![1, 2, 3]);
        s.delete("k").unwrap();
        assert_eq!(s.get("k"), Err(TeeError::ItemNotFound));
        // Re-creating after delete starts from the new contents, not a
        // resurrected old object.
        s.put("k", vec![9]);
        assert_eq!(s.get("k").unwrap(), &[9]);
    }

    #[test]
    fn overwrite_replaces_whole_object_not_a_merge() {
        let mut s = SecureStorage::new();
        s.put("k", vec![1, 2, 3, 4, 5]);
        s.put("k", vec![7]);
        assert_eq!(
            s.get("k").unwrap(),
            &[7],
            "shorter rewrite must not keep a tail"
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tamper_flips_bits_and_reports_missing_objects() {
        let mut s = SecureStorage::new();
        s.put("k", vec![0b1010_1010, 0xFF]);
        s.tamper("k", 0, 0b0000_1111).unwrap();
        assert_eq!(s.get("k").unwrap(), &[0b1010_0101, 0xFF]);
        // Tampering twice with the same mask restores the byte (XOR).
        s.tamper("k", 0, 0b0000_1111).unwrap();
        assert_eq!(s.get("k").unwrap(), &[0b1010_1010, 0xFF]);
        // Out-of-range offsets are inert; missing objects are typed.
        s.tamper("k", 99, 0xFF).unwrap();
        assert_eq!(s.get("k").unwrap(), &[0b1010_1010, 0xFF]);
        assert_eq!(s.tamper("nope", 0, 1), Err(TeeError::ItemNotFound));
    }
}
