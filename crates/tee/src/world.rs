//! The secure world: OP-TEE core state and the SMC dispatch boundary.

use std::fmt;
use std::sync::Arc;

use alidrone_crypto::rng::Rng;
use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey, RsaPublicKey};
use alidrone_geo::three_d::GpsSample3d;
use alidrone_geo::{GpsSample, Timestamp};
use alidrone_gps::nmea_feed::{burst_to_sample, fix_to_burst};
use alidrone_gps::{GpsDevice, GpsDevice3d};
use alidrone_obs::{Counter, Histogram, Level, Obs};
use std::sync::Mutex;

use crate::keystore::KeyStore;
use crate::spoof::{Environment, SpoofDetector, TrustingDetector};
use crate::{sampler, CostLedger, CostModel, SecureStorage, TeeClient, TeeError, Uuid};

/// A GlobalPlatform-style invocation parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// A pair of 32-bit values packed as one u64 (`TEE_PARAM_TYPE_VALUE`).
    Value(u64),
    /// A memory reference (`TEE_PARAM_TYPE_MEMREF`).
    Bytes(Vec<u8>),
}

impl Param {
    /// The byte payload of a `Bytes` parameter.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] for a `Value` parameter.
    pub fn as_bytes(&self) -> Result<&[u8], TeeError> {
        match self {
            Param::Bytes(b) => Ok(b),
            Param::Value(_) => Err(TeeError::BadParameters("expected memref parameter")),
        }
    }

    /// The numeric payload of a `Value` parameter.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] for a `Bytes` parameter.
    pub fn as_value(&self) -> Result<u64, TeeError> {
        match self {
            Param::Value(v) => Ok(*v),
            Param::Bytes(_) => Err(TeeError::BadParameters("expected value parameter")),
        }
    }
}

/// Pre-registered secure-world metric handles. The counters mirror the
/// [`CostLedger`] (which stays the canonical evaluation interface); the
/// histograms record the *modelled* per-operation cost from the
/// [`CostModel`], so a snapshot shows both how often each secure-world
/// operation ran and what it would have cost on the calibrated target.
struct TeeMetrics {
    world_switches: Arc<Counter>,
    smc_invokes: Arc<Counter>,
    signatures: Arc<Counter>,
    /// Signature count by key size (`tee.signatures.rsa_<bits>`).
    signatures_by_bits: Arc<Counter>,
    gps_reads: Arc<Counter>,
    cost_world_switch: Arc<Histogram>,
    cost_sign: Arc<Histogram>,
    cost_read_gps: Arc<Histogram>,
}

impl TeeMetrics {
    fn new(obs: &Obs, key_bits: usize) -> Self {
        TeeMetrics {
            world_switches: obs.counter("tee.world_switches"),
            smc_invokes: obs.counter("tee.smc_invokes"),
            signatures: obs.counter("tee.signatures"),
            signatures_by_bits: obs.counter(&format!("tee.signatures.rsa_{key_bits}")),
            gps_reads: obs.counter("tee.gps_reads"),
            cost_world_switch: obs.histogram("tee.cost.world_switch"),
            cost_sign: obs.histogram("tee.cost.sign"),
            cost_read_gps: obs.histogram("tee.cost.read_gps"),
        }
    }
}

/// Fault hook deciding whether the next sign operation fails (returns
/// `true` to inject a failure). Installed by the chaos plane via
/// [`SecureWorldBuilder::with_sign_fault`]; the hook itself is a plain
/// closure so the TEE crate stays independent of the chaos crate.
pub type SignFaultHook = Box<dyn Fn() -> bool + Send + Sync>;

/// Fault hook mutating the NMEA burst the GPS driver reads (truncation,
/// garbling) before it is parsed. Installed via
/// [`SecureWorldBuilder::with_nmea_fault`].
pub type NmeaFaultHook = Box<dyn Fn(String) -> String + Send + Sync>;

/// Internal secure-world state. Only reachable through SMC dispatch.
pub(crate) struct WorldInner {
    keystore: KeyStore,
    storage: Mutex<SecureStorage>,
    gps: Option<Box<dyn GpsDevice>>,
    gps3d: Option<Box<dyn GpsDevice3d>>,
    cost_model: CostModel,
    ledger: CostLedger,
    hash_alg_inner: HashAlg,
    spoof: Box<dyn SpoofDetector>,
    obs: Obs,
    metrics: TeeMetrics,
    sign_fault: Option<SignFaultHook>,
    nmea_fault: Option<NmeaFaultHook>,
}

impl WorldInner {
    /// The GPS Driver PTA: reads the receiver's latest NMEA output and
    /// parses it back into a sample — the same `$GPRMC` path the real
    /// kernel-space driver takes through libnmea (paper §V-B).
    pub(crate) fn driver_read_gps(&self) -> Result<GpsSample, TeeError> {
        self.driver_read_gps_inner().map(|(s, _)| s)
    }

    /// As [`driver_read_gps`](Self::driver_read_gps) but also returns
    /// the spoof detector's judgement; authenticity services consult it
    /// (paper §VII-A2).
    pub(crate) fn driver_read_gps_checked(&self) -> Result<GpsSample, TeeError> {
        let (sample, env) = self.driver_read_gps_inner()?;
        if env == Environment::Suspicious {
            return Err(TeeError::AccessDenied);
        }
        Ok(sample)
    }

    /// The 3-D driver path (§VII-B1): reads the GGA-equipped receiver
    /// and returns the 4-tuple sample, consulting the spoof detector.
    pub(crate) fn driver_read_gps_3d_checked(&self) -> Result<GpsSample3d, TeeError> {
        let gps3d = self
            .gps3d
            .as_ref()
            .ok_or(TeeError::MissingComponent("3d gps device"))?;
        let fix3d = gps3d.latest_fix_3d().ok_or(TeeError::NoData)?;
        self.ledger.record_gps_read(self.cost_model.read_gps);
        self.metrics.gps_reads.inc();
        self.metrics.cost_read_gps.record(self.cost_model.read_gps);
        if self.spoof.observe(&fix3d.fix) == Environment::Suspicious {
            return Err(TeeError::AccessDenied);
        }
        // Altitude rides on the GGA sentence; round-trip it like the
        // 2-D path round-trips RMC.
        let line = alidrone_gps::nmea_feed::fix_to_gga(&fix3d.fix, fix3d.alt.meters());
        let gga: alidrone_nmea::Gga = line
            .parse()
            .map_err(|_| TeeError::MalformedData("gga parse"))?;
        GpsSample3d::new(
            fix3d.fix.sample.point(),
            alidrone_geo::Distance::from_meters(gga.altitude_m),
            fix3d.fix.sample.time(),
        )
        .map_err(|_| TeeError::MalformedData("3d sample"))
    }

    fn driver_read_gps_inner(&self) -> Result<(GpsSample, Environment), TeeError> {
        // A 3-D device also serves the 2-D path.
        let fix = if let Some(gps) = self.gps.as_ref() {
            gps.latest_fix()
        } else if let Some(gps3d) = self.gps3d.as_ref() {
            gps3d.latest_fix()
        } else {
            return Err(TeeError::MissingComponent("gps device"));
        };
        let fix = fix.ok_or(TeeError::NoData)?;
        self.ledger.record_gps_read(self.cost_model.read_gps);
        self.metrics.gps_reads.inc();
        self.metrics.cost_read_gps.record(self.cost_model.read_gps);
        let env = self.spoof.observe(&fix);
        // Round-trip through the NMEA wire format for fidelity: the
        // driver sees the receiver's full UART burst (RMC+GGA+VTG+GSA)
        // and picks the $GPRMC line out of it, exactly as the real
        // kernel-space driver does. RMC timestamps wrap at 24 h, so
        // recover the day base from the fix's own timestamp.
        let day_base =
            Timestamp::from_secs((fix.sample.time().secs() / 86_400.0).floor() * 86_400.0);
        let mut burst = fix_to_burst(&fix, 0.0);
        // Injected UART-level fault: the chaos plane may truncate or
        // garble the burst here, exactly where real serial noise lands.
        if let Some(garble) = &self.nmea_fault {
            burst = garble(burst);
        }
        let sample =
            burst_to_sample(&burst, day_base).map_err(|_| TeeError::MalformedData("nmea parse"))?;
        Ok((sample, env))
    }

    /// Signs on behalf of the GPS Sampler TA, with cost accounting.
    pub(crate) fn keystore_sign(&self, data: &[u8]) -> Result<Vec<u8>, TeeError> {
        // Injected crypto-engine fault (chaos plane): fail before any
        // cost is charged, as a hardware sign failure would.
        if self.sign_fault.as_ref().is_some_and(|h| h()) {
            self.obs
                .emit(Level::Warn, "tee.world", "sign_fault_injected", |_| {});
            return Err(TeeError::CryptoFailure("injected sign fault".into()));
        }
        // The span's extent is the *modelled* signing cost, not host CPU
        // time: the sim clock does not advance through `sign`, so the
        // span is closed with `finish_with` at the cost model's duration
        // (the cost histogram keeps sole ownership of the metric — the
        // span only gives the trace view).
        let span = self.obs.enter_span("tee.sign");
        let sig = self.keystore.sign(data);
        let cost = self.cost_model.sign_cost(self.keystore.key_bits());
        span.finish_with(cost);
        let sig = sig?;
        self.ledger.record_signature(cost);
        self.metrics.signatures.inc();
        self.metrics.signatures_by_bits.inc();
        self.metrics.cost_sign.record(cost);
        Ok(sig)
    }

    /// The exportable verification key `T⁺`.
    pub(crate) fn public_key(&self) -> RsaPublicKey {
        self.keystore.public_key()
    }

    /// The prepared `T⁺` verifier (built once at key installation).
    pub(crate) fn verifier(&self) -> &alidrone_crypto::rsa::RsaVerifier {
        self.keystore.verifier()
    }

    /// The signature hash algorithm in force (labels `SignedSample`s on
    /// the client side).
    pub(crate) fn hash_alg(&self) -> HashAlg {
        self.hash_alg_inner
    }

    /// Locked access to secure storage, for TAs running in the secure
    /// world. A poisoned lock is adopted: every storage critical section
    /// is a single non-panicking `BTreeMap` operation, so the data is
    /// structurally sound even after a panicking holder.
    pub(crate) fn storage_mut(&self) -> std::sync::MutexGuard<'_, SecureStorage> {
        self.storage.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        keystore: KeyStore,
        gps: Option<Box<dyn GpsDevice>>,
        gps3d: Option<Box<dyn GpsDevice3d>>,
        cost_model: CostModel,
        hash_alg: HashAlg,
        spoof: Box<dyn SpoofDetector>,
        obs: Obs,
        sign_fault: Option<SignFaultHook>,
        nmea_fault: Option<NmeaFaultHook>,
    ) -> Self {
        let metrics = TeeMetrics::new(&obs, keystore.key_bits());
        WorldInner {
            keystore,
            storage: Mutex::new(SecureStorage::new()),
            gps,
            gps3d,
            cost_model,
            ledger: CostLedger::new(),
            hash_alg_inner: hash_alg,
            spoof,
            obs,
            metrics,
            sign_fault,
            nmea_fault,
        }
    }
}

/// The secure world. Cheap to clone (shared state); hand the normal
/// world a [`TeeClient`] via [`SecureWorld::client`].
#[derive(Clone)]
pub struct SecureWorld {
    pub(crate) inner: Arc<WorldInner>,
}

impl SecureWorld {
    /// Creates a client handle — the normal world's only way in.
    pub fn client(&self) -> TeeClient {
        TeeClient::new(self.clone())
    }

    /// The cost ledger (the "perf counter" interface; readable from the
    /// normal world like cycle counters would be).
    pub fn ledger(&self) -> CostLedger {
        self.inner.ledger.clone()
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost_model
    }

    /// The SMC boundary: every normal-world invocation funnels through
    /// here, paying two world switches.
    pub(crate) fn smc_invoke(
        &self,
        ta: Uuid,
        cmd: u32,
        params: &[Param],
    ) -> Result<Vec<Param>, TeeError> {
        self.inner
            .ledger
            .record_world_switches(2, self.inner.cost_model.world_switch);
        self.inner.metrics.smc_invokes.inc();
        self.inner.metrics.world_switches.add(2);
        // Each direction of the switch is one histogram observation, so
        // count == world_switches and sum == modelled switch time.
        self.inner
            .metrics
            .cost_world_switch
            .record(self.inner.cost_model.world_switch);
        self.inner
            .metrics
            .cost_world_switch
            .record(self.inner.cost_model.world_switch);
        let result = if ta == crate::GPS_SAMPLER_UUID {
            sampler::invoke(&self.inner, cmd, params)
        } else {
            Err(TeeError::ItemNotFound)
        };
        if let Err(e) = &result {
            let failed = *e != TeeError::NoData;
            if failed {
                self.inner
                    .obs
                    .emit(Level::Warn, "tee.world", "smc_failed", |f| {
                        f.field("cmd", cmd as u64);
                    });
            }
        }
        result
    }

    /// Whether a trusted application with this UUID exists.
    pub(crate) fn has_ta(&self, ta: Uuid) -> bool {
        ta == crate::GPS_SAMPLER_UUID
    }

    /// Fault injection: flips the bits selected by `mask` at `offset`
    /// inside stored object `id`, modelling corruption of the untrusted
    /// backing store behind OP-TEE's trusted storage (in real OP-TEE the
    /// secure world would *detect* this via its authenticated
    /// encryption; here the corruption simply surfaces downstream as a
    /// typed error, which is what the chaos campaign asserts).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] when no such object exists.
    pub fn corrupt_stored_object(&self, id: &str, offset: usize, mask: u8) -> Result<(), TeeError> {
        self.inner.storage_mut().tamper(id, offset, mask)
    }
}

impl fmt::Debug for SecureWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureWorld")
            .field("keystore", &self.inner.keystore)
            .field("has_gps", &self.inner.gps.is_some())
            .finish_non_exhaustive()
    }
}

/// Builder for [`SecureWorld`].
///
/// The TEE keypair is "generated at manufacturing time" (paper §IV-B);
/// building the world is the manufacturing step.
pub struct SecureWorldBuilder {
    sign_key: Option<RsaPrivateKey>,
    gps: Option<Box<dyn GpsDevice>>,
    gps3d: Option<Box<dyn GpsDevice3d>>,
    cost_model: CostModel,
    hash_alg: HashAlg,
    spoof: Box<dyn SpoofDetector>,
    obs: Obs,
    sign_fault: Option<SignFaultHook>,
    nmea_fault: Option<NmeaFaultHook>,
}

impl SecureWorldBuilder {
    /// Starts a builder with the Raspberry Pi 3 cost model and the
    /// paper's SHA-1 signature algorithm.
    pub fn new() -> Self {
        SecureWorldBuilder {
            sign_key: None,
            gps: None,
            gps3d: None,
            cost_model: CostModel::raspberry_pi_3(),
            hash_alg: HashAlg::Sha1,
            spoof: Box::new(TrustingDetector),
            obs: Obs::noop(),
            sign_fault: None,
            nmea_fault: None,
        }
    }

    /// Routes secure-world metrics (world switches, signatures by key
    /// size, modelled per-op costs) and events into `obs`.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Installs an existing sign key (e.g. a cached test key).
    pub fn with_sign_key(mut self, key: RsaPrivateKey) -> Self {
        self.sign_key = Some(key);
        self
    }

    /// Generates a fresh sign key of `bits` bits.
    pub fn with_generated_key<R: Rng + ?Sized>(mut self, bits: usize, rng: &mut R) -> Self {
        self.sign_key = Some(RsaPrivateKey::generate(bits, rng));
        self
    }

    /// Attaches the GPS receiver the secure-world driver will read.
    pub fn with_gps_device(mut self, gps: Box<dyn GpsDevice>) -> Self {
        self.gps = Some(gps);
        self
    }

    /// Attaches a 3-D (altitude-reporting) receiver (§VII-B1). Serves
    /// both the 2-D commands and `CMD_GET_GPS_AUTH_3D`.
    pub fn with_gps_device_3d(mut self, gps: Box<dyn GpsDevice3d>) -> Self {
        self.gps3d = Some(gps);
        self
    }

    /// Overrides the cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Selects the signature hash (the paper uses SHA-1; SHA-256 is the
    /// modern choice).
    pub fn with_hash_alg(mut self, alg: HashAlg) -> Self {
        self.hash_alg = alg;
        self
    }

    /// Installs a GPS-spoofing detector (paper §VII-A2); the GPS
    /// Sampler declines authenticity services while the detector judges
    /// the environment suspicious. Defaults to [`TrustingDetector`].
    pub fn with_spoof_detector(mut self, detector: Box<dyn SpoofDetector>) -> Self {
        self.spoof = detector;
        self
    }

    /// Installs a deterministic sign-fault hook (chaos plane): whenever
    /// the hook returns `true`, the next secure-world sign operation
    /// fails with a typed [`TeeError::CryptoFailure`].
    pub fn with_sign_fault(mut self, hook: SignFaultHook) -> Self {
        self.sign_fault = Some(hook);
        self
    }

    /// Installs a deterministic NMEA-fault hook (chaos plane): the hook
    /// may truncate or garble the receiver's UART burst before the
    /// secure-world driver parses it, surfacing as a typed
    /// [`TeeError::MalformedData`].
    pub fn with_nmea_fault(mut self, hook: NmeaFaultHook) -> Self {
        self.nmea_fault = Some(hook);
        self
    }

    /// Builds the world.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::MissingComponent`] when no sign key was
    /// provided (a GPS device is optional — key-only worlds are useful
    /// for registration flows and tests).
    pub fn build(self) -> Result<SecureWorld, TeeError> {
        let key = self
            .sign_key
            .ok_or(TeeError::MissingComponent("sign key"))?;
        Ok(SecureWorld {
            inner: Arc::new(WorldInner::new(
                KeyStore::new(key, self.hash_alg),
                self.gps,
                self.gps3d,
                self.cost_model,
                self.hash_alg,
                self.spoof,
                self.obs,
                self.sign_fault,
                self.nmea_fault,
            )),
        })
    }
}

impl Default for SecureWorldBuilder {
    fn default() -> Self {
        SecureWorldBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{test_key, TestReceiver};
    use crate::{CMD_GET_GPS_AUTH, CMD_GET_PUBLIC_KEY, GPS_SAMPLER_UUID};

    fn world_with_gps() -> SecureWorld {
        SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_gps_device(Box::new(TestReceiver::fixed(40.1, -88.2, 12.0)))
            .with_cost_model(CostModel::raspberry_pi_3())
            .build()
            .unwrap()
    }

    #[test]
    fn build_without_key_fails() {
        assert_eq!(
            SecureWorldBuilder::new().build().err(),
            Some(TeeError::MissingComponent("sign key"))
        );
    }

    #[test]
    fn build_without_gps_is_ok_but_sampling_fails() {
        let world = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .build()
            .unwrap();
        let r = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]);
        assert_eq!(r, Err(TeeError::MissingComponent("gps device")));
    }

    #[test]
    fn unknown_ta_is_item_not_found() {
        let world = world_with_gps();
        let bogus = Uuid::from_u128(42);
        assert_eq!(
            world.smc_invoke(bogus, CMD_GET_GPS_AUTH, &[]),
            Err(TeeError::ItemNotFound)
        );
        assert!(!world.has_ta(bogus));
        assert!(world.has_ta(GPS_SAMPLER_UUID));
    }

    #[test]
    fn unknown_command_not_supported() {
        let world = world_with_gps();
        assert_eq!(
            world.smc_invoke(GPS_SAMPLER_UUID, 999, &[]),
            Err(TeeError::NotSupported(999))
        );
    }

    #[test]
    fn get_gps_auth_returns_sample_and_signature() {
        let world = world_with_gps();
        let out = world
            .smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[])
            .unwrap();
        assert_eq!(out.len(), 2);
        let sample_bytes = out[0].as_bytes().unwrap();
        let sig = out[1].as_bytes().unwrap();
        assert_eq!(sample_bytes.len(), 24);
        assert_eq!(sig.len(), 64); // 512-bit test key
                                   // Signature verifies under the exported public key.
        let pk = world.inner.public_key();
        pk.verify(sample_bytes, sig, HashAlg::Sha1).unwrap();
    }

    #[test]
    fn get_gps_auth_rejects_parameters() {
        let world = world_with_gps();
        assert!(matches!(
            world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[Param::Value(1)]),
            Err(TeeError::BadParameters(_))
        ));
    }

    #[test]
    fn get_public_key_round_trips() {
        let world = world_with_gps();
        let out = world
            .smc_invoke(GPS_SAMPLER_UUID, CMD_GET_PUBLIC_KEY, &[])
            .unwrap();
        let n = alidrone_crypto::bigint::BigUint::from_bytes_be(out[0].as_bytes().unwrap());
        let e = alidrone_crypto::bigint::BigUint::from_bytes_be(out[1].as_bytes().unwrap());
        let pk = RsaPublicKey::new(n, e).unwrap();
        assert_eq!(&pk, test_key().public_key());
    }

    #[test]
    fn every_invoke_pays_two_world_switches() {
        let world = world_with_gps();
        let _ = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_PUBLIC_KEY, &[]);
        let _ = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]);
        let snap = world.ledger().snapshot();
        assert_eq!(snap.world_switches, 4);
        assert_eq!(snap.signatures, 1);
        assert_eq!(snap.gps_reads, 1);
    }

    #[test]
    fn obs_mirrors_ledger_and_tracks_key_size() {
        let obs = Obs::noop();
        let world = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_gps_device(Box::new(TestReceiver::fixed(40.1, -88.2, 12.0)))
            .with_cost_model(CostModel::raspberry_pi_3())
            .with_obs(&obs)
            .build()
            .unwrap();
        let _ = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_PUBLIC_KEY, &[]);
        let _ = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]);
        let ledger = world.ledger().snapshot();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("tee.world_switches"), ledger.world_switches);
        assert_eq!(snap.counter("tee.smc_invokes"), 2);
        assert_eq!(snap.counter("tee.signatures"), ledger.signatures);
        // The test key is 512-bit: the by-size counter carries the size
        // in its name.
        assert_eq!(snap.counter("tee.signatures.rsa_512"), ledger.signatures);
        assert_eq!(snap.counter("tee.gps_reads"), ledger.gps_reads);
        // The cost histograms carry the modelled durations: summing
        // them reproduces the ledger's busy time.
        let hist_ms = |name: &str| {
            snap.histogram(name)
                .map_or(0.0, |h| h.sum_micros as f64 / 1000.0)
        };
        let total_ms = hist_ms("tee.cost.world_switch")
            + hist_ms("tee.cost.sign")
            + hist_ms("tee.cost.read_gps");
        assert!(
            (total_ms - ledger.busy.millis()).abs() < 0.01,
            "histograms {total_ms} ms vs ledger {} ms",
            ledger.busy.millis()
        );
    }

    #[test]
    fn failed_smc_emits_warning_event() {
        use alidrone_obs::RingBuffer;
        let obs = Obs::noop();
        let ring = Arc::new(RingBuffer::new(8));
        obs.set_subscriber(ring.clone());
        let world = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_obs(&obs)
            .build()
            .unwrap();
        let _ = world.smc_invoke(GPS_SAMPLER_UUID, 999, &[]);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "smc_failed");
        assert_eq!(events[0].field("cmd").unwrap().as_u64(), Some(999));
    }

    #[test]
    fn no_fix_is_no_data() {
        let world = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_gps_device(Box::new(TestReceiver::no_fix()))
            .build()
            .unwrap();
        assert_eq!(
            world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]),
            Err(TeeError::NoData)
        );
    }

    #[test]
    fn param_accessors() {
        assert_eq!(Param::Value(7).as_value().unwrap(), 7);
        assert!(Param::Value(7).as_bytes().is_err());
        assert_eq!(Param::Bytes(vec![1]).as_bytes().unwrap(), &[1]);
        assert!(Param::Bytes(vec![1]).as_value().is_err());
    }

    #[test]
    fn secure_storage_reachable_only_in_crate() {
        let world = world_with_gps();
        world.inner.storage_mut().put("obj", vec![1, 2]);
        assert_eq!(world.inner.storage_mut().get("obj").unwrap(), &[1, 2]);
    }

    #[test]
    fn injected_sign_fault_is_typed_crypto_failure() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Deterministic schedule: fail every second sign.
        let calls = AtomicU64::new(0);
        let world = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_gps_device(Box::new(TestReceiver::fixed(40.1, -88.2, 12.0)))
            .with_sign_fault(Box::new(move || {
                calls.fetch_add(1, Ordering::Relaxed) % 2 == 1
            }))
            .build()
            .unwrap();
        let ok = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]);
        assert!(ok.is_ok());
        let err = world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]);
        assert!(matches!(err, Err(TeeError::CryptoFailure(_))), "{err:?}");
        // No cost was charged for the failed sign.
        assert_eq!(world.ledger().snapshot().signatures, 1);
    }

    #[test]
    fn injected_nmea_garbling_is_typed_malformed_data() {
        let world = SecureWorldBuilder::new()
            .with_sign_key(test_key().clone())
            .with_gps_device(Box::new(TestReceiver::fixed(40.1, -88.2, 12.0)))
            .with_nmea_fault(Box::new(|burst: String| {
                // Truncate mid-sentence: the RMC line never survives.
                burst[..burst.len().min(10)].to_string()
            }))
            .build()
            .unwrap();
        assert_eq!(
            world.smc_invoke(GPS_SAMPLER_UUID, CMD_GET_GPS_AUTH, &[]),
            Err(TeeError::MalformedData("nmea parse"))
        );
    }

    #[test]
    fn corrupt_stored_object_surfaces_as_typed_error_downstream() {
        use crate::CMD_CACHE_SAMPLE;
        let world = world_with_gps();
        world
            .smc_invoke(GPS_SAMPLER_UUID, CMD_CACHE_SAMPLE, &[])
            .unwrap();
        // Truncating corruption: drop the cache to a non-24-aligned
        // length by tampering is not possible via bit flips, so flip a
        // coordinate byte instead and check the signed trace no longer
        // matches the clean sample.
        world
            .corrupt_stored_object("gps-sampler/trace-cache", 3, 0xFF)
            .unwrap();
        let out = world
            .smc_invoke(GPS_SAMPLER_UUID, crate::CMD_SIGN_TRACE, &[])
            .unwrap();
        let trace_bytes = out[0].as_bytes().unwrap();
        let clean = world
            .smc_invoke(GPS_SAMPLER_UUID, crate::CMD_READ_GPS_RAW, &[])
            .unwrap();
        assert_ne!(trace_bytes[..24], clean[0].as_bytes().unwrap()[..]);
        assert_eq!(
            world.corrupt_stored_object("nope", 0, 1),
            Err(TeeError::ItemNotFound)
        );
    }
}
