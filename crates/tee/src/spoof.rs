//! GPS-spoofing detection inside the secure world (paper §VII-A2).
//!
//! The paper's limitation discussion proposes "embedding the GPS
//! spoofing detector into the secure world. If the hardware is running
//! in a suspicious environment, the GPS Sampler can decline to provide
//! authenticity services." This module provides that hook: a
//! [`SpoofDetector`] consulted by the GPS Sampler TA before every
//! signature, plus a concrete [`PlausibilityDetector`] implementing the
//! classic consistency checks real detectors use (signal-free here:
//! kinematic plausibility of the fix stream).

use std::fmt;

use alidrone_geo::{Speed, FAA_MAX_SPEED};
use alidrone_gps::GpsFix;
use std::sync::Mutex;

/// The detector's judgement of the current environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Nothing suspicious: authenticity services continue.
    Trusted,
    /// Spoofing suspected: the sampler declines to sign.
    Suspicious,
}

/// A spoofing detector running inside the secure world.
///
/// Implementations observe every fix the GPS driver parses and judge
/// whether the receiver is being manipulated. The GPS Sampler refuses
/// `GetGPSAuth` while the environment is [`Environment::Suspicious`].
pub trait SpoofDetector: Send + Sync {
    /// Observes a fix and returns the current judgement.
    fn observe(&self, fix: &GpsFix) -> Environment;
}

/// A detector that never suspects anything (the paper's baseline: GPS
/// spoofing is outside the threat model).
#[derive(Debug, Default, Clone, Copy)]
pub struct TrustingDetector;

impl SpoofDetector for TrustingDetector {
    fn observe(&self, _fix: &GpsFix) -> Environment {
        Environment::Trusted
    }
}

/// Kinematic plausibility checks over the fix stream:
///
/// * **Teleportation** — implied speed between consecutive fixes above a
///   configurable multiple of `v_max` (spoofers that jump the position).
/// * **Time reversal** — fix timestamps running backwards.
/// * **Reported-speed mismatch** — receiver-reported ground speed far
///   from the position-derived speed.
///
/// Once tripped, the detector stays latched suspicious (a conservative
/// policy: a spoofed enclave cannot un-suspect itself; recovery requires
/// re-provisioning, which is out of scope).
pub struct PlausibilityDetector {
    max_speed: Speed,
    speed_slack: f64,
    state: Mutex<DetectorState>,
}

#[derive(Debug, Default)]
struct DetectorState {
    last: Option<GpsFix>,
    latched: bool,
    trip_count: u64,
}

impl PlausibilityDetector {
    /// Creates a detector with the FAA `v_max` bound and 3x headroom for
    /// GPS noise.
    pub fn new() -> Self {
        Self::with_limits(FAA_MAX_SPEED, 3.0)
    }

    /// Creates a detector with an explicit speed bound and headroom
    /// multiplier.
    pub fn with_limits(max_speed: Speed, speed_slack: f64) -> Self {
        PlausibilityDetector {
            max_speed,
            speed_slack: speed_slack.max(1.0),
            state: Mutex::new(DetectorState::default()),
        }
    }

    /// How many plausibility violations have been observed.
    pub fn trip_count(&self) -> u64 {
        self.state.lock().unwrap().trip_count
    }
}

impl Default for PlausibilityDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpoofDetector for PlausibilityDetector {
    fn observe(&self, fix: &GpsFix) -> Environment {
        let mut st = self.state.lock().unwrap();
        if st.latched {
            return Environment::Suspicious;
        }
        let mut suspicious = false;
        if let Some(last) = &st.last {
            if fix.sequence != last.sequence {
                let dt = fix.sample.time().since(last.sample.time()).secs();
                if dt < 0.0 {
                    suspicious = true; // time reversal
                } else if dt > 0.0 {
                    let d = last
                        .sample
                        .point()
                        .distance_to(&fix.sample.point())
                        .meters();
                    let implied = d / dt;
                    if implied > self.max_speed.mps() * self.speed_slack {
                        suspicious = true; // teleportation
                    }
                    // Reported-speed mismatch: only meaningful when both
                    // speeds are substantial.
                    let reported = fix.speed.mps();
                    if implied > 5.0
                        && reported > 5.0
                        && (implied / reported > 20.0 || reported / implied > 20.0)
                    {
                        suspicious = true;
                    }
                }
            }
        }
        st.last = Some(*fix);
        if suspicious {
            st.latched = true;
            st.trip_count += 1;
            Environment::Suspicious
        } else {
            Environment::Trusted
        }
    }
}

impl fmt::Debug for PlausibilityDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock().unwrap();
        f.debug_struct("PlausibilityDetector")
            .field("latched", &st.latched)
            .field("trip_count", &st.trip_count)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::{Distance, GeoPoint, GpsSample, Timestamp};

    fn fix(east_m: f64, t: f64, seq: u64, speed_mps: f64) -> GpsFix {
        let origin = GeoPoint::new(40.0, -88.0).unwrap();
        GpsFix {
            sample: GpsSample::new(
                origin.destination(90.0, Distance::from_meters(east_m)),
                Timestamp::from_secs(t),
            ),
            speed: Speed::from_mps(speed_mps),
            sequence: seq,
        }
    }

    #[test]
    fn trusting_detector_never_suspects() {
        let d = TrustingDetector;
        assert_eq!(d.observe(&fix(0.0, 0.0, 0, 0.0)), Environment::Trusted);
        assert_eq!(d.observe(&fix(1.0e6, 0.1, 1, 0.0)), Environment::Trusted);
    }

    #[test]
    fn plausible_stream_stays_trusted() {
        let d = PlausibilityDetector::new();
        for k in 0..50 {
            let f = fix(k as f64 * 2.0, k as f64 * 0.2, k, 10.0);
            assert_eq!(d.observe(&f), Environment::Trusted, "fix {k}");
        }
        assert_eq!(d.trip_count(), 0);
    }

    #[test]
    fn teleportation_latches_suspicious() {
        let d = PlausibilityDetector::new();
        assert_eq!(d.observe(&fix(0.0, 0.0, 0, 10.0)), Environment::Trusted);
        // 10 km in 0.2 s: 50 km/s.
        assert_eq!(
            d.observe(&fix(10_000.0, 0.2, 1, 10.0)),
            Environment::Suspicious
        );
        // Latched: even a plausible follow-up stays suspicious.
        assert_eq!(
            d.observe(&fix(10_002.0, 0.4, 2, 10.0)),
            Environment::Suspicious
        );
        assert_eq!(d.trip_count(), 1);
    }

    #[test]
    fn time_reversal_detected() {
        let d = PlausibilityDetector::new();
        d.observe(&fix(0.0, 10.0, 0, 0.0));
        assert_eq!(d.observe(&fix(1.0, 9.0, 1, 0.0)), Environment::Suspicious);
    }

    #[test]
    fn reported_speed_mismatch_detected() {
        let d = PlausibilityDetector::new();
        d.observe(&fix(0.0, 0.0, 0, 40.0));
        // Moving 40 m/s by position, but the receiver claims 4000 m/s?
        // No — mismatch the other way: position implies 40 m/s while
        // receiver reports 4000 m/s (ratio 100 > 20).
        assert_eq!(
            d.observe(&fix(40.0, 1.0, 1, 4_000.0)),
            Environment::Suspicious
        );
    }

    #[test]
    fn repeated_fix_not_judged() {
        // A dropout repeats the same sequence number: no judgement.
        let d = PlausibilityDetector::new();
        let f = fix(0.0, 0.0, 0, 10.0);
        d.observe(&f);
        assert_eq!(d.observe(&f), Environment::Trusted);
    }

    #[test]
    fn headroom_allows_fast_but_legal_motion() {
        // 2x v_max (GPS noise spike) is within the 3x headroom.
        let d = PlausibilityDetector::new();
        d.observe(&fix(0.0, 0.0, 0, 44.0));
        let two_vmax = FAA_MAX_SPEED.mps() * 2.0;
        assert_eq!(
            d.observe(&fix(two_vmax, 1.0, 1, 44.0)),
            Environment::Trusted
        );
    }
}
