//! Error type mirroring GlobalPlatform `TEE_Result` codes.

use std::error::Error;
use std::fmt;

/// Errors surfaced across the (modelled) world boundary.
///
/// Variants mirror the GlobalPlatform `TEE_ERROR_*` codes the OP-TEE
/// client API would return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// `TEE_ERROR_ITEM_NOT_FOUND` — no trusted application with the
    /// requested UUID, or no stored object with the requested id.
    ItemNotFound,
    /// `TEE_ERROR_BAD_PARAMETERS` — wrong parameter types or counts for a
    /// command.
    BadParameters(&'static str),
    /// `TEE_ERROR_NOT_SUPPORTED` — unknown command id.
    NotSupported(u32),
    /// `TEE_ERROR_NO_DATA` — e.g. the GPS receiver has no fix yet.
    NoData,
    /// `TEE_ERROR_ACCESS_DENIED` — operation not permitted from the
    /// normal world.
    AccessDenied,
    /// `TEE_ERROR_GENERIC` wrapping a crypto failure inside the TEE.
    CryptoFailure(String),
    /// The secure world was configured without a required component.
    MissingComponent(&'static str),
    /// A signature presented for verification did not verify.
    SignatureInvalid,
    /// Malformed serialized data crossing the boundary.
    MalformedData(&'static str),
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::ItemNotFound => write!(f, "item not found"),
            TeeError::BadParameters(what) => write!(f, "bad parameters: {what}"),
            TeeError::NotSupported(cmd) => write!(f, "command {cmd} not supported"),
            TeeError::NoData => write!(f, "no data available"),
            TeeError::AccessDenied => write!(f, "access denied"),
            TeeError::CryptoFailure(e) => write!(f, "crypto failure in secure world: {e}"),
            TeeError::MissingComponent(c) => write!(f, "secure world missing component: {c}"),
            TeeError::SignatureInvalid => write!(f, "signature verification failed"),
            TeeError::MalformedData(what) => write!(f, "malformed data: {what}"),
        }
    }
}

impl Error for TeeError {}

impl From<alidrone_crypto::CryptoError> for TeeError {
    fn from(e: alidrone_crypto::CryptoError) -> Self {
        TeeError::CryptoFailure(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            TeeError::ItemNotFound,
            TeeError::BadParameters("x"),
            TeeError::NotSupported(9),
            TeeError::NoData,
            TeeError::AccessDenied,
            TeeError::CryptoFailure("boom".into()),
            TeeError::MissingComponent("gps"),
            TeeError::SignatureInvalid,
            TeeError::MalformedData("short"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_crypto_error() {
        let e: TeeError = alidrone_crypto::CryptoError::DecryptionFailed.into();
        assert!(matches!(e, TeeError::CryptoFailure(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TeeError>();
    }
}
