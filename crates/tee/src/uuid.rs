//! Trusted-application UUIDs.

use std::fmt;
use std::str::FromStr;

use crate::TeeError;

/// A 128-bit UUID identifying a trusted application (paper §II-C: "every
/// TA is assigned a unique UUID").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid(u128);

impl Uuid {
    /// Creates a UUID from its 128-bit value.
    pub const fn from_u128(v: u128) -> Self {
        Uuid(v)
    }

    /// The 128-bit value.
    pub const fn as_u128(&self) -> u128 {
        self.0
    }

    /// The big-endian byte representation.
    pub fn to_bytes(&self) -> [u8; 16] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.to_bytes();
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15],
        )
    }
}

impl FromStr for Uuid {
    type Err = TeeError;

    /// Parses the canonical `8-4-4-4-12` hex form.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 || s.split('-').count() != 5 {
            return Err(TeeError::MalformedData("uuid format"));
        }
        let v = u128::from_str_radix(&hex, 16).map_err(|_| TeeError::MalformedData("uuid hex"))?;
        Ok(Uuid(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let u = Uuid::from_u128(0x8aaaf200_2450_11e4_abe2_0002a5d5c51b);
        let s = u.to_string();
        assert_eq!(s, "8aaaf200-2450-11e4-abe2-0002a5d5c51b");
        assert_eq!(s.parse::<Uuid>().unwrap(), u);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("not-a-uuid".parse::<Uuid>().is_err());
        assert!("8aaaf200245011e4abe20002a5d5c51b".parse::<Uuid>().is_err());
        assert!("8aaaf200-2450-11e4-abe2-0002a5d5c51z"
            .parse::<Uuid>()
            .is_err());
    }

    #[test]
    fn bytes_are_big_endian() {
        let u = Uuid::from_u128(1);
        let b = u.to_bytes();
        assert_eq!(b[15], 1);
        assert!(b[..15].iter().all(|&x| x == 0));
    }
}
