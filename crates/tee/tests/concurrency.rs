//! Concurrency tests: the secure world is shared state — the Adapter,
//! a telemetry daemon, and diagnostics can all hold sessions at once.
//! The model must stay consistent under parallel invocation (the real
//! OP-TEE serialises entries into the TA; our model's locks play that
//! role).

use std::sync::Arc;

use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::{GeoPoint, GpsSample, Speed, Timestamp};
use alidrone_gps::{GpsDevice, GpsFix};
use alidrone_tee::{CostModel, SecureWorldBuilder, GPS_SAMPLER_UUID};

struct FixedReceiver;

impl GpsDevice for FixedReceiver {
    fn latest_fix(&self) -> Option<GpsFix> {
        Some(GpsFix {
            sample: GpsSample::new(
                GeoPoint::new(40.0, -88.0).expect("valid"),
                Timestamp::from_secs(1.0),
            ),
            speed: Speed::from_mps(0.0),
            sequence: 0,
        })
    }

    fn update_rate_hz(&self) -> f64 {
        5.0
    }
}

fn key() -> RsaPrivateKey {
    let mut rng = XorShift64::seed_from_u64(0xC0C0);
    RsaPrivateKey::generate(512, &mut rng)
}

#[test]
fn parallel_get_gps_auth_is_consistent() {
    let world = SecureWorldBuilder::new()
        .with_sign_key(key())
        .with_gps_device(Box::new(FixedReceiver))
        .with_cost_model(CostModel::raspberry_pi_3())
        .build()
        .unwrap();
    let client = world.client();
    let pk = Arc::new(client.tee_public_key());

    const THREADS: usize = 8;
    const PER_THREAD: usize = 20;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let client = client.clone();
            let pk = Arc::clone(&pk);
            s.spawn(move || {
                let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
                for _ in 0..PER_THREAD {
                    let signed = session.get_gps_auth().unwrap();
                    signed.verify(&pk).unwrap();
                }
            });
        }
    });

    let snap = world.ledger().snapshot();
    assert_eq!(snap.signatures, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.gps_reads, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.world_switches, 2 * (THREADS * PER_THREAD) as u64);
    // Busy time adds up exactly (no lost updates under contention).
    let model = world.cost_model();
    let expected = model.get_gps_auth_cost(512).secs() * (THREADS * PER_THREAD) as f64;
    assert!((snap.busy.secs() - expected).abs() < 1e-6);
}

#[test]
fn parallel_batch_caching_counts_every_sample() {
    let world = SecureWorldBuilder::new()
        .with_sign_key(key())
        .with_gps_device(Box::new(FixedReceiver))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let client = world.client();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 25;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let client = client.clone();
            s.spawn(move || {
                let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
                for _ in 0..PER_THREAD {
                    session.cache_sample().unwrap();
                }
            });
        }
    });

    let session = client.open_session(GPS_SAMPLER_UUID).unwrap();
    let trace = session.sign_trace().unwrap();
    assert_eq!(trace.samples().len(), THREADS * PER_THREAD);
    trace.verify(&client.tee_public_key()).unwrap();
}

#[test]
fn sessions_are_independently_cloneable() {
    let world = SecureWorldBuilder::new()
        .with_sign_key(key())
        .with_gps_device(Box::new(FixedReceiver))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    let client = world.client();
    let s1 = client.open_session(GPS_SAMPLER_UUID).unwrap();
    let s2 = s1.clone();
    let a = s1.get_gps_auth().unwrap();
    let b = s2.get_gps_auth().unwrap();
    // Same fix, same deterministic signature.
    assert_eq!(a, b);
}
