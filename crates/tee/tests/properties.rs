//! Property-based tests for the TEE wire formats and UUIDs.

use alidrone_crypto::rsa::HashAlg;
use alidrone_geo::{GeoPoint, GpsSample, Timestamp};
use alidrone_tee::{SignedSample, SignedTrace, TeeError, Uuid};
use proptest::prelude::*;

prop_compose! {
    fn arb_sample()(
        lat in -89.9..89.9f64,
        lon in -179.9..179.9f64,
        t in -1.0e6..1.0e6f64,
    ) -> GpsSample {
        GpsSample::new(GeoPoint::new(lat, lon).expect("in range"), Timestamp::from_secs(t))
    }
}

proptest! {
    /// SignedSample wire format round-trips for arbitrary contents.
    #[test]
    fn signed_sample_round_trip(
        sample in arb_sample(),
        sig in prop::collection::vec(any::<u8>(), 0..300),
        sha256 in any::<bool>(),
    ) {
        let alg = if sha256 { HashAlg::Sha256 } else { HashAlg::Sha1 };
        let s = SignedSample::from_parts(sample, sig, alg);
        let rt = SignedSample::from_bytes(&s.to_bytes()).unwrap();
        prop_assert_eq!(s, rt);
    }

    /// Arbitrary bytes never panic the SignedSample / SignedTrace parsers.
    #[test]
    fn parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = SignedSample::from_bytes(&bytes);
        let _ = SignedTrace::from_parts(bytes.clone(), vec![1, 2], HashAlg::Sha1);
    }

    /// Truncating a serialized SignedSample is always detected.
    #[test]
    fn truncation_always_detected(sample in arb_sample(), cut_frac in 0.0..0.99f64) {
        let s = SignedSample::from_parts(sample, vec![0xAB; 64], HashAlg::Sha1);
        let bytes = s.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(SignedSample::from_bytes(&bytes[..cut]).is_err());
    }

    /// SignedTrace accepts exactly 24-byte-aligned non-empty payloads of
    /// valid samples and decodes every one.
    #[test]
    fn trace_alignment_enforced(samples in prop::collection::vec(arb_sample(), 1..20)) {
        let mut bytes: Vec<u8> = samples.iter().flat_map(|s| s.to_bytes()).collect();
        let trace = SignedTrace::from_parts(bytes.clone(), vec![9; 8], HashAlg::Sha1).unwrap();
        prop_assert_eq!(trace.samples(), &samples[..]);
        // One stray byte breaks alignment.
        bytes.push(0);
        prop_assert_eq!(
            SignedTrace::from_parts(bytes, vec![9; 8], HashAlg::Sha1).err(),
            Some(TeeError::MalformedData("trace length not 24-byte aligned"))
        );
    }

    /// UUID display/parse round trip over arbitrary 128-bit values.
    #[test]
    fn uuid_round_trip(v in any::<u128>()) {
        let u = Uuid::from_u128(v);
        prop_assert_eq!(u.to_string().parse::<Uuid>().unwrap(), u);
    }
}
