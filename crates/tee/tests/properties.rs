//! Randomized tests for the TEE wire formats and UUIDs.
//!
//! Inputs come from a seeded deterministic stream (no `proptest` — the
//! offline build has no crates.io), so failures reproduce exactly.

use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_crypto::rsa::HashAlg;
use alidrone_geo::{GeoPoint, GpsSample, Timestamp};
use alidrone_tee::{SignedSample, SignedTrace, TeeError, Uuid};

const CASES: usize = 128;

fn in_range(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

fn arb_sample(rng: &mut XorShift64) -> GpsSample {
    let lat = in_range(rng, -89.9, 89.9);
    let lon = in_range(rng, -179.9, 179.9);
    let t = in_range(rng, -1.0e6, 1.0e6);
    GpsSample::new(
        GeoPoint::new(lat, lon).expect("in range"),
        Timestamp::from_secs(t),
    )
}

fn arb_bytes(rng: &mut XorShift64, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range_u64(max_len as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// SignedSample wire format round-trips for arbitrary contents.
#[test]
fn signed_sample_round_trip() {
    let mut rng = XorShift64::seed_from_u64(301);
    for _ in 0..CASES {
        let sample = arb_sample(&mut rng);
        let sig = arb_bytes(&mut rng, 300);
        let alg = if rng.gen_bool() {
            HashAlg::Sha256
        } else {
            HashAlg::Sha1
        };
        let s = SignedSample::from_parts(sample, sig, alg);
        let rt = SignedSample::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, rt);
    }
}

/// Arbitrary bytes never panic the SignedSample / SignedTrace parsers.
#[test]
fn parsers_never_panic() {
    let mut rng = XorShift64::seed_from_u64(302);
    for _ in 0..CASES {
        let bytes = arb_bytes(&mut rng, 200);
        let _ = SignedSample::from_bytes(&bytes);
        let _ = SignedTrace::from_parts(bytes.clone(), vec![1, 2], HashAlg::Sha1);
    }
}

/// Truncating a serialized SignedSample is always detected.
#[test]
fn truncation_always_detected() {
    let mut rng = XorShift64::seed_from_u64(303);
    for _ in 0..CASES {
        let sample = arb_sample(&mut rng);
        let cut_frac = in_range(&mut rng, 0.0, 0.99);
        let s = SignedSample::from_parts(sample, vec![0xAB; 64], HashAlg::Sha1);
        let bytes = s.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        assert!(SignedSample::from_bytes(&bytes[..cut]).is_err());
    }
}

/// SignedTrace accepts exactly 24-byte-aligned non-empty payloads of
/// valid samples and decodes every one.
#[test]
fn trace_alignment_enforced() {
    let mut rng = XorShift64::seed_from_u64(304);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range_u64(19) as usize;
        let samples: Vec<GpsSample> = (0..n).map(|_| arb_sample(&mut rng)).collect();
        let mut bytes: Vec<u8> = samples.iter().flat_map(|s| s.to_bytes()).collect();
        let trace = SignedTrace::from_parts(bytes.clone(), vec![9; 8], HashAlg::Sha1).unwrap();
        assert_eq!(trace.samples(), &samples[..]);
        // One stray byte breaks alignment.
        bytes.push(0);
        assert_eq!(
            SignedTrace::from_parts(bytes, vec![9; 8], HashAlg::Sha1).err(),
            Some(TeeError::MalformedData("trace length not 24-byte aligned"))
        );
    }
}

/// UUID display/parse round trip over arbitrary 128-bit values.
#[test]
fn uuid_round_trip() {
    let mut rng = XorShift64::seed_from_u64(305);
    for _ in 0..CASES {
        let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let u = Uuid::from_u128(v);
        assert_eq!(u.to_string().parse::<Uuid>().unwrap(), u);
    }
}
