//! TEE-path costs: `GetGPSAuth` end to end (the per-sample cost whose
//! RPi3-calibrated counterpart drives Table II), and the §VII-A1
//! ablations — batch signing and symmetric authentication.

use std::sync::Arc;

use alidrone_bench::bench_key;
use alidrone_bench::harness::{BenchmarkId, Criterion};
use alidrone_bench::{criterion_group, criterion_main};
use alidrone_core::symmetric::establish_flight_key;
use alidrone_crypto::dh::DhGroup;
use alidrone_crypto::rng::XorShift64;
use alidrone_geo::trajectory::TrajectoryBuilder;
use alidrone_geo::{Distance, GeoPoint, GpsSample, Speed, Timestamp};
use alidrone_gps::{SimClock, SimulatedReceiver};
use alidrone_tee::{CostModel, SecureWorldBuilder, TeeSession, GPS_SAMPLER_UUID};

fn session(bits: usize) -> (SimClock, TeeSession) {
    let a = GeoPoint::new(40.1164, -88.2434).unwrap();
    let b = a.destination(90.0, Distance::from_km(100.0));
    let traj = TrajectoryBuilder::start_at(a)
        .travel_to(b, Speed::from_mph(30.0))
        .build()
        .unwrap();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0));
    let world = SecureWorldBuilder::new()
        .with_sign_key(bench_key(bits).clone())
        .with_gps_device(Box::new(receiver))
        .with_cost_model(CostModel::free())
        .build()
        .unwrap();
    clock.advance(alidrone_geo::Duration::from_secs(1.0));
    let s = world.client().open_session(GPS_SAMPLER_UUID).unwrap();
    (clock, s)
}

fn get_gps_auth(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_gps_auth");
    group.sample_size(10);
    for bits in [512usize, 1024, 2048] {
        let (_clock, s) = session(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| s.get_gps_auth().unwrap());
        });
    }
    group.finish();
}

fn read_gps_raw(c: &mut Criterion) {
    // The NMEA round trip + dispatch without the signature: isolates the
    // non-crypto part of the per-sample cost.
    let (_clock, s) = session(512);
    c.bench_function("read_gps_raw_nmea_roundtrip", |b| {
        b.iter(|| s.read_gps_raw().unwrap());
    });
}

fn batch_vs_individual(c: &mut Criterion) {
    // §VII-A1b ablation: N individual signatures vs N cached samples +
    // one trace signature.
    let mut group = c.benchmark_group("auth_30_samples");
    group.sample_size(10);
    for bits in [512usize, 1024] {
        group.bench_with_input(BenchmarkId::new("individual", bits), &bits, |b, _| {
            let (_clock, s) = session(bits);
            b.iter(|| {
                for _ in 0..30 {
                    s.get_gps_auth().unwrap();
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", bits), &bits, |b, _| {
            let (_clock, s) = session(bits);
            b.iter(|| {
                for _ in 0..30 {
                    s.cache_sample().unwrap();
                }
                s.sign_trace().unwrap()
            });
        });
    }
    group.finish();
}

fn symmetric_session(c: &mut Criterion) {
    // §VII-A1a ablation: per-flight DH setup amortised over per-sample
    // HMAC authentication.
    let mut rng = XorShift64::seed_from_u64(5);
    let group_params = DhGroup::test_512();
    c.bench_function("flight_key_exchange", |b| {
        b.iter(|| establish_flight_key(&group_params, &mut rng).unwrap());
    });
    let (drone, _auditor) = establish_flight_key(&group_params, &mut rng).unwrap();
    let sample = GpsSample::new(
        GeoPoint::new(40.0, -88.0).unwrap(),
        Timestamp::from_secs(1.0),
    );
    c.bench_function("hmac_authenticate_sample", |b| {
        b.iter(|| drone.authenticate(sample));
    });
}

criterion_group!(
    benches,
    get_gps_auth,
    read_gps_raw,
    batch_vs_individual,
    symmetric_session
);
criterion_main!(benches);
