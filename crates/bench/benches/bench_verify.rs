//! Auditor-side verification throughput: the full PoA pipeline
//! (signatures → monotonicity → coverage → feasibility → eq. 1) as a
//! function of trace length and zone count, plus encrypted submission.

use alidrone_bench::bench_key;
use alidrone_bench::harness::{BenchmarkId, Criterion};
use alidrone_bench::{criterion_group, criterion_main};
use alidrone_core::{Auditor, AuditorConfig, PoaSubmission, ProofOfAlibi, Submission};
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::HashAlg;
use alidrone_geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp};
use alidrone_tee::SignedSample;

fn origin() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

fn signed_trace(n: usize) -> ProofOfAlibi {
    let key = bench_key(512);
    (0..n)
        .map(|i| {
            let s = GpsSample::new(
                origin().destination(90.0, Distance::from_meters(i as f64 * 5.0)),
                Timestamp::from_secs(i as f64),
            );
            let sig = key.sign(&s.to_bytes(), HashAlg::Sha1).unwrap();
            SignedSample::from_parts(s, sig, HashAlg::Sha1)
        })
        .collect()
}

fn auditor_with(zones: usize) -> Auditor {
    let a = Auditor::new(AuditorConfig::default(), bench_key(512).clone());
    for i in 0..zones {
        let bearing = (i as f64 * 137.5) % 360.0;
        a.register_zone(NoFlyZone::new(
            origin().destination(bearing, Distance::from_km(20.0 + i as f64)),
            Distance::from_feet(20.0),
        ));
    }
    a
}

fn verify_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_submission");
    group.sample_size(10);
    for (len, zones) in [(50usize, 1usize), (50, 100), (500, 1), (500, 100)] {
        let poa = signed_trace(len);
        let submission = Submission::plain(PoaSubmission {
            drone_id: alidrone_core::DroneId::new(1),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs((len - 1) as f64),
            poa,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{len}samples_{zones}zones")),
            &(),
            |b, _| {
                b.iter_batched(
                    || {
                        let a = auditor_with(zones);
                        a.register_drone(
                            bench_key(512).public_key().clone(),
                            bench_key(512).public_key().clone(),
                        );
                        a
                    },
                    |a| a.verify(&submission, Timestamp::from_secs(0.0)).unwrap(),
                    alidrone_bench::harness::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn encrypted_round_trip(c: &mut Criterion) {
    // The Adapter-side encryption + auditor-side decryption of a PoA
    // (paper §V-C / §IV-C2).
    let mut group = c.benchmark_group("poa_encryption");
    group.sample_size(10);
    let poa = signed_trace(50);
    let key = bench_key(512);
    let mut rng = XorShift64::seed_from_u64(9);
    group.bench_function("encrypt_50_samples", |b| {
        b.iter(|| poa.encrypt(key.public_key(), &mut rng).unwrap());
    });
    let enc = poa.encrypt(key.public_key(), &mut rng).unwrap();
    group.bench_function("decrypt_50_samples", |b| {
        b.iter(|| enc.decrypt(key).unwrap());
    });
    group.finish();
}

fn wire_codec(c: &mut Criterion) {
    let poa = signed_trace(500);
    let bytes = poa.to_bytes();
    c.bench_function("poa_serialize_500", |b| b.iter(|| poa.to_bytes()));
    c.bench_function("poa_parse_500", |b| {
        b.iter(|| ProofOfAlibi::from_bytes(&bytes).unwrap())
    });
}

criterion_group!(benches, verify_submission, encrypted_round_trip, wire_codec);
criterion_main!(benches);
