//! Primitive crypto costs — the machine-local ground truth behind the
//! Table II cost model: RSA signing dominates the per-sample cost, and
//! the 2048/1024-bit ratio (~5x with CRT) is what makes 2048-bit keys
//! unable to sustain 5 Hz.

use alidrone_bench::bench_key;
use alidrone_bench::harness::{BenchmarkId, Criterion, Throughput};
use alidrone_bench::{criterion_group, criterion_main};
use alidrone_crypto::chacha20::chacha20_encrypt;
use alidrone_crypto::hmac::hmac_sha256;
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::HashAlg;
use alidrone_crypto::sha1::sha1;
use alidrone_crypto::sha256::sha256;

/// A GPS-sample-sized message (24 bytes), the unit the TEE signs.
const SAMPLE: [u8; 24] = [0x42; 24];

fn rsa_sign(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_sign_sha1");
    group.sample_size(10);
    for bits in [512usize, 1024, 2048] {
        let key = bench_key(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| key.sign(&SAMPLE, HashAlg::Sha1).unwrap());
        });
    }
    group.finish();
}

fn rsa_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa_verify_sha1");
    for bits in [512usize, 1024, 2048] {
        let key = bench_key(bits);
        let sig = key.sign(&SAMPLE, HashAlg::Sha1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                key.public_key()
                    .verify(&SAMPLE, &sig, HashAlg::Sha1)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn rsa_encrypt_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsaes_pkcs1_v15");
    group.sample_size(10);
    for bits in [512usize, 1024] {
        let key = bench_key(bits);
        let mut rng = XorShift64::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            b.iter(|| key.public_key().encrypt(&SAMPLE, &mut rng).unwrap());
        });
        let ct = key.public_key().encrypt(&SAMPLE, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("decrypt", bits), &bits, |b, _| {
            b.iter(|| key.decrypt(&ct).unwrap());
        });
    }
    group.finish();
}

fn hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_1kib");
    let data = vec![0xA5u8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha1", |b| b.iter(|| sha1(&data)));
    group.bench_function("sha256", |b| b.iter(|| sha256(&data)));
    group.bench_function("hmac_sha256", |b| b.iter(|| hmac_sha256(b"key", &data)));
    group.finish();
}

fn symmetric_vs_asymmetric_per_sample(c: &mut Criterion) {
    // The §VII-A1a ablation at the primitive level: authenticating one
    // GPS sample with HMAC vs RSA.
    let mut group = c.benchmark_group("per_sample_auth");
    group.sample_size(10);
    let key1024 = bench_key(1024);
    group.bench_function("rsa_1024", |b| {
        b.iter(|| key1024.sign(&SAMPLE, HashAlg::Sha1).unwrap());
    });
    group.bench_function("hmac", |b| b.iter(|| hmac_sha256(&[7u8; 32], &SAMPLE)));
    let key = [9u8; 32];
    let nonce = [3u8; 12];
    group.bench_function("chacha20_seal", |b| {
        b.iter(|| chacha20_encrypt(&key, &nonce, &SAMPLE))
    });
    group.finish();
}

criterion_group!(
    benches,
    rsa_sign,
    rsa_verify,
    rsa_encrypt_decrypt,
    hashes,
    symmetric_vs_asymmetric_per_sample
);
criterion_main!(benches);
