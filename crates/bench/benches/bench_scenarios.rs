//! End-to-end field-study pipelines — the Criterion counterpart of the
//! `exp_fig6` / `exp_fig8` binaries: each measurement runs the complete
//! scenario (receiver → TEE → sampler → PoA) under one strategy.

use alidrone_bench::bench_key;
use alidrone_bench::harness::{BenchmarkId, Criterion};
use alidrone_bench::{criterion_group, criterion_main};
use alidrone_core::SamplingStrategy;
use alidrone_sim::runner::run_scenario;
use alidrone_sim::scenarios::{airport, residential};
use alidrone_tee::CostModel;

fn fig6_airport(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_airport");
    group.sample_size(10);
    let scenario = airport();
    for (name, strategy) in [
        ("fixed_1hz", SamplingStrategy::FixedRate(1.0)),
        ("adaptive", SamplingStrategy::Adaptive),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                run_scenario(
                    &scenario,
                    strategy,
                    bench_key(512).clone(),
                    CostModel::free(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn fig8_residential(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_residential");
    group.sample_size(10);
    let scenario = residential();
    for (name, strategy) in [
        ("fixed_2hz", SamplingStrategy::FixedRate(2.0)),
        ("fixed_3hz", SamplingStrategy::FixedRate(3.0)),
        ("fixed_5hz", SamplingStrategy::FixedRate(5.0)),
        ("adaptive", SamplingStrategy::Adaptive),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                run_scenario(
                    &scenario,
                    strategy,
                    bench_key(512).clone(),
                    CostModel::free(),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig6_airport, fig8_residential);
criterion_main!(benches);
