//! Geometry costs: the per-update work of the Adapter (nearest zone +
//! boundary distances) and the auditor (sufficiency predicates), plus
//! the paper-vs-exact criterion ablation and Welzl's algorithm.

use alidrone_bench::harness::{BenchmarkId, Criterion};
use alidrone_bench::{criterion_group, criterion_main};
use alidrone_geo::polygon::smallest_enclosing_circle;
use alidrone_geo::sufficiency::{pair_is_sufficient, pair_is_sufficient_exact};
use alidrone_geo::{
    Distance, Enu, GeoPoint, GpsSample, NoFlyZone, Timestamp, ZoneSet, FAA_MAX_SPEED,
};

fn origin() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).unwrap()
}

fn zone_set(n: usize) -> ZoneSet {
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 137.5) % 360.0;
            let dist = 100.0 + (i as f64 * 53.0) % 5_000.0;
            NoFlyZone::new(
                origin().destination(bearing, Distance::from_meters(dist)),
                Distance::from_feet(20.0),
            )
        })
        .collect()
}

fn nearest_zone_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_zone");
    let p = origin().destination(45.0, Distance::from_meters(321.0));
    for n in [1usize, 10, 100, 1_000] {
        let zones = zone_set(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| zones.nearest(&p).is_some());
        });
    }
    group.finish();
}

fn sufficiency_criteria(c: &mut Criterion) {
    // Paper criterion is O(1); the exact test pays a ternary search. This
    // ablation quantifies what the conservative shortcut buys.
    let mut group = c.benchmark_group("pair_sufficiency");
    let zone = NoFlyZone::new(
        origin().destination(0.0, Distance::from_meters(120.0)),
        Distance::from_meters(30.0),
    );
    let s1 = GpsSample::new(origin(), Timestamp::from_secs(0.0));
    let s2 = GpsSample::new(
        origin().destination(90.0, Distance::from_meters(40.0)),
        Timestamp::from_secs(2.0),
    );
    group.bench_function("paper_criterion", |b| {
        b.iter(|| pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED));
    });
    group.bench_function("exact_ellipse", |b| {
        b.iter(|| pair_is_sufficient_exact(&s1, &s2, &zone, FAA_MAX_SPEED));
    });
    group.finish();
}

fn alibi_check_scaling(c: &mut Criterion) {
    // Auditor-side eq. (1) over a whole trace: length × zone-count grid.
    let mut group = c.benchmark_group("check_alibi");
    group.sample_size(20);
    for (len, zones_n) in [(100usize, 10usize), (100, 100), (1_000, 10), (1_000, 100)] {
        let zones = zone_set(zones_n);
        let trace: Vec<GpsSample> = (0..len)
            .map(|i| {
                GpsSample::new(
                    origin().destination(90.0, Distance::from_meters(i as f64 * 2.0)),
                    Timestamp::from_secs(i as f64 * 0.2),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{len}samples_{zones_n}zones")),
            &(),
            |b, _| {
                b.iter(|| {
                    alidrone_geo::sufficiency::check_alibi(
                        &trace,
                        &zones,
                        FAA_MAX_SPEED,
                        alidrone_geo::sufficiency::Criterion::Paper,
                    )
                });
            },
        );
    }
    group.finish();
}

fn welzl(c: &mut Criterion) {
    // §VII-B2: polygon-zone registration cost ("can be solved in linear
    // time … the computation … only happens once at registration").
    let mut group = c.benchmark_group("smallest_enclosing_circle");
    for n in [10usize, 100, 1_000] {
        let mut state: u64 = 99;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 1_000.0
        };
        let pts: Vec<Enu> = (0..n).map(|_| Enu::new(next(), next())).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| smallest_enclosing_circle(&pts));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    nearest_zone_query,
    sufficiency_criteria,
    alibi_check_scaling,
    welzl
);
criterion_main!(benches);
