//! A minimal Criterion-compatible benchmark harness.
//!
//! The offline build has no crates.io, so the bench targets run on this
//! hand-rolled shim instead of `criterion`. It reproduces the subset of
//! the API the suite uses — groups, parameterised IDs, batched
//! iteration, byte throughput — with a deliberately simple measurement
//! loop: warm up, pick an iteration count targeting ~10 ms per sample,
//! take `sample_size` samples, report the median. Good enough for the
//! order-of-magnitude comparisons the evaluation needs (the calibrated
//! Raspberry Pi 3 numbers come from the cost model, not wall time).

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How a batched benchmark sizes its input batches. The shim times one
/// routine call per setup regardless, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup per iteration is cheap.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Declared throughput, echoed in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An ID with an explicit function name and parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An ID from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled in by `iter`.
    result_ns: f64,
    /// Every measured sample (ns/iter), sorted ascending after a run —
    /// retained so callers can read tail quantiles, not just the median.
    samples_ns: Vec<f64>,
}

/// Target wall time per measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            result_ns: 0.0,
            samples_ns: Vec::new(),
        }
    }

    /// A stand-alone driver taking `samples` measurements per run; the
    /// programmatic entry point for runners (like `bench_poa`) that
    /// read quantiles instead of printing a report.
    pub fn with_samples(samples: usize) -> Bencher {
        Bencher::new(samples.max(1))
    }

    /// Stores a finished sample set: sort ascending, keep the median.
    fn commit(&mut self, mut samples_ns: Vec<f64>) {
        samples_ns.sort_by(f64::total_cmp);
        self.result_ns = samples_ns[samples_ns.len() / 2];
        self.samples_ns = samples_ns;
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: how many iterations fill the target?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.commit(samples_ns);
    }

    /// Times `routine` over inputs built by `setup` (setup is untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
        self.commit(samples_ns);
    }

    /// Number of samples taken by the last run (0 before any run).
    pub fn sample_count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Median nanoseconds per iteration from the last run.
    pub fn median_ns(&self) -> f64 {
        self.result_ns
    }

    /// The `q`-quantile (nearest-rank, `0.0..=1.0`) of the last run's
    /// per-iteration nanoseconds. Returns 0.0 before any run.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.samples_ns.len() - 1) as f64).ceil() as usize;
        self.samples_ns[rank.min(self.samples_ns.len() - 1)]
    }

    /// 95th-percentile nanoseconds per iteration from the last run.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile nanoseconds per iteration from the last run.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<50} {:>12}/iter", human_time(ns));
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let mib_s = bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0);
        line.push_str(&format!("  {mib_s:>10.1} MiB/s"));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to take per benchmark (Criterion default: 100;
    /// the shim defaults lower because each sample targets 10 ms).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.result_ns, self.throughput);
    }

    /// Ends the group (provided for Criterion API parity).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// A driver with the shim's defaults.
    pub fn new() -> Criterion {
        Criterion { sample_size: 10 }
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size.max(1));
        f(&mut b);
        report(name, b.result_ns, None);
        self
    }
}

/// Criterion-compatible group declaration: defines a function running
/// each listed benchmark against one shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher::new(3);
        b.iter(|| {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(black_box(i));
            }
            x
        });
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || vec![1u8; 1024],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.result_ns > 0.0);
    }

    #[test]
    fn quantiles_track_the_retained_sample_set() {
        let mut b = Bencher::with_samples(5);
        b.iter_batched(|| (), |_| black_box(1 + 1), BatchSize::SmallInput);
        assert_eq!(b.sample_count(), 5);
        assert!(b.median_ns() > 0.0);
        // Quantiles are read off the sorted sample vector, so they are
        // monotone and bracketed by min/max.
        assert!(b.quantile_ns(0.0) <= b.median_ns());
        assert!(b.median_ns() <= b.p95_ns());
        assert!(b.p95_ns() <= b.p99_ns());
        assert!(b.p99_ns() <= b.quantile_ns(1.0));
    }

    #[test]
    fn quantiles_before_any_run_are_zero() {
        let b = Bencher::with_samples(3);
        assert_eq!(b.sample_count(), 0);
        assert_eq!(b.quantile_ns(0.5), 0.0);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("sign", 1024).to_string(), "sign/1024");
        assert_eq!(BenchmarkId::from_parameter("2048").to_string(), "2048");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_function("one", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
