//! The persistent performance baseline: `BENCH_poa.json`.
//!
//! `bench_poa` (the runner binary) measures a fixed case list on the
//! hand-rolled harness and serialises the result through this module.
//! The schema is versioned and deliberately timestamp-free so two runs
//! of the same toolchain on the same machine produce comparable files,
//! and `diff` can flag median regressions against a checked-in
//! baseline without fuzzy matching.

use std::fmt;

use alidrone_obs::{Json, JsonError, ToJson};

/// Version stamp written into every baseline file; bump on any breaking
/// schema change so `diff` refuses to compare incompatible files.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// Stable case name (e.g. `rsa_verify_2048`).
    pub name: String,
    /// How many harness samples produced the quantiles.
    pub samples: u64,
    /// Median nanoseconds per operation.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per operation.
    pub p95_ns: f64,
    /// 99th-percentile nanoseconds per operation.
    pub p99_ns: f64,
    /// Operations per second implied by the median.
    pub throughput_per_sec: f64,
}

/// The machine the baseline was measured on. Coarse on purpose: enough
/// to notice a baseline came from a different architecture, without
/// leaking hostnames into a committed artefact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// `std::env::consts::OS` at measurement time.
    pub os: String,
    /// `std::env::consts::ARCH` at measurement time.
    pub arch: String,
    /// `std::thread::available_parallelism`, 0 if unknown.
    pub parallelism: u64,
}

impl Machine {
    /// The machine running this process.
    pub fn current() -> Machine {
        Machine {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
        }
    }
}

/// A full baseline document: schema version, machine fingerprint, and
/// the measured cases in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Must equal [`SCHEMA_VERSION`] for `diff` to accept the file.
    pub schema_version: u64,
    /// Where the numbers came from.
    pub machine: Machine,
    /// The measured cases.
    pub cases: Vec<BenchCase>,
}

impl Baseline {
    /// An empty baseline for the current machine.
    pub fn new() -> Baseline {
        Baseline {
            schema_version: SCHEMA_VERSION,
            machine: Machine::current(),
            cases: Vec::new(),
        }
    }

    /// Case lookup by name.
    pub fn case(&self, name: &str) -> Option<&BenchCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Parses a baseline previously produced by [`ToJson`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field, or
    /// the underlying JSON syntax error.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let doc = Json::parse(text)?;
        let schema_version = field_u64(&doc, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(BaselineError::Schema(format!(
                "unsupported schema_version {schema_version} (want {SCHEMA_VERSION})"
            )));
        }
        let machine = doc
            .get("machine")
            .ok_or_else(|| BaselineError::Schema("missing field machine".into()))?;
        let machine = Machine {
            os: field_str(machine, "os")?,
            arch: field_str(machine, "arch")?,
            parallelism: field_u64(machine, "parallelism")?,
        };
        let raw_cases = doc
            .get("cases")
            .and_then(Json::as_arr)
            .ok_or_else(|| BaselineError::Schema("missing array field cases".into()))?;
        let mut cases = Vec::with_capacity(raw_cases.len());
        for case in raw_cases {
            cases.push(BenchCase {
                name: field_str(case, "name")?,
                samples: field_u64(case, "samples")?,
                median_ns: field_f64(case, "median_ns")?,
                p95_ns: field_f64(case, "p95_ns")?,
                p99_ns: field_f64(case, "p99_ns")?,
                throughput_per_sec: field_f64(case, "throughput_per_sec")?,
            });
        }
        Ok(Baseline {
            schema_version,
            machine,
            cases,
        })
    }
}

impl Default for Baseline {
    fn default() -> Baseline {
        Baseline::new()
    }
}

impl ToJson for BenchCase {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("samples", Json::Num(self.samples as f64)),
            ("median_ns", Json::Num(self.median_ns)),
            ("p95_ns", Json::Num(self.p95_ns)),
            ("p99_ns", Json::Num(self.p99_ns)),
            ("throughput_per_sec", Json::Num(self.throughput_per_sec)),
        ])
    }
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::Num(self.schema_version as f64)),
            (
                "machine",
                Json::obj([
                    ("os", Json::str(&self.machine.os)),
                    ("arch", Json::str(&self.machine.arch)),
                    ("parallelism", Json::Num(self.machine.parallelism as f64)),
                ]),
            ),
            ("cases", Json::arr(self.cases.iter().map(ToJson::to_json))),
        ])
    }
}

/// What went wrong reading a baseline file.
#[derive(Debug)]
pub enum BaselineError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The JSON does not match the baseline schema.
    Schema(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Json(e) => write!(f, "invalid JSON: {e}"),
            BaselineError::Schema(msg) => write!(f, "invalid baseline: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<JsonError> for BaselineError {
    fn from(e: JsonError) -> BaselineError {
        BaselineError::Json(e)
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, BaselineError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| BaselineError::Schema(format!("missing numeric field {key}")))
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, BaselineError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| BaselineError::Schema(format!("missing integer field {key}")))
}

fn field_str(obj: &Json, key: &str) -> Result<String, BaselineError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| BaselineError::Schema(format!("missing string field {key}")))
}

/// One case compared across two baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDelta {
    /// The case name shared by both baselines.
    pub name: String,
    /// Old median nanoseconds.
    pub old_median_ns: f64,
    /// New median nanoseconds.
    pub new_median_ns: f64,
    /// `new / old` (> 1.0 means slower).
    pub ratio: f64,
    /// Whether the slowdown exceeds the diff threshold.
    pub regressed: bool,
}

/// The outcome of comparing two baselines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Cases present in both files, in the new file's order.
    pub deltas: Vec<CaseDelta>,
    /// Case names only in the new file.
    pub added: Vec<String>,
    /// Case names only in the old file.
    pub removed: Vec<String>,
}

impl DiffReport {
    /// The deltas flagged as regressions.
    pub fn regressions(&self) -> impl Iterator<Item = &CaseDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// True when no shared case regressed.
    pub fn clean(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Compares medians case by case. A case regresses when its new median
/// exceeds the old by more than `threshold` (e.g. `0.15` allows 15%
/// slack for run-to-run noise).
pub fn diff(old: &Baseline, new: &Baseline, threshold: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for case in &new.cases {
        match old.case(&case.name) {
            Some(before) => {
                let ratio = if before.median_ns > 0.0 {
                    case.median_ns / before.median_ns
                } else {
                    f64::INFINITY
                };
                report.deltas.push(CaseDelta {
                    name: case.name.clone(),
                    old_median_ns: before.median_ns,
                    new_median_ns: case.median_ns,
                    ratio,
                    regressed: case.median_ns > before.median_ns * (1.0 + threshold),
                });
            }
            None => report.added.push(case.name.clone()),
        }
    }
    for case in &old.cases {
        if new.case(&case.name).is_none() {
            report.removed.push(case.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, median: f64) -> BenchCase {
        BenchCase {
            name: name.to_string(),
            samples: 20,
            median_ns: median,
            p95_ns: median * 1.2,
            p99_ns: median * 1.5,
            throughput_per_sec: 1e9 / median,
        }
    }

    fn baseline(cases: Vec<BenchCase>) -> Baseline {
        Baseline {
            cases,
            ..Baseline::new()
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let before = baseline(vec![
            case("rsa_verify_1024", 1500.0),
            case("zone_query", 80.5),
        ]);
        let text = before.to_json().to_pretty();
        let after = Baseline::parse(&text).expect("parse own output");
        assert_eq!(before, after);
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let mut doc = baseline(vec![]);
        doc.schema_version = SCHEMA_VERSION + 1;
        let err = Baseline::parse(&doc.to_json().to_compact()).unwrap_err();
        assert!(err.to_string().contains("schema_version"), "{err}");
    }

    #[test]
    fn parse_names_the_missing_field() {
        let err = Baseline::parse(r#"{"schema_version": 1}"#).unwrap_err();
        assert!(err.to_string().contains("machine"), "{err}");
    }

    #[test]
    fn diff_flags_only_regressions_past_the_threshold() {
        let old = baseline(vec![
            case("stable", 100.0),
            case("slower_within_slack", 100.0),
            case("regressed", 100.0),
            case("removed_case", 50.0),
        ]);
        let new = baseline(vec![
            case("stable", 99.0),
            case("slower_within_slack", 110.0),
            case("regressed", 130.0),
            case("added_case", 10.0),
        ]);
        let report = diff(&old, &new, 0.15);
        assert!(!report.clean());
        let regressed: Vec<_> = report.regressions().map(|d| d.name.as_str()).collect();
        assert_eq!(regressed, ["regressed"]);
        assert_eq!(report.added, ["added_case"]);
        assert_eq!(report.removed, ["removed_case"]);
        let slack = report
            .deltas
            .iter()
            .find(|d| d.name == "slower_within_slack")
            .unwrap();
        assert!(!slack.regressed);
        assert!((slack.ratio - 1.1).abs() < 1e-9);
    }

    #[test]
    fn identical_baselines_diff_clean() {
        let base = baseline(vec![case("a", 10.0), case("b", 20.0)]);
        let report = diff(&base, &base.clone(), 0.0);
        assert!(report.clean());
        assert!(report.added.is_empty() && report.removed.is_empty());
        assert_eq!(report.deltas.len(), 2);
    }
}
