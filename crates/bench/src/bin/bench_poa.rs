//! The persistent PoA performance baseline runner.
//!
//! Measures a fixed list of protocol-critical operations — RSA
//! sign/verify, end-to-end PoA verification, zone queries over the wire
//! codec, journal appends, a real loopback TCP round trip, the metrics
//! exporter — and writes the quantiles to a schema-versioned
//! `BENCH_poa.json` (see [`alidrone_bench::baseline`]). A committed
//! baseline plus `--diff` turns the file into a regression gate:
//!
//! ```text
//! cargo run -p alidrone-bench --release --bin bench_poa             # write BENCH_poa.json
//! cargo run -p alidrone-bench --release --bin bench_poa -- \
//!     --out new.json
//! cargo run -p alidrone-bench --release --bin bench_poa -- \
//!     --diff BENCH_poa.json new.json --threshold 0.25               # exit 1 on regression
//! ```
//!
//! `--samples N` (or `BENCH_POA_SAMPLES=N`) trades precision for wall
//! time. `--gate PREFIX,...` narrows which cases can fail the diff:
//! regressions in matching cases exit non-zero, the rest print as
//! advisory. CI uses a reduced sample count and gates only the
//! CPU-bound crypto cases (`rsa_verify_*`, `poa_verify_e2e_50`), which
//! stay stable on shared runners; the I/O-heavy cases remain advisory.

use std::process::ExitCode;
use std::sync::Arc;

use alidrone_bench::baseline::{diff, Baseline, BenchCase};
use alidrone_bench::bench_key;
use alidrone_bench::harness::{black_box, BatchSize, Bencher};
use alidrone_core::audit::{verify_inclusion, AuditChain};
use alidrone_core::journal::{Journal, MemBackend, Record, StorageBackend};
use alidrone_core::repl::{Follower, InProcessLink, ReplicationPolicy, Replicator};
use alidrone_core::verify_pool::VerifyPool;
use alidrone_core::wire::server::AuditorServer;
use alidrone_core::wire::tcp::{TcpServer, TcpTransport};
use alidrone_core::wire::transport::AuditorClient;
use alidrone_core::wire::{Request, Response};
use alidrone_core::{
    Auditor, AuditorConfig, DroneId, PoaSubmission, ProofOfAlibi, Submission, ZoneQuery,
};
use alidrone_crypto::rsa::HashAlg;
use alidrone_geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp};
use alidrone_obs::{prometheus_text, Obs, ToJson};
use alidrone_tee::SignedSample;

/// Default measurement samples per case (CI overrides this down).
const DEFAULT_SAMPLES: usize = 20;

/// Default regression slack for `--diff`: run-to-run noise on a warm
/// machine stays well inside 25%.
const DEFAULT_THRESHOLD: f64 = 0.25;

fn origin() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).expect("valid origin")
}

/// An eastbound 10 m/s trace signed with the cached 512-bit bench key
/// (the same construction the unit-test fixtures use).
fn signed_trace(n: usize) -> ProofOfAlibi {
    let key = bench_key(512);
    (0..n)
        .map(|i| {
            let s = GpsSample::new(
                origin().destination(90.0, Distance::from_meters(10.0 * i as f64)),
                Timestamp::from_secs(i as f64),
            );
            let sig = key
                .sign(&s.to_bytes(), HashAlg::Sha1)
                .expect("bench signing");
            SignedSample::from_parts(s, sig, HashAlg::Sha1)
        })
        .collect()
}

fn case_from(name: &str, b: &Bencher) -> BenchCase {
    let median_ns = b.median_ns();
    BenchCase {
        name: name.to_string(),
        samples: b.sample_count() as u64,
        median_ns,
        p95_ns: b.p95_ns(),
        p99_ns: b.p99_ns(),
        throughput_per_sec: if median_ns > 0.0 {
            1e9 / median_ns
        } else {
            0.0
        },
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report_case(case: &BenchCase) {
    println!(
        "{:<28} median {:>12}  p95 {:>12}  p99 {:>12}  {:>12.1}/s",
        case.name,
        human_time(case.median_ns),
        human_time(case.p95_ns),
        human_time(case.p99_ns),
        case.throughput_per_sec,
    );
}

/// Runs every case at `samples` samples each, in a fixed order so two
/// baseline files are diffable line by line.
fn run_cases(samples: usize) -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let mut run = |name: &str, f: &mut dyn FnMut(&mut Bencher)| {
        let mut b = Bencher::with_samples(samples);
        f(&mut b);
        let case = case_from(name, &b);
        report_case(&case);
        cases.push(case);
    };

    // --- RSA primitives: the per-sample cost floor of the protocol.
    let msg = b"alidrone bench message: one GPS sample's signing payload";
    run("rsa_sign_1024", &mut |b| {
        let key = bench_key(1024);
        b.iter(|| key.sign(msg, HashAlg::Sha1).expect("sign"));
    });
    for bits in [1024usize, 2048] {
        run(&format!("rsa_verify_{bits}"), &mut |b| {
            let key = bench_key(bits);
            let sig = key.sign(msg, HashAlg::Sha1).expect("sign");
            b.iter(|| {
                key.public_key()
                    .verify(msg, &sig, HashAlg::Sha1)
                    .expect("verify")
            });
        });
    }

    // --- The prepared-context fast path: Montgomery parameters are
    // computed once, so this is what a registered key's verify costs.
    run("rsa_verify_prepared_2048", &mut |b| {
        let key = bench_key(2048);
        let sig = key.sign(msg, HashAlg::Sha1).expect("sign");
        let verifier = key.public_key().verifier();
        b.iter(|| verifier.verify(msg, &sig, HashAlg::Sha1).expect("verify"));
    });

    // --- PoA verification end to end: 50 samples, one zone nearby
    // (signatures → monotonicity → feasibility → eq. 1), fresh auditor
    // per sample so stored proofs never accumulate into the timing.
    run("poa_verify_e2e_50", &mut |b| {
        let submission = Submission::plain(PoaSubmission {
            drone_id: DroneId::new(1),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(49.0),
            poa: signed_trace(50),
        });
        b.iter_batched(
            || {
                let a = Auditor::new(AuditorConfig::default(), bench_key(512).clone());
                a.register_zone(NoFlyZone::new(
                    origin().destination(0.0, Distance::from_km(5.0)),
                    Distance::from_meters(100.0),
                ));
                a.register_drone(
                    bench_key(512).public_key().clone(),
                    bench_key(512).public_key().clone(),
                );
                a
            },
            |a| {
                a.verify(&submission, Timestamp::from_secs(0.0))
                    .expect("verify submission")
            },
            BatchSize::SmallInput,
        );
    });

    // --- The same 50-sample verification with a verify pool installed:
    // per-entry signature checks fan across 4 workers plus the caller.
    run("poa_verify_batch_50", &mut |b| {
        let pool = Arc::new(VerifyPool::new(4, &Obs::noop()));
        let submission = Submission::plain(PoaSubmission {
            drone_id: DroneId::new(1),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(49.0),
            poa: signed_trace(50),
        });
        b.iter_batched(
            || {
                let a = Auditor::new(AuditorConfig::default(), bench_key(512).clone());
                a.register_zone(NoFlyZone::new(
                    origin().destination(0.0, Distance::from_km(5.0)),
                    Distance::from_meters(100.0),
                ));
                a.register_drone(
                    bench_key(512).public_key().clone(),
                    bench_key(512).public_key().clone(),
                );
                assert!(a.install_verify_pool(Arc::clone(&pool)));
                a
            },
            |a| {
                a.verify(&submission, Timestamp::from_secs(0.0))
                    .expect("verify submission")
            },
            BatchSize::SmallInput,
        );
    });

    // --- A signed zone query through the full wire path (decode →
    // admission → signature check → spatial lookup → encode). Each
    // sample consumes a fresh nonce; signing it happens in untimed
    // setup.
    run("zone_query_wire", &mut |b| {
        let obs = Obs::noop();
        let server = AuditorServer::builder(Auditor::new(
            AuditorConfig::default(),
            bench_key(512).clone(),
        ))
        .obs(&obs)
        .build();
        let drone = server.auditor().register_drone(
            bench_key(512).public_key().clone(),
            bench_key(512).public_key().clone(),
        );
        for i in 0..16u64 {
            server.auditor().register_zone(NoFlyZone::new(
                origin().destination((i as f64 * 137.5) % 360.0, Distance::from_km(1.0)),
                Distance::from_meters(50.0),
            ));
        }
        let mut nonce_counter = 0u64;
        let mut next_query = || {
            nonce_counter += 1;
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&nonce_counter.to_be_bytes());
            let q = ZoneQuery::new_signed(
                drone,
                origin(),
                origin().destination(45.0, Distance::from_km(3.0)),
                nonce,
                bench_key(512),
            )
            .expect("signed query");
            Request::QueryZones(q).to_bytes()
        };
        // Sanity: the query must actually succeed before it is timed.
        let reply = server.handle(&next_query(), Timestamp::from_secs(0.0));
        assert!(
            matches!(Response::from_bytes(&reply), Ok(Response::Zones(_))),
            "zone query must answer with zones, got {reply:?}"
        );
        b.iter_batched(
            next_query,
            |bytes| server.handle(&bytes, Timestamp::from_secs(0.0)),
            BatchSize::SmallInput,
        );
    });

    // --- One durable journal append (frame + CRC + in-memory backend).
    run("journal_append", &mut |b| {
        let (journal, _, _) = Journal::open(Arc::new(MemBackend::new())).expect("open journal");
        let record = Record::RegisterZone {
            id: 1,
            lat_deg: 40.1164,
            lon_deg: -88.2434,
            radius_m: 120.0,
        };
        b.iter(|| journal.append_record(&record).expect("append"));
    });

    // --- The same append with synchronous Quorum(1) replication to two
    // in-process followers: frame + CRC + ship + durable follower ack.
    // A fresh journal per measurement keeps the shipped tail one record
    // long, so the case times the steady-state per-append cost instead
    // of an ever-growing log.
    run("journal_replicated_append", &mut |b| {
        let obs = Obs::noop();
        let record = Record::RegisterZone {
            id: 1,
            lat_deg: 40.1164,
            lon_deg: -88.2434,
            radius_m: 120.0,
        };
        let fresh = || {
            let (journal, _, _) = Journal::open(Arc::new(MemBackend::new())).expect("open journal");
            let mut replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1));
            for i in 0..2 {
                let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
                replicator = replicator.with_follower(
                    format!("f{i}"),
                    InProcessLink::new(Arc::new(Follower::new(backend))),
                );
            }
            // First sync ships the journal header so the timed append
            // replicates exactly one record.
            replicator.replicate(&journal).expect("initial sync");
            (journal, replicator)
        };
        b.iter_batched(
            fresh,
            |(journal, replicator)| {
                journal.append_record(&record).expect("append");
                replicator.replicate(&journal).expect("replicate");
            },
            BatchSize::SmallInput,
        );
    });

    // --- The marginal cost the tamper-evident log adds to every
    // audited journal append: encode the record payload, advance the
    // hash chain head, cache the leaf hash.
    run("audit_append_chain", &mut |b| {
        let record = Record::RegisterZone {
            id: 1,
            lat_deg: 40.1164,
            lon_deg: -88.2434,
            radius_m: 120.0,
        };
        let mut chain = AuditChain::new();
        b.iter(|| chain.append(&black_box(record.to_payload())));
    });

    // --- Serving a transparency client at scale: one inclusion proof
    // out of a 64k-leaf audit tree (~log2 n levels of node hashing
    // over the cached leaf hashes).
    run("merkle_proof_64k", &mut |b| {
        let mut chain = AuditChain::new();
        for i in 0..65_536u64 {
            chain.append(&i.to_be_bytes());
        }
        let size = chain.size();
        let root = chain.root();
        // Sanity: the proof must actually verify before it is timed.
        let p = chain.prove_inclusion(12_345, size).expect("inclusion");
        assert!(verify_inclusion(&p.leaf, p.index, p.size, &p.path, &root));
        let mut idx = 1u64;
        b.iter(|| {
            // Deterministic LCG walk over the leaves, so every sample
            // proves a different index.
            idx = (idx.wrapping_mul(48_271) + 11) % size;
            chain.prove_inclusion(idx, size).expect("inclusion proof")
        });
    });

    // --- A full loopback TCP round trip: connect-once client, framed
    // health check through the threaded server.
    run("tcp_round_trip_health", &mut |b| {
        let obs = Obs::noop();
        let server = Arc::new(
            AuditorServer::builder(Auditor::new(
                AuditorConfig::default(),
                bench_key(512).clone(),
            ))
            .obs(&obs)
            .build(),
        );
        let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
        let mut client = AuditorClient::new(TcpTransport::new(tcp.local_addr()));
        b.iter(|| {
            client
                .health_check(Timestamp::from_secs(0.0))
                .expect("health check")
        });
        tcp.shutdown();
    });

    // --- Wire codec round trip of a realistic PoA submission frame.
    run("wire_codec_submit_poa_50", &mut |b| {
        let req = Request::SubmitPoa {
            drone_id: DroneId::new(1),
            window_start: Timestamp::from_secs(0.0),
            window_end: Timestamp::from_secs(49.0),
            poa: signed_trace(50).to_bytes(),
        };
        b.iter(|| Request::from_bytes(&black_box(req.to_bytes())).expect("decode"));
    });

    // --- The exporter behind `GET /metrics`: a populated registry
    // rendered to Prometheus text.
    run("prometheus_export", &mut |b| {
        let obs = Obs::noop();
        for i in 0..64u64 {
            obs.counter(&format!("bench.counter_{i}")).add(i);
        }
        for i in 0..16u64 {
            let h = obs.histogram(&format!("bench.histogram_{i}"));
            for j in 0..100u64 {
                h.record_micros(j * 37 + i);
            }
        }
        let snap = obs.snapshot();
        b.iter(|| prometheus_text(&snap));
    });

    // --- The same exporter at fleet-soak registry scale: the
    // per-drone label series a capped interner admits (plus server
    // counters) put a soak's scrape at thousands of families, and the
    // sampler pays this render every period.
    run("prometheus_export_soak", &mut |b| {
        let obs = Obs::noop();
        for i in 0..2048u64 {
            obs.counter(&format!("fleet.drone.d{i}.ops")).add(i);
        }
        for i in 0..64u64 {
            let h = obs.histogram(&format!("server.latency.kind_{i}"));
            for j in 0..100u64 {
                h.record_micros(j * 37 + i);
            }
        }
        let snap = obs.snapshot();
        b.iter(|| prometheus_text(&snap));
    });

    cases
}

fn write_baseline(path: &str, samples: usize) -> Result<(), String> {
    println!("bench_poa: {samples} samples per case\n");
    let mut baseline = Baseline::new();
    baseline.cases = run_cases(samples);
    let text = baseline.to_json().to_pretty();
    std::fs::write(path, text + "\n").map_err(|e| format!("write {path}: {e}"))?;
    println!("\nwrote {} cases to {path}", baseline.cases.len());
    Ok(())
}

fn read_baseline(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Baseline::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn diff_baselines(
    old_path: &str,
    new_path: &str,
    threshold: f64,
    gate: Option<&[String]>,
) -> Result<bool, String> {
    let old = read_baseline(old_path)?;
    let new = read_baseline(new_path)?;
    if old.machine != new.machine {
        println!(
            "note: baselines come from different machines ({}/{} vs {}/{})",
            old.machine.os, old.machine.arch, new.machine.os, new.machine.arch
        );
    }
    // With `--gate`, only cases matching a listed prefix can fail the
    // run; regressions elsewhere print as advisory. Without it every
    // case is gating.
    let gated = |name: &str| match gate {
        None => true,
        Some(prefixes) => prefixes.iter().any(|p| name.starts_with(p.as_str())),
    };
    let report = diff(&old, &new, threshold);
    println!(
        "bench-diff: {old_path} -> {new_path} (threshold {:.0}%)\n",
        threshold * 100.0
    );
    let mut gated_regressions = 0usize;
    for delta in &report.deltas {
        let marker = match (delta.regressed, gated(&delta.name)) {
            (true, true) => {
                gated_regressions += 1;
                "REGRESSED"
            }
            (true, false) => "regressed (advisory)",
            _ => "ok",
        };
        println!(
            "{:<28} {:>12} -> {:>12}  ({:+6.1}%)  {marker}",
            delta.name,
            human_time(delta.old_median_ns),
            human_time(delta.new_median_ns),
            (delta.ratio - 1.0) * 100.0,
        );
    }
    for name in &report.added {
        println!("{name:<28} (new case, no baseline)");
    }
    for name in &report.removed {
        println!("{name:<28} (removed from new run)");
    }
    let regressions = report.regressions().count();
    println!(
        "\n{} case(s) compared, {regressions} regression(s) ({gated_regressions} gating)",
        report.deltas.len()
    );
    Ok(gated_regressions == 0)
}

fn usage() -> String {
    "usage: bench_poa [--out PATH] [--samples N]\n       \
     bench_poa --diff OLD NEW [--threshold F] [--gate PREFIX,PREFIX,...]"
        .to_string()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_poa.json".to_string();
    let mut samples = std::env::var("BENCH_POA_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SAMPLES);
    let mut threshold = DEFAULT_THRESHOLD;
    let mut diff_paths: Option<(String, String)> = None;
    let mut gate: Option<Vec<String>> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).ok_or_else(usage)?.clone();
            }
            "--samples" => {
                i += 1;
                samples = args.get(i).and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--threshold" => {
                i += 1;
                threshold = args.get(i).and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--diff" => {
                let old = args.get(i + 1).ok_or_else(usage)?.clone();
                let new = args.get(i + 2).ok_or_else(usage)?.clone();
                diff_paths = Some((old, new));
                i += 2;
            }
            "--gate" => {
                i += 1;
                gate = Some(
                    args.get(i)
                        .ok_or_else(usage)?
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
        i += 1;
    }

    match diff_paths {
        Some((old, new)) => diff_baselines(&old, &new, threshold, gate.as_deref()),
        None => {
            write_baseline(&out, samples.max(1))?;
            Ok(true)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench_poa: performance regressions detected");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_poa: {msg}");
            ExitCode::FAILURE
        }
    }
}
