//! Shared fixtures for the Criterion benchmark suite.
//!
//! One bench target exists per evaluation artefact:
//!
//! * `bench_crypto` — the primitive costs behind **Table II** (RSA
//!   sign/verify/encrypt at 512/1024/2048 bits, SHA, HMAC, ChaCha20).
//! * `bench_tee` — `GetGPSAuth` end-to-end (world switch + driver read +
//!   sign), plus the §VII-A1 ablations (batch signing, symmetric MACs).
//! * `bench_geometry` — sufficiency predicates (paper vs exact
//!   criterion), nearest-zone queries, Welzl circles.
//! * `bench_verify` — auditor-side PoA verification throughput.
//! * `bench_scenarios` — the **Fig. 6 / Fig. 8** pipelines end to end.
//!
//! Real wall-clock numbers here are for *this* machine; the paper-shape
//! comparison lives in the `exp_*` binaries, which use the calibrated
//! Raspberry Pi 3 cost model instead.
//!
//! Separately from the Criterion-style targets, the `bench_poa` binary
//! measures a fixed case list and persists quantiles to the repo-root
//! `BENCH_poa.json` via [`baseline`], with a `--diff` regression gate
//! (`make bench-json` / `make bench-diff`).

#![forbid(unsafe_code)]

pub mod baseline;
pub mod harness;

use std::sync::OnceLock;

use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;

/// Cached keys by size: keygen (especially 2048-bit) must happen once
/// per process, not once per benchmark iteration batch.
pub fn bench_key(bits: usize) -> &'static RsaPrivateKey {
    static K512: OnceLock<RsaPrivateKey> = OnceLock::new();
    static K1024: OnceLock<RsaPrivateKey> = OnceLock::new();
    static K2048: OnceLock<RsaPrivateKey> = OnceLock::new();
    let (cell, seed) = match bits {
        512 => (&K512, 0xB512u64),
        1024 => (&K1024, 0xB1024),
        2048 => (&K2048, 0xB2048),
        _ => panic!("no cached bench key for {bits} bits"),
    };
    cell.get_or_init(|| {
        let mut rng = XorShift64::seed_from_u64(seed);
        RsaPrivateKey::generate(bits, &mut rng)
    })
}
