//! Proof that disabled instrumentation stays off the allocator.
//!
//! The acceptance bar for leaving instrumentation compiled into hot
//! paths (the auditor request loop, the modelled secure world) is that
//! the *disabled* path — no subscriber installed — costs a few atomic
//! operations and never touches the heap. A counting global allocator
//! measures exactly that.

use alidrone_geo::Duration;
use alidrone_obs::{Level, Obs, RingBuffer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Counters, histograms, spans, and gated events: zero allocations
/// per operation when no subscriber is installed.
#[test]
fn disabled_path_never_allocates() {
    let obs = Obs::noop();
    // Handle registration may allocate; it happens once at setup.
    let requests = obs.counter("server.requests");
    let inflight = obs.gauge("server.inflight");
    let latency = obs.histogram("server.latency");

    let n = allocations_during(|| {
        for i in 0..10_000u64 {
            requests.inc();
            inflight.set(i as i64);
            latency.record(Duration::from_millis(1.5));
            let span = obs.span(&latency);
            obs.emit(Level::Info, "server", "request_done", |f| {
                // Field construction allocates — this closure must not run.
                f.field("detail", format!("request {i}"));
            });
            drop(span);
        }
    });
    assert_eq!(n, 0, "disabled instrumentation path allocated {n} times");
}

/// The same event stream with a subscriber installed *does* reach the
/// subscriber — the gate is the subscriber, not a dead code path.
#[test]
fn enabled_path_still_delivers() {
    let obs = Obs::noop();
    let ring = Arc::new(RingBuffer::new(16));
    obs.set_subscriber(ring.clone());
    obs.emit(Level::Info, "server", "request_done", |f| {
        f.field("detail", format!("request {}", 7));
    });
    assert_eq!(ring.len(), 1);
    assert_eq!(
        ring.events()[0].field("detail").unwrap().as_str(),
        Some("request 7")
    );
}

/// Uninstalling the subscriber returns emit to the allocation-free path.
#[test]
fn clearing_subscriber_restores_no_alloc() {
    let obs = Obs::noop();
    let ring = Arc::new(RingBuffer::new(16));
    obs.set_subscriber(ring);
    obs.clear_subscriber();
    let n = allocations_during(|| {
        for _ in 0..1000 {
            obs.emit(Level::Debug, "t", "m", |f| {
                f.field("s", "heap".to_string());
            });
        }
    });
    assert_eq!(n, 0);
}
