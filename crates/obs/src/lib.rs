//! Hand-rolled observability for the AliDrone reproduction.
//!
//! The paper's evaluation (Table II costs, Figs. 6–8 sampling
//! behaviour) is an observability exercise the prototype performed by
//! hand. This crate makes that first-class: a metrics registry of
//! atomic [`Counter`]s / [`Gauge`]s / [`Histogram`]s, scope-timing
//! [`Span`]s, and structured [`Event`]s with levels and typed fields —
//! all std-only, like the rest of the workspace's from-scratch stack
//! (the build environment has no crates.io access).
//!
//! # Design
//!
//! Everything hangs off a cheaply-cloneable [`Obs`] handle:
//!
//! * **Metrics** are pre-registered by name; the registry locks only at
//!   registration, so steady-state updates are single atomic RMWs.
//! * **Time is injected** via the [`Clock`] trait. The simulator passes
//!   an adapter over its `SimClock`, so spans and events are stamped
//!   in *simulated* time; benchmarks and real servers use
//!   [`WallClock`]. Paper-modelled costs (world switches, signatures)
//!   are recorded directly into histograms from the TEE cost ledger.
//! * **Events are pull-gated**: [`Obs::emit`] takes a closure that
//!   builds fields, and only runs it when a subscriber is installed.
//!   The disabled path is one atomic load — no allocation, no
//!   formatting (a test enforces this with a counting allocator).
//! * **Export** is the hand-rolled [`Json`] document model, shared with
//!   the sim's figure exporter.
//!
//! # Example
//!
//! ```
//! use alidrone_obs::{Level, Obs, RingBuffer};
//! use alidrone_geo::Duration;
//! use std::sync::Arc;
//!
//! let obs = Obs::wall();
//! let requests = obs.counter("server.requests");
//! let latency = obs.histogram("server.latency");
//!
//! let ring = Arc::new(RingBuffer::new(64));
//! obs.set_subscriber(ring.clone());
//!
//! requests.inc();
//! latency.record(Duration::from_millis(1.5));
//! obs.emit(Level::Info, "server", "request_done", |f| {
//!     f.field("code", 200u64);
//! });
//!
//! assert_eq!(obs.snapshot().counter("server.requests"), 1);
//! assert_eq!(ring.events()[0].field("code").unwrap().as_u64(), Some(200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod json;
pub mod metrics;
mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use event::{Event, FieldSet, Level, RingBuffer, Subscriber, Value};
pub use json::{Json, JsonError, ToJson};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::Span;

use alidrone_geo::Timestamp;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

struct ObsInner {
    clock: Arc<dyn Clock>,
    registry: Registry,
    has_subscriber: AtomicBool,
    subscriber: Mutex<Option<Arc<dyn Subscriber>>>,
}

/// The shared observability handle.
///
/// Clone freely — clones share one registry, clock, and subscriber
/// slot. Components accept an `Obs` at construction and pre-register
/// the handles they will update.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("subscribed", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// An observability handle reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Obs {
        Obs {
            inner: Arc::new(ObsInner {
                clock,
                registry: Registry::new(),
                has_subscriber: AtomicBool::new(false),
                subscriber: Mutex::new(None),
            }),
        }
    }

    /// A handle on wall time.
    pub fn wall() -> Obs {
        Obs::new(Arc::new(WallClock::new()))
    }

    /// A do-nothing-visible handle: metrics still count (atomics are
    /// cheaper than a branch worth caring about) but no subscriber is
    /// installed, so `emit` closures never run. The default for
    /// components constructed without explicit instrumentation.
    pub fn noop() -> Obs {
        Obs::new(Arc::new(ManualClock::new()))
    }

    /// The injected clock's current time.
    pub fn now(&self) -> Timestamp {
        self.inner.clock.now()
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Gets or creates a named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.inner.registry.counter(name)
    }

    /// Gets or creates a named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.inner.registry.gauge(name)
    }

    /// Gets or creates a named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.inner.registry.histogram(name)
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }

    /// Installs the subscriber that will receive events (replacing any
    /// previous one).
    pub fn set_subscriber(&self, sub: Arc<dyn Subscriber>) {
        *self.inner.subscriber.lock().unwrap() = Some(sub);
        self.inner.has_subscriber.store(true, Ordering::Release);
    }

    /// Removes the subscriber; subsequent `emit` calls revert to the
    /// zero-allocation disabled path.
    pub fn clear_subscriber(&self) {
        self.inner.has_subscriber.store(false, Ordering::Release);
        *self.inner.subscriber.lock().unwrap() = None;
    }

    /// `true` when a subscriber is installed.
    pub fn enabled(&self) -> bool {
        self.inner.has_subscriber.load(Ordering::Acquire)
    }

    /// Emits a structured event.
    ///
    /// `fields` runs only when a subscriber is installed — when none
    /// is, the whole call is one atomic load.
    pub fn emit(
        &self,
        level: Level,
        target: &'static str,
        message: &'static str,
        fields: impl FnOnce(&mut FieldSet),
    ) {
        if !self.enabled() {
            return;
        }
        let mut set = FieldSet::default();
        fields(&mut set);
        let event = Event {
            time: self.now(),
            level,
            target,
            message,
            fields: set.fields,
        };
        if let Some(sub) = self.inner.subscriber.lock().unwrap().as_ref() {
            sub.on_event(&event);
        }
    }

    /// Starts a [`Span`] that records into `histogram` when it ends.
    pub fn span(&self, histogram: &Arc<Histogram>) -> Span {
        Span::new(self.clone(), Arc::clone(histogram))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::Duration;

    #[test]
    fn emit_without_subscriber_runs_no_closure() {
        let obs = Obs::noop();
        let mut ran = false;
        obs.emit(Level::Info, "t", "m", |_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn emit_with_subscriber_delivers_fields_and_time() {
        let clock = Arc::new(ManualClock::new());
        clock.set(Timestamp::from_secs(42.0));
        let obs = Obs::new(clock);
        let ring = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(ring.clone());
        obs.emit(Level::Warn, "wire", "malformed_frame", |f| {
            f.field("frame_len", 3u64);
        });
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time.secs(), 42.0);
        assert_eq!(events[0].level, Level::Warn);
        assert_eq!(events[0].field("frame_len").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn clear_subscriber_restores_disabled_path() {
        let obs = Obs::wall();
        let ring = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(ring.clone());
        obs.emit(Level::Info, "t", "a", |_| {});
        obs.clear_subscriber();
        obs.emit(Level::Info, "t", "b", |_| {});
        assert_eq!(ring.len(), 1);
        assert!(!obs.enabled());
    }

    #[test]
    fn clones_share_registry_and_subscriber() {
        let obs = Obs::noop();
        let other = obs.clone();
        obs.counter("shared").inc();
        assert_eq!(other.snapshot().counter("shared"), 1);
        let ring = Arc::new(RingBuffer::new(4));
        other.set_subscriber(ring.clone());
        obs.emit(Level::Debug, "t", "via_original", |_| {});
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn span_through_obs_records_sim_time() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new(clock.clone());
        let h = obs.histogram("flight.step");
        let span = obs.span(&h);
        clock.advance(Duration::from_secs(1.5));
        drop(span);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 1_500_000);
    }
}
