//! Hand-rolled observability for the AliDrone reproduction.
//!
//! The paper's evaluation (Table II costs, Figs. 6–8 sampling
//! behaviour) is an observability exercise the prototype performed by
//! hand. This crate makes that first-class: a metrics registry of
//! atomic [`Counter`]s / [`Gauge`]s / [`Histogram`]s, scope-timing
//! [`Span`]s, and structured [`Event`]s with levels and typed fields —
//! all std-only, like the rest of the workspace's from-scratch stack
//! (the build environment has no crates.io access).
//!
//! # Design
//!
//! Everything hangs off a cheaply-cloneable [`Obs`] handle:
//!
//! * **Metrics** are pre-registered by name; the registry locks only at
//!   registration, so steady-state updates are single atomic RMWs.
//! * **Time is injected** via the [`Clock`] trait. The simulator passes
//!   an adapter over its `SimClock`, so spans and events are stamped
//!   in *simulated* time; benchmarks and real servers use
//!   [`WallClock`]. Paper-modelled costs (world switches, signatures)
//!   are recorded directly into histograms from the TEE cost ledger.
//! * **Events are pull-gated**: [`Obs::emit`] takes a closure that
//!   builds fields, and only runs it when a subscriber is installed.
//!   The disabled path is one atomic load — no allocation, no
//!   formatting (a test enforces this with a counting allocator).
//! * **Export** is the hand-rolled [`Json`] document model, shared with
//!   the sim's figure exporter.
//!
//! # Example
//!
//! ```
//! use alidrone_obs::{Level, Obs, RingBuffer};
//! use alidrone_geo::Duration;
//! use std::sync::Arc;
//!
//! let obs = Obs::wall();
//! let requests = obs.counter("server.requests");
//! let latency = obs.histogram("server.latency");
//!
//! let ring = Arc::new(RingBuffer::new(64));
//! obs.set_subscriber(ring.clone());
//!
//! requests.inc();
//! latency.record(Duration::from_millis(1.5));
//! obs.emit(Level::Info, "server", "request_done", |f| {
//!     f.field("code", 200u64);
//! });
//!
//! assert_eq!(obs.snapshot().counter("server.requests"), 1);
//! assert_eq!(ring.events()[0].field("code").unwrap().as_u64(), Some(200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod export;
pub mod json;
pub mod labels;
pub mod metrics;
pub mod recorder;
pub mod scrape;
pub mod slo;
mod span;
pub mod stage;
pub mod timeseries;

pub use clock::{Clock, ManualClock, WallClock};
pub use event::{Event, Fanout, FieldSet, Level, RingBuffer, Subscriber, Value};
pub use export::{
    chrome_trace, escape_label_value, parse_prometheus_text, prometheus_text, sanitize_metric_name,
};
pub use json::{Json, JsonError, ToJson};
pub use labels::LabelInterner;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use recorder::{FlightRecorder, RecorderDump};
pub use scrape::{ScrapeServer, ScrapeSources};
pub use slo::{Slo, SloEngine, SloEvent, SloEventKind, SloRule, SloStatus};
pub use span::{Span, SpanContext, SpanRecord};
pub use stage::{SlowExemplar, SlowTable, StageTimer};
pub use timeseries::{CounterReconciliation, SeriesWindow, SnapshotRing};

use alidrone_crypto::rng::{Rng, XorShift64};
use alidrone_geo::Timestamp;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default seed for the trace/span id stream. Deterministic on purpose:
/// two runs of the same simulation produce the same ids, so traces can
/// be diffed. Override per-handle with [`Obs::seed_trace_ids`].
const DEFAULT_TRACE_SEED: u64 = 0xA11D_0E7A_CE1D_5EED;

struct ObsInner {
    clock: Arc<dyn Clock>,
    registry: Registry,
    has_subscriber: AtomicBool,
    subscriber: Mutex<Option<Arc<dyn Subscriber>>>,
    /// Deterministic id stream for traces and spans.
    trace_ids: Mutex<XorShift64>,
    /// Live traced spans, innermost last. New traced spans parent on
    /// the top. The workspace drives one logical flow per handle
    /// (simulation and request loops are synchronous), so a per-handle
    /// stack is the honest model; a multi-threaded server would move
    /// this to thread-local storage.
    span_stack: Mutex<Vec<SpanContext>>,
}

/// The shared observability handle.
///
/// Clone freely — clones share one registry, clock, and subscriber
/// slot. Components accept an `Obs` at construction and pre-register
/// the handles they will update.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("subscribed", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// An observability handle reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Obs {
        Obs {
            inner: Arc::new(ObsInner {
                clock,
                registry: Registry::new(),
                has_subscriber: AtomicBool::new(false),
                subscriber: Mutex::new(None),
                trace_ids: Mutex::new(XorShift64::seed_from_u64(DEFAULT_TRACE_SEED)),
                span_stack: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A handle on wall time.
    pub fn wall() -> Obs {
        Obs::new(Arc::new(WallClock::new()))
    }

    /// A do-nothing-visible handle: metrics still count (atomics are
    /// cheaper than a branch worth caring about) but no subscriber is
    /// installed, so `emit` closures never run. The default for
    /// components constructed without explicit instrumentation.
    pub fn noop() -> Obs {
        Obs::new(Arc::new(ManualClock::new()))
    }

    /// The injected clock's current time.
    pub fn now(&self) -> Timestamp {
        self.inner.clock.now()
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Gets or creates a named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.inner.registry.counter(name)
    }

    /// Gets or creates a named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.inner.registry.gauge(name)
    }

    /// Gets or creates a named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.inner.registry.histogram(name)
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.registry.snapshot()
    }

    /// Installs the subscriber that will receive events (replacing any
    /// previous one).
    pub fn set_subscriber(&self, sub: Arc<dyn Subscriber>) {
        *self.inner.subscriber.lock().unwrap() = Some(sub);
        self.inner.has_subscriber.store(true, Ordering::Release);
    }

    /// Removes the subscriber; subsequent `emit` calls revert to the
    /// zero-allocation disabled path.
    pub fn clear_subscriber(&self) {
        self.inner.has_subscriber.store(false, Ordering::Release);
        *self.inner.subscriber.lock().unwrap() = None;
    }

    /// `true` when a subscriber is installed.
    pub fn enabled(&self) -> bool {
        self.inner.has_subscriber.load(Ordering::Acquire)
    }

    /// Emits a structured event.
    ///
    /// `fields` runs only when a subscriber is installed — when none
    /// is, the whole call is one atomic load.
    pub fn emit(
        &self,
        level: Level,
        target: &'static str,
        message: &'static str,
        fields: impl FnOnce(&mut FieldSet),
    ) {
        if !self.enabled() {
            return;
        }
        let mut set = FieldSet::default();
        fields(&mut set);
        let event = Event {
            time: self.now(),
            level,
            target,
            message,
            fields: set.fields,
        };
        if let Some(sub) = self.inner.subscriber.lock().unwrap().as_ref() {
            sub.on_event(&event);
        }
    }

    /// Starts a [`Span`] that records into `histogram` when it ends.
    ///
    /// This is the untraced scope timer: no trace context, nothing
    /// reported to the subscriber, no allocation on creation.
    pub fn span(&self, histogram: &Arc<Histogram>) -> Span {
        Span::new(self.clone(), Arc::clone(histogram))
    }

    /// Reseeds the deterministic trace/span id stream.
    ///
    /// Ids default to a fixed seed so repeated simulations produce
    /// identical traces; inject a different seed to make independent
    /// handles draw disjoint id streams.
    pub fn seed_trace_ids(&self, seed: u64) {
        *self.inner.trace_ids.lock().unwrap() = XorShift64::seed_from_u64(seed);
    }

    /// Starts a traced span named `name`, parented on the innermost
    /// live traced span (or rooting a fresh trace when there is none).
    ///
    /// Tracing is subscriber-gated like [`emit`](Obs::emit): without a
    /// subscriber this returns an untraced span — one atomic load, no
    /// ids drawn, nothing reported — so the call is safe on hot paths.
    pub fn enter_span(&self, name: &'static str) -> Span {
        Span::build(self.clone(), name, None, self.make_context(None))
    }

    /// Like [`enter_span`](Obs::enter_span), but the elapsed time is
    /// also recorded into `histogram` (even when tracing is disabled —
    /// metrics always count).
    pub fn enter_span_recording(&self, name: &'static str, histogram: &Arc<Histogram>) -> Span {
        Span::build(
            self.clone(),
            name,
            Some(Arc::clone(histogram)),
            self.make_context(None),
        )
    }

    /// Starts a traced span whose parent arrived from elsewhere — the
    /// wire envelope's `(trace_id, span_id)` pair. The new span joins
    /// that trace as a child of `parent_span_id` and becomes the
    /// current parent for spans opened while it is live.
    pub fn span_with_remote_parent(
        &self,
        name: &'static str,
        trace_id: u128,
        parent_span_id: u64,
    ) -> Span {
        Span::build(
            self.clone(),
            name,
            None,
            self.make_context(Some((trace_id, Some(parent_span_id)))),
        )
    }

    /// Starts a traced span explicitly parented on `parent` (which may
    /// be a span that has already finished — e.g. a wire submission
    /// parented under the completed flight span). With `None` this is
    /// [`enter_span`](Obs::enter_span).
    pub fn span_with_parent(&self, name: &'static str, parent: Option<&SpanContext>) -> Span {
        match parent {
            Some(p) => self.span_with_remote_parent(name, p.trace_id, p.span_id),
            None => self.enter_span(name),
        }
    }

    /// The innermost live traced span, if any.
    pub fn current_span(&self) -> Option<SpanContext> {
        self.inner.span_stack.lock().unwrap().last().copied()
    }

    /// Builds and pushes a context for a new traced span, or returns
    /// `None` (untraced) when no subscriber is installed. `explicit`
    /// overrides the stack-derived parent with `(trace_id, parent_id)`.
    fn make_context(&self, explicit: Option<(u128, Option<u64>)>) -> Option<SpanContext> {
        if !self.enabled() {
            return None;
        }
        let (trace_id, parent_id) = match explicit {
            Some(pair) => pair,
            None => match self.current_span() {
                Some(parent) => (parent.trace_id, Some(parent.span_id)),
                None => (self.next_trace_id(), None),
            },
        };
        let ctx = SpanContext {
            trace_id,
            span_id: self.next_span_id(),
            parent_id,
        };
        self.inner.span_stack.lock().unwrap().push(ctx);
        Some(ctx)
    }

    fn next_span_id(&self) -> u64 {
        let mut rng = self.inner.trace_ids.lock().unwrap();
        loop {
            let id = rng.next_u64();
            if id != 0 {
                return id;
            }
        }
    }

    fn next_trace_id(&self) -> u128 {
        let mut rng = self.inner.trace_ids.lock().unwrap();
        loop {
            let id = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if id != 0 {
                return id;
            }
        }
    }

    /// Removes a finished traced span from the live stack. Pops by id,
    /// not position, so out-of-order drops cannot corrupt the stack.
    pub(crate) fn exit_span(&self, ctx: SpanContext) {
        let mut stack = self.inner.span_stack.lock().unwrap();
        if let Some(pos) = stack.iter().rposition(|c| c.span_id == ctx.span_id) {
            stack.remove(pos);
        }
    }

    /// Hands a completed span to the subscriber, if one is installed.
    pub(crate) fn deliver_span(&self, record: &SpanRecord) {
        if !self.enabled() {
            return;
        }
        if let Some(sub) = self.inner.subscriber.lock().unwrap().as_ref() {
            sub.on_span(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_geo::Duration;

    #[test]
    fn emit_without_subscriber_runs_no_closure() {
        let obs = Obs::noop();
        let mut ran = false;
        obs.emit(Level::Info, "t", "m", |_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn emit_with_subscriber_delivers_fields_and_time() {
        let clock = Arc::new(ManualClock::new());
        clock.set(Timestamp::from_secs(42.0));
        let obs = Obs::new(clock);
        let ring = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(ring.clone());
        obs.emit(Level::Warn, "wire", "malformed_frame", |f| {
            f.field("frame_len", 3u64);
        });
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time.secs(), 42.0);
        assert_eq!(events[0].level, Level::Warn);
        assert_eq!(events[0].field("frame_len").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn clear_subscriber_restores_disabled_path() {
        let obs = Obs::wall();
        let ring = Arc::new(RingBuffer::new(4));
        obs.set_subscriber(ring.clone());
        obs.emit(Level::Info, "t", "a", |_| {});
        obs.clear_subscriber();
        obs.emit(Level::Info, "t", "b", |_| {});
        assert_eq!(ring.len(), 1);
        assert!(!obs.enabled());
    }

    #[test]
    fn clones_share_registry_and_subscriber() {
        let obs = Obs::noop();
        let other = obs.clone();
        obs.counter("shared").inc();
        assert_eq!(other.snapshot().counter("shared"), 1);
        let ring = Arc::new(RingBuffer::new(4));
        other.set_subscriber(ring.clone());
        obs.emit(Level::Debug, "t", "via_original", |_| {});
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn span_through_obs_records_sim_time() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new(clock.clone());
        let h = obs.histogram("flight.step");
        let span = obs.span(&h);
        clock.advance(Duration::from_secs(1.5));
        drop(span);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 1_500_000);
    }
}
