//! Atomic metric primitives and the registry that names them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed
//! out by a [`Registry`]; the registry takes a lock only at
//! registration time, so steady-state updates are plain atomic
//! read-modify-writes with no allocation — cheap enough to leave on in
//! a request loop or inside the modelled secure world.
//!
//! Histograms use fixed power-of-two buckets over microseconds, which
//! spans sub-microsecond wire dispatch up to the ~217 ms modelled cost
//! of a 2048-bit TEE signature in one 32-bucket array. Quantiles come
//! from linear interpolation inside the bucket where the rank falls —
//! the usual fixed-bucket estimator (same shape as Prometheus
//! `histogram_quantile`).

use crate::json::{Json, ToJson};
use alidrone_geo::Duration;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. Bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i)` microseconds; bucket 0 covers `[0, 1) µs`; the last
/// bucket absorbs everything larger (≈ 36 min and up).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

fn bucket_index(micros: u64) -> usize {
    // 0 → bucket 0; otherwise position of the highest set bit + 1,
    // clamped into the array.
    ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The exclusive upper bound of bucket `i`, in microseconds — `None`
/// for the final catch-all bucket (+∞). Bucket 0 is `[0, 1)` µs,
/// bucket `i ≥ 1` is `[2^(i-1), 2^i)` µs. Exporters (Prometheus `le`
/// labels) use this to reconstruct the bucket boundaries.
pub fn bucket_upper_micros(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

impl Histogram {
    /// Records one observation.
    ///
    /// Negative durations (possible when a simulated clock is rewound)
    /// clamp to zero rather than corrupt the distribution.
    pub fn record(&self, d: Duration) {
        let micros = (d.secs() * 1e6).max(0.0) as u64;
        self.record_micros(micros);
    }

    /// Records one observation given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary with interpolated quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum_micros = self.sum_micros.load(Ordering::Relaxed);
        let q = |p: f64| estimate_quantile(&buckets, count, p);
        HistogramSnapshot {
            count,
            sum_micros,
            p50_micros: q(0.50),
            p95_micros: q(0.95),
            p99_micros: q(0.99),
            buckets,
        }
    }
}

/// Quantile estimate from power-of-two buckets: walk to the bucket
/// containing the rank, then interpolate within its `[lo, hi)` range.
fn estimate_quantile(buckets: &[u64], count: u64, p: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = p * count as f64;
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = cumulative + n;
        if next as f64 >= rank {
            let lo = if i == 0 {
                0.0
            } else {
                (1u64 << (i - 1)) as f64
            };
            let hi = (1u64 << i) as f64;
            let within = ((rank - cumulative as f64) / n as f64).clamp(0.0, 1.0);
            return lo + (hi - lo) * within;
        }
        cumulative = next;
    }
    // Rank fell past the end (rounding); return the top of the last
    // occupied bucket.
    let last = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    (1u64 << last) as f64
}

/// A frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_micros: u64,
    /// Estimated median, microseconds.
    pub p50_micros: f64,
    /// Estimated 95th percentile, microseconds.
    pub p95_micros: f64,
    /// Estimated 99th percentile, microseconds.
    pub p99_micros: f64,
    /// Raw per-bucket counts (length [`HISTOGRAM_BUCKETS`]); bucket
    /// boundaries come from [`bucket_upper_micros`]. Exporters need
    /// the full distribution, not just the interpolated quantiles.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation in milliseconds (0 when empty).
    pub fn mean_millis(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Rebuilds a snapshot from raw per-bucket counts and a sum: the
    /// count is the bucket total and the quantiles are re-estimated
    /// with the same interpolation [`Histogram::snapshot`] uses.
    /// Exporters that parse the exposition format back (the soak
    /// sampler) and window-delta derivation both go through here so
    /// every snapshot's quantiles mean the same thing.
    pub fn from_buckets(buckets: Vec<u64>, sum_micros: u64) -> HistogramSnapshot {
        let count: u64 = buckets.iter().sum();
        let q = |p: f64| estimate_quantile(&buckets, count, p);
        HistogramSnapshot {
            count,
            sum_micros,
            p50_micros: q(0.50),
            p95_micros: q(0.95),
            p99_micros: q(0.99),
            buckets,
        }
    }

    /// The distribution observed *between* `earlier` and `self`:
    /// bucket-wise and sum-wise saturating subtraction, with the window
    /// quantiles re-estimated from the bucket deltas. This is what
    /// turns two cumulative scrapes into a per-window latency
    /// distribution.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| b.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot::from_buckets(buckets, self.sum_micros.saturating_sub(earlier.sum_micros))
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("sum_ms", Json::Num(self.sum_micros as f64 / 1_000.0)),
            ("mean_ms", Json::Num(self.mean_millis())),
            ("p50_ms", Json::Num(self.p50_micros / 1_000.0)),
            ("p95_ms", Json::Num(self.p95_micros / 1_000.0)),
            ("p99_ms", Json::Num(self.p99_micros / 1_000.0)),
        ])
    }
}

/// Names metrics and hands out shared handles.
///
/// Registration is idempotent: asking twice for the same name returns
/// the same underlying metric, so independent components can share a
/// counter by name.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Gets or creates the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Gets or creates the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Everything the registry knew at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when absent — reads like a fresh counter).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_moves_both_directions() {
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::default();
        // 100 observations of ~1 ms, 5 of ~100 ms.
        for _ in 0..100 {
            h.record(Duration::from_millis(1.0));
        }
        for _ in 0..5 {
            h.record(Duration::from_millis(100.0));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 105);
        // p50 in the bucket containing 1000 µs: [512, 1024).
        assert!(s.p50_micros >= 512.0 && s.p50_micros <= 1024.0, "{s:?}");
        // p99 in the bucket containing 100_000 µs: [65536, 131072).
        assert!(
            s.p99_micros >= 65_536.0 && s.p99_micros <= 131_072.0,
            "{s:?}"
        );
        assert!((s.mean_millis() - (100.0 + 500.0) / 105.0).abs() < 0.2);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_micros, 0.0);
        assert_eq!(s.mean_millis(), 0.0);
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        let h = Histogram::default();
        h.record(Duration::from_secs(-1.0));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 0);
    }

    #[test]
    fn registry_reuses_handles_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("req.total").add(7);
        r.gauge("inflight").set(-2);
        r.histogram("lat").record(Duration::from_millis(3.0));
        let json = r.snapshot().to_json();
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("req.total")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .unwrap()
                .get("inflight")
                .unwrap()
                .as_f64(),
            Some(-2.0)
        );
        assert_eq!(
            parsed
                .get("histograms")
                .unwrap()
                .get("lat")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn bucket_upper_bounds_are_exclusive() {
        // A value exactly at a bucket's upper bound must land in the
        // NEXT bucket: bucket 0 is [0, 1) µs, bucket i ≥ 1 is
        // [2^(i-1), 2^i) µs.
        let h = Histogram::default();
        h.record_micros(0); // bucket 0: [0, 1)
        h.record_micros(1); // == upper of bucket 0 → bucket 1
        h.record_micros(2); // == upper of bucket 1 → bucket 2
        h.record_micros(3); // inside bucket 2: [2, 4)
        h.record_micros(4); // == upper of bucket 2 → bucket 3
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[3], 1);
        // The boundary rule holds for every finite bucket upper bound.
        for i in 0..HISTOGRAM_BUCKETS {
            if let Some(upper) = bucket_upper_micros(i) {
                assert_eq!(bucket_index(upper), i + 1, "upper of bucket {i}");
                assert_eq!(
                    bucket_index(upper.saturating_sub(1)),
                    i,
                    "below upper of {i}"
                );
            }
        }
        // Huge values clamp into the final +Inf bucket instead of
        // indexing out of range.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn delta_since_yields_the_window_distribution() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(Duration::from_millis(1.0));
        }
        let first = h.snapshot();
        for _ in 0..5 {
            h.record(Duration::from_millis(100.0));
        }
        let second = h.snapshot();
        let window = second.delta_since(&first);
        assert_eq!(window.count, 5);
        assert_eq!(window.sum_micros, 500_000);
        // All 5 window observations are ~100 ms, so even the median
        // lands in the [65536, 131072) µs bucket.
        assert!(window.p50_micros >= 65_536.0 && window.p50_micros <= 131_072.0);
        // Degenerate window: nothing happened between two snapshots.
        let empty = second.delta_since(&second);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_micros, 0.0);
    }

    #[test]
    fn from_buckets_matches_live_snapshot() {
        let h = Histogram::default();
        h.record_micros(3);
        h.record_micros(700);
        h.record_micros(70_000);
        let live = h.snapshot();
        let rebuilt = HistogramSnapshot::from_buckets(live.buckets.clone(), live.sum_micros);
        assert_eq!(rebuilt, live);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let c = r.counter("hits");
        let h = r.histogram("lat");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.record_micros(10);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }
}
