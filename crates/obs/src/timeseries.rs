//! Windowed time-series over metrics snapshots.
//!
//! End-of-run snapshot totals answer "how much", not "when". This
//! module turns periodic [`MetricsSnapshot`]s — taken in-process or
//! parsed back from a `/metrics` scrape — into a bounded ring of
//! [`SeriesWindow`]s: per-window counter deltas (hence rates), gauge
//! readings, and per-window latency distributions rebuilt from
//! histogram bucket deltas (hence per-window quantiles). Any counter or
//! histogram in the registry becomes a rate-over-time series with no
//! external dependencies.
//!
//! Time is injected: [`SnapshotRing::observe`] takes the timestamp from
//! the caller, and the [`SnapshotRing::sample`] convenience reads the
//! [`Obs`] handle's clock — simulated time under `SimClock`, wall time
//! in a live soak.
//!
//! # Reconciliation
//!
//! The ring preserves an exact accounting identity even after eviction:
//! for every counter,
//!
//! ```text
//! first observed value + evicted deltas + retained window deltas
//!     == last observed value
//! ```
//!
//! [`SnapshotRing::reconcile_all`] checks this for every counter in the
//! latest snapshot; the fleet soak report uses it to prove its
//! per-window series add up to the server's final counters.

use crate::json::{Json, ToJson};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::Obs;
use alidrone_geo::Timestamp;
use std::collections::{BTreeMap, VecDeque};

/// One closed window of metric activity: everything that happened
/// between two consecutive snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesWindow {
    /// When the window opened (the earlier snapshot's time).
    pub start: Timestamp,
    /// When the window closed (the later snapshot's time).
    pub end: Timestamp,
    /// Counter increments inside the window.
    pub counters: BTreeMap<String, u64>,
    /// Gauge readings at the window's close (gauges are point-in-time,
    /// so a window carries the closing value, not a delta).
    pub gauges: BTreeMap<String, i64>,
    /// Per-window latency distributions: bucket deltas with quantiles
    /// re-estimated over just this window's observations.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl SeriesWindow {
    /// Builds the window between two cumulative snapshots. Counters
    /// subtract (saturating — a restarted registry reads as zero
    /// activity, never underflow); histograms subtract bucket-wise via
    /// [`HistogramSnapshot::delta_since`]; gauges carry the closing
    /// value.
    pub fn between(
        start: Timestamp,
        earlier: &MetricsSnapshot,
        end: Timestamp,
        later: &MetricsSnapshot,
    ) -> SeriesWindow {
        let counters = later
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), v.saturating_sub(earlier.counter(name))))
            .collect();
        let histograms = later
            .histograms
            .iter()
            .map(|(name, h)| {
                let delta = match earlier.histogram(name) {
                    Some(prev) => h.delta_since(prev),
                    None => h.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        SeriesWindow {
            start,
            end,
            counters,
            gauges: later.gauges.clone(),
            histograms,
        }
    }

    /// Window length in seconds (clamped at zero).
    pub fn duration_secs(&self) -> f64 {
        (self.end.secs() - self.start.secs()).max(0.0)
    }

    /// The counter's increment inside this window (0 when absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of several counters' increments — error and shed families
    /// are split across names.
    pub fn counter_sum<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> u64 {
        names.into_iter().map(|n| self.counter_delta(n)).sum()
    }

    /// The counter's rate over this window, per second (0 for a
    /// zero-length window).
    pub fn rate(&self, name: &str) -> f64 {
        let secs = self.duration_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.counter_delta(name) as f64 / secs
        }
    }

    /// The gauge's value at this window's *close* (0 when absent) —
    /// gauges are levels, not flows, so the boundary reading is the
    /// window's value.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// This window's latency distribution for `name`, if observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// This window's p99 for `name`, microseconds (0 when the
    /// histogram is absent or saw nothing this window).
    pub fn p99_micros(&self, name: &str) -> f64 {
        self.histograms.get(name).map_or(0.0, |h| h.p99_micros)
    }
}

impl ToJson for SeriesWindow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("start_secs", Json::Num(self.start.secs())),
            ("end_secs", Json::Num(self.end.secs())),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One counter's accounting check: does the series add up to the final
/// counter?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterReconciliation {
    /// The counter name.
    pub name: String,
    /// First observed value + evicted deltas + retained window deltas.
    pub series_total: u64,
    /// The last observed cumulative value.
    pub expected: u64,
}

impl CounterReconciliation {
    /// `true` when the series reconciles exactly.
    pub fn ok(&self) -> bool {
        self.series_total == self.expected
    }
}

impl ToJson for CounterReconciliation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("series_total", Json::Num(self.series_total as f64)),
            ("final", Json::Num(self.expected as f64)),
            ("ok", Json::Bool(self.ok())),
        ])
    }
}

/// A bounded ring of snapshot-delta windows.
///
/// Feed it cumulative snapshots with [`observe`](SnapshotRing::observe)
/// (or [`sample`](SnapshotRing::sample)); each pair of consecutive
/// snapshots closes one [`SeriesWindow`]. When the ring is full the
/// oldest window is evicted, but its counter deltas are folded into an
/// evicted-total map so [`reconcile_all`](SnapshotRing::reconcile_all)
/// stays exact over the whole run.
#[derive(Debug, Clone)]
pub struct SnapshotRing {
    cap: usize,
    windows: VecDeque<SeriesWindow>,
    first: Option<(Timestamp, MetricsSnapshot)>,
    last: Option<(Timestamp, MetricsSnapshot)>,
    evicted_windows: u64,
    evicted_counters: BTreeMap<String, u64>,
}

impl SnapshotRing {
    /// A ring retaining at most `cap` windows (`cap` is clamped to at
    /// least 1).
    pub fn new(cap: usize) -> SnapshotRing {
        SnapshotRing {
            cap: cap.max(1),
            windows: VecDeque::new(),
            first: None,
            last: None,
            evicted_windows: 0,
            evicted_counters: BTreeMap::new(),
        }
    }

    /// Feeds one cumulative snapshot taken at `t`. The first call sets
    /// the baseline; every later call closes a window against the
    /// previous snapshot.
    pub fn observe(&mut self, t: Timestamp, snapshot: MetricsSnapshot) {
        match self.last.take() {
            None => {
                self.first = Some((t, snapshot.clone()));
                self.last = Some((t, snapshot));
            }
            Some((prev_t, prev)) => {
                let window = SeriesWindow::between(prev_t, &prev, t, &snapshot);
                if self.windows.len() == self.cap {
                    if let Some(evicted) = self.windows.pop_front() {
                        self.evicted_windows += 1;
                        for (name, delta) in evicted.counters {
                            *self.evicted_counters.entry(name).or_insert(0) += delta;
                        }
                    }
                }
                self.windows.push_back(window);
                self.last = Some((t, snapshot));
            }
        }
    }

    /// Snapshots `obs` at its own clock's current time and feeds the
    /// result — simulated time under a `SimClock` bridge, wall time on
    /// a live server.
    pub fn sample(&mut self, obs: &Obs) {
        self.observe(obs.now(), obs.snapshot());
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &SeriesWindow> {
        self.windows.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&SeriesWindow> {
        self.windows.back()
    }

    /// The last `n` windows, oldest first.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &SeriesWindow> {
        self.windows
            .iter()
            .skip(self.windows.len().saturating_sub(n))
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` before any window has closed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted to honour the capacity bound.
    pub fn evicted_windows(&self) -> u64 {
        self.evicted_windows
    }

    /// The first observed cumulative snapshot (the baseline), if any.
    pub fn first(&self) -> Option<&(Timestamp, MetricsSnapshot)> {
        self.first.as_ref()
    }

    /// The latest observed cumulative snapshot, if any.
    pub fn last(&self) -> Option<&(Timestamp, MetricsSnapshot)> {
        self.last.as_ref()
    }

    /// `(window end, delta)` for one counter over the retained windows.
    pub fn counter_series(&self, name: &str) -> Vec<(Timestamp, u64)> {
        self.windows
            .iter()
            .map(|w| (w.end, w.counter_delta(name)))
            .collect()
    }

    /// `(window end, per-second rate)` for one counter.
    pub fn rate_series(&self, name: &str) -> Vec<(Timestamp, f64)> {
        self.windows.iter().map(|w| (w.end, w.rate(name))).collect()
    }

    /// `(window end, p99 µs)` for one histogram.
    pub fn p99_series(&self, name: &str) -> Vec<(Timestamp, f64)> {
        self.windows
            .iter()
            .map(|w| (w.end, w.p99_micros(name)))
            .collect()
    }

    /// The accounting check for one counter (see module docs).
    pub fn reconcile_counter(&self, name: &str) -> CounterReconciliation {
        let base = self.first.as_ref().map_or(0, |(_, s)| s.counter(name));
        let evicted = self.evicted_counters.get(name).copied().unwrap_or(0);
        let retained: u64 = self.windows.iter().map(|w| w.counter_delta(name)).sum();
        let expected = self.last.as_ref().map_or(0, |(_, s)| s.counter(name));
        CounterReconciliation {
            name: name.to_string(),
            series_total: base + evicted + retained,
            expected,
        }
    }

    /// The accounting check for every counter in the latest snapshot.
    pub fn reconcile_all(&self) -> Vec<CounterReconciliation> {
        let Some((_, last)) = &self.last else {
            return Vec::new();
        };
        last.counters
            .keys()
            .map(|name| self.reconcile_counter(name))
            .collect()
    }
}

impl ToJson for SnapshotRing {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cap", Json::Num(self.cap as f64)),
            ("evicted_windows", Json::Num(self.evicted_windows as f64)),
            (
                "first_secs",
                match &self.first {
                    Some((t, _)) => Json::Num(t.secs()),
                    None => Json::Null,
                },
            ),
            (
                "last_secs",
                match &self.last {
                    Some((t, _)) => Json::Num(t.secs()),
                    None => Json::Null,
                },
            ),
            (
                "windows",
                Json::Arr(self.windows.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use alidrone_geo::Duration;
    use std::sync::Arc;

    fn snap(counters: &[(&str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn windows_carry_deltas_and_rates() {
        let mut ring = SnapshotRing::new(8);
        ring.observe(Timestamp::from_secs(0.0), snap(&[("req", 10)]));
        ring.observe(Timestamp::from_secs(2.0), snap(&[("req", 16)]));
        assert_eq!(ring.len(), 1);
        let w = ring.latest().unwrap();
        assert_eq!(w.counter_delta("req"), 6);
        assert_eq!(w.rate("req"), 3.0);
        assert_eq!(w.counter_delta("absent"), 0);
        assert_eq!(
            ring.counter_series("req"),
            vec![(Timestamp::from_secs(2.0), 6)]
        );
    }

    #[test]
    fn eviction_preserves_exact_reconciliation() {
        let mut ring = SnapshotRing::new(2);
        for i in 0..=10u64 {
            ring.observe(
                Timestamp::from_secs(i as f64),
                snap(&[("req", 100 + i * 7)]),
            );
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted_windows(), 8);
        let rec = ring.reconcile_counter("req");
        assert!(rec.ok(), "{rec:?}");
        assert_eq!(rec.expected, 170);
        for rec in ring.reconcile_all() {
            assert!(rec.ok(), "{rec:?}");
        }
    }

    #[test]
    fn counters_appearing_mid_stream_still_reconcile() {
        let mut ring = SnapshotRing::new(4);
        ring.observe(Timestamp::from_secs(0.0), snap(&[("a", 1)]));
        ring.observe(Timestamp::from_secs(1.0), snap(&[("a", 2), ("late", 5)]));
        ring.observe(Timestamp::from_secs(2.0), snap(&[("a", 3), ("late", 9)]));
        for rec in ring.reconcile_all() {
            assert!(rec.ok(), "{rec:?}");
        }
        assert_eq!(
            ring.counter_series("late"),
            vec![
                (Timestamp::from_secs(1.0), 5),
                (Timestamp::from_secs(2.0), 4),
            ]
        );
    }

    #[test]
    fn histogram_windows_get_their_own_quantiles() {
        let obs = Obs::noop();
        let h = obs.histogram("lat");
        let mut ring = SnapshotRing::new(8);
        for _ in 0..50 {
            h.record(Duration::from_millis(1.0));
        }
        ring.observe(Timestamp::from_secs(0.0), obs.snapshot());
        for _ in 0..10 {
            h.record(Duration::from_millis(200.0));
        }
        ring.observe(Timestamp::from_secs(1.0), obs.snapshot());
        // The cumulative p99 would be dominated by the 50 fast
        // observations; the *window* p99 sees only the slow ones.
        let w = ring.latest().unwrap();
        let win = w.histogram("lat").unwrap();
        assert_eq!(win.count, 10);
        assert!(win.p50_micros >= 131_072.0, "{win:?}");
        assert!(w.p99_micros("lat") >= 131_072.0);
        assert_eq!(w.p99_micros("absent"), 0.0);
    }

    #[test]
    fn sample_reads_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new(clock.clone());
        obs.counter("c").inc();
        let mut ring = SnapshotRing::new(4);
        clock.set(Timestamp::from_secs(5.0));
        ring.sample(&obs);
        obs.counter("c").add(3);
        clock.set(Timestamp::from_secs(8.0));
        ring.sample(&obs);
        let w = ring.latest().unwrap();
        assert_eq!(w.start.secs(), 5.0);
        assert_eq!(w.end.secs(), 8.0);
        assert_eq!(w.counter_delta("c"), 3);
        assert_eq!(w.rate("c"), 1.0);
    }

    #[test]
    fn empty_and_single_observation_edges() {
        let mut ring = SnapshotRing::new(4);
        assert!(ring.is_empty());
        assert!(ring.reconcile_all().is_empty());
        assert!(ring.latest().is_none());
        ring.observe(Timestamp::from_secs(0.0), snap(&[("x", 9)]));
        // One observation = a baseline, no window yet — but the
        // degenerate reconciliation already holds.
        assert!(ring.is_empty());
        let rec = ring.reconcile_counter("x");
        assert!(rec.ok());
        assert_eq!(rec.expected, 9);
    }

    #[test]
    fn json_export_round_trips() {
        let mut ring = SnapshotRing::new(4);
        ring.observe(Timestamp::from_secs(0.0), snap(&[("req", 0)]));
        ring.observe(Timestamp::from_secs(1.0), snap(&[("req", 4)]));
        let doc = Json::parse(&ring.to_json().to_pretty()).unwrap();
        assert_eq!(doc.get("evicted_windows").unwrap().as_u64(), Some(0));
        let w = doc.get("windows").unwrap().at(0).unwrap();
        assert_eq!(
            w.get("counters").unwrap().get("req").unwrap().as_u64(),
            Some(4)
        );
    }
}
