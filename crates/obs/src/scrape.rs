//! A live introspection endpoint: the smallest HTTP server that can
//! answer a Prometheus scrape.
//!
//! The workspace is offline and std-only, so this is a hand-rolled
//! HTTP/1.0 GET handler over `std::net` — no routing table, no
//! keep-alive, one short-lived connection per scrape (exactly what
//! Prometheus and `curl` send). Two paths exist:
//!
//! * `GET /metrics` — [`prometheus_text`] of a live snapshot, plus the
//!   slowest-request exemplar gauges and the flight recorder's
//!   retained/dropped counts when those sources are mounted.
//! * `GET /dump` — a JSON flight-recorder view: the metrics snapshot,
//!   the recorder's retained spans/events, and the slowest-N exemplar
//!   table, all in one self-contained document.
//!
//! Anything else is answered `404`; non-GET methods get `405`. The
//! listener accepts on one background thread and serves each
//! connection on its own short-lived thread, so a slow scraper cannot
//! wedge a concurrent one (a soak runs a sampler *and* humans with
//! `curl` against the same port). The serve loop tolerates request
//! heads split across writes and answers pipelined requests in order,
//! each response carrying its own `Content-Length`. Shutdown stays
//! prompt via the same wake-connection trick the TCP front end uses.

use crate::export::prometheus_text;
use crate::json::{Json, ToJson};
use crate::recorder::FlightRecorder;
use crate::stage::SlowTable;
use crate::Obs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Bound on one scrape request head (we only need the request line).
const MAX_REQUEST_BYTES: usize = 4096;

/// Bound on requests answered over one pipelined connection.
const MAX_PIPELINED_REQUESTS: usize = 32;

/// Socket timeouts for scrape connections: a scraper that stalls this
/// long is dropped rather than wedging the listener thread.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Bound on the shutdown wake-connection dial.
const WAKE_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// What a [`ScrapeServer`] exposes: the metrics registry always, the
/// flight recorder and slowest-request table when mounted.
#[derive(Debug, Clone)]
pub struct ScrapeSources {
    obs: Obs,
    recorder: Option<Arc<FlightRecorder>>,
    slow: Option<Arc<SlowTable>>,
}

impl ScrapeSources {
    /// Sources exposing `obs`'s metrics only.
    pub fn new(obs: &Obs) -> ScrapeSources {
        ScrapeSources {
            obs: obs.clone(),
            recorder: None,
            slow: None,
        }
    }

    /// Also expose a flight recorder (retained spans/events in `/dump`,
    /// retained/dropped counts in `/metrics`).
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> ScrapeSources {
        self.recorder = Some(recorder);
        self
    }

    /// Also expose a slowest-request exemplar table.
    pub fn with_slow_table(mut self, slow: Arc<SlowTable>) -> ScrapeSources {
        self.slow = Some(slow);
        self
    }

    /// The `/metrics` body: live snapshot + exemplars + recorder counts.
    pub fn metrics_body(&self) -> String {
        let mut body = prometheus_text(&self.obs.snapshot());
        if let Some(slow) = &self.slow {
            body.push_str(&slow.prometheus_text("server.slowest_seconds"));
        }
        if let Some(rec) = &self.recorder {
            body.push_str(&recorder_prometheus(rec));
        }
        body
    }

    /// The `/dump` body: one JSON document for post-mortem tooling.
    pub fn dump_body(&self) -> String {
        Json::obj([
            ("metrics", self.obs.snapshot().to_json()),
            (
                "recorder",
                match &self.recorder {
                    Some(rec) => rec.dump().to_json(),
                    None => Json::Null,
                },
            ),
            (
                "slow_table",
                match &self.slow {
                    Some(slow) => slow.to_json(),
                    None => Json::Null,
                },
            ),
        ])
        .to_pretty()
    }
}

/// Renders a recorder's occupancy and drop counters as Prometheus
/// samples, making buffer-sizing visible to a live scrape.
fn recorder_prometheus(rec: &FlightRecorder) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        "flight_recorder_dropped_spans_total",
        "Spans evicted from the flight recorder to make room.",
        rec.dropped_spans(),
    );
    counter(
        "flight_recorder_dropped_events_total",
        "Events evicted from the flight recorder to make room.",
        rec.dropped_events(),
    );
    let mut gauge = |name: &str, help: &str, v: usize| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
    };
    gauge(
        "flight_recorder_spans",
        "Spans currently retained by the flight recorder.",
        rec.spans().len(),
    );
    gauge(
        "flight_recorder_events",
        "Events currently retained by the flight recorder.",
        rec.events().len(),
    );
    out
}

/// A live scrape endpoint bound to a local port.
///
/// Created with [`ScrapeServer::bind`]; serving starts immediately on a
/// background thread. Dropping the handle (or calling
/// [`shutdown`](ScrapeServer::shutdown)) stops the listener.
#[derive(Debug)]
pub struct ScrapeServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    scrapes: Arc<AtomicU64>,
}

impl ScrapeServer {
    /// Binds `addr` (port 0 for an OS-assigned port) and starts
    /// answering scrapes of `sources`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, sources: ScrapeSources) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));

        let thread_shutdown = Arc::clone(&shutdown);
        let thread_scrapes = Arc::clone(&scrapes);
        let thread = thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if thread_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    thread_scrapes.fetch_add(1, Ordering::Relaxed);
                    // One short-lived thread per connection: scrapes
                    // are cheap reads, but a stalled client must not
                    // block a concurrent sampler. IO timeouts bound
                    // each thread's lifetime.
                    let conn_sources = sources.clone();
                    thread::spawn(move || {
                        let _ = serve_scrape(stream, &conn_sources);
                    });
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if thread_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(10));
                }
            }
        });

        Ok(ScrapeServer {
            local_addr,
            shutdown,
            thread: Some(thread),
            scrapes,
        })
    }

    /// The bound address (with the OS-assigned port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far (shutdown wakes excluded only when
    /// the listener was already stopping).
    pub fn scrape_count(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; fall
        // back to plain loopback when the bound address is a wildcard.
        let woke = TcpStream::connect_timeout(&self.local_addr, WAKE_CONNECT_TIMEOUT)
            .or_else(|_| {
                TcpStream::connect_timeout(
                    &SocketAddr::from(([127, 0, 0, 1], self.local_addr.port())),
                    WAKE_CONNECT_TIMEOUT,
                )
            })
            .is_ok();
        if let Some(t) = self.thread.take() {
            if woke {
                let _ = t.join();
            }
            // Wake failed: leave the thread parked in accept; the OS
            // reclaims it at process exit. Joining would hang shutdown.
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection: reads until request heads are complete
/// (tolerating heads split across writes), answers every buffered head
/// in order, and closes once the client stops pipelining (buffer
/// drained after at least one answer), hits EOF, or exceeds the
/// pipelining cap.
fn serve_scrape(mut stream: TcpStream, sources: &ScrapeSources) -> io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 1024];
    let mut served = 0usize;
    loop {
        let n = match stream.read(&mut tmp) {
            Ok(n) => n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let eof = n == 0;
        buf.extend_from_slice(&tmp[..n]);

        // Drain every complete head currently buffered.
        let mut heads = Vec::new();
        while let Some(end) = head_end(&buf) {
            heads.push(String::from_utf8_lossy(&buf[..end]).into_owned());
            buf.drain(..end);
            if served + heads.len() >= MAX_PIPELINED_REQUESTS {
                break;
            }
        }
        // A head that can never complete within the cap is a bad
        // request; a trailing partial head at EOF is answered by
        // whatever its request line parses to.
        let oversized = heads.is_empty() && buf.len() >= MAX_REQUEST_BYTES;
        if (eof || oversized) && !buf.is_empty() {
            heads.push(String::from_utf8_lossy(&buf).into_owned());
            buf.clear();
        }
        let done = eof
            || oversized
            || (!heads.is_empty() && buf.is_empty())
            || served + heads.len() >= MAX_PIPELINED_REQUESTS;
        let total = heads.len();
        for (i, head) in heads.iter().enumerate() {
            let close = done && i + 1 == total;
            write_response(&mut stream, sources, head, close)?;
            served += 1;
        }
        if done {
            break;
        }
    }
    stream.flush()
}

/// The position just past the `\r\n\r\n` ending the first complete
/// request head in `buf`, if any.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Routes one request head and writes its response, always with an
/// exact `Content-Length` so pipelined clients can frame the stream.
fn write_response(
    stream: &mut TcpStream,
    sources: &ScrapeSources,
    head: &str,
    close: bool,
) -> io::Result<()> {
    let (status, content_type, body) = match parse_request_line(head) {
        Some(("GET", path)) => match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                sources.metrics_body(),
            ),
            "/dump" => ("200 OK", "application/json", sources.dump_body()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        },
        Some((_, _)) => (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n".to_string(),
        ),
        None => ("400 Bad Request", "text/plain", "bad request\n".to_string()),
    };
    let connection = if close { "close" } else { "keep-alive" };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Splits `GET /path HTTP/1.x` into (method, path); query strings are
/// stripped so `/metrics?probe=1` still resolves.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::SlowExemplar;
    use crate::Level;

    /// A minimal HTTP GET client for the tests.
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
        (head.to_string(), body.to_string())
    }

    fn sources_with_everything() -> (Obs, Arc<FlightRecorder>, Arc<SlowTable>, ScrapeSources) {
        let obs = Obs::noop();
        let recorder = Arc::new(FlightRecorder::new(8));
        obs.set_subscriber(recorder.clone());
        let slow = Arc::new(SlowTable::new(4));
        let sources = ScrapeSources::new(&obs)
            .with_recorder(recorder.clone())
            .with_slow_table(slow.clone());
        (obs, recorder, slow, sources)
    }

    #[test]
    fn metrics_path_serves_live_prometheus_text() {
        let (obs, _rec, slow, sources) = sources_with_everything();
        obs.counter("server.requests").add(3);
        slow.offer(SlowExemplar {
            kind: "submit_poa".into(),
            total_micros: 1_234,
            queue_wait_micros: 0,
            stages: vec![("handle", 1_234)],
            trace_id: None,
            span_id: None,
        });
        let server = ScrapeServer::bind("127.0.0.1:0", sources).unwrap();
        let (head, body) = http_get(server.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("server_requests_total 3"), "{body}");
        assert!(body.contains("server_slowest_seconds{rank=\"0\""), "{body}");
        assert!(
            body.contains("flight_recorder_dropped_spans_total 0"),
            "{body}"
        );

        // The scrape is live: bump a counter and scrape again.
        obs.counter("server.requests").add(4);
        let (_, body) = http_get(server.local_addr(), "/metrics");
        assert!(body.contains("server_requests_total 7"), "{body}");
        assert_eq!(server.scrape_count(), 2);
        server.shutdown();
    }

    #[test]
    fn dump_path_serves_recorder_and_slow_table_json() {
        let (obs, _rec, _slow, sources) = sources_with_everything();
        obs.emit(Level::Warn, "wire", "malformed_frame", |f| {
            f.field("frame_len", 9u64);
        });
        obs.enter_span("server.submit_poa").finish();
        let server = ScrapeServer::bind("127.0.0.1:0", sources).unwrap();
        let (head, body) = http_get(server.local_addr(), "/dump");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let parsed = Json::parse(&body).unwrap();
        assert!(parsed.get("metrics").unwrap().get("counters").is_some());
        let recorder = parsed.get("recorder").unwrap();
        assert_eq!(
            recorder
                .get("spans")
                .unwrap()
                .at(0)
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("server.submit_poa")
        );
        assert!(parsed.get("slow_table").unwrap().get("slowest").is_some());
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_get_typed_statuses() {
        let obs = Obs::noop();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();
        let (head, _) = http_get(server.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn query_strings_are_stripped() {
        let obs = Obs::noop();
        obs.counter("x").inc();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();
        let (head, body) = http_get(server.local_addr(), "/metrics?seed=1");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("x_total 1"), "{body}");
        server.shutdown();
    }

    /// Splits a raw byte stream of HTTP responses using each response's
    /// `Content-Length` to frame its body.
    fn split_responses(raw: &str) -> Vec<(String, String)> {
        let mut rest = raw;
        let mut out = Vec::new();
        while !rest.is_empty() {
            let (head, after) = rest.split_once("\r\n\r\n").expect("response head");
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("Content-Length header")
                .parse()
                .unwrap();
            out.push((head.to_string(), after[..len].to_string()));
            rest = &after[len..];
        }
        out
    }

    #[test]
    fn pipelined_requests_each_get_full_framed_responses() {
        let obs = Obs::noop();
        obs.counter("x").add(9);
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(
                b"GET /metrics HTTP/1.0\r\nHost: a\r\n\r\nGET /metrics HTTP/1.0\r\nHost: b\r\n\r\n",
            )
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();

        let responses = split_responses(&raw);
        assert_eq!(responses.len(), 2, "{raw}");
        for (head, body) in &responses {
            assert!(head.starts_with("HTTP/1.0 200"), "{head}");
            assert!(body.contains("x_total 9"), "{body}");
        }
        // The stream framed exactly: nothing left over, final response
        // announces the close.
        assert!(responses[1].0.contains("Connection: close"));
        server.shutdown();
    }

    #[test]
    fn request_head_split_across_writes_is_tolerated() {
        let obs = Obs::noop();
        obs.counter("x").inc();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"GET /met").unwrap();
        stream.flush().unwrap();
        thread::sleep(Duration::from_millis(50));
        stream
            .write_all(b"rics HTTP/1.0\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("x_total 1"), "{body}");
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_get_consistent_full_bodies() {
        let obs = Obs::noop();
        obs.counter("soak.requests").inc();
        let server = Arc::new(ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap());

        // A mutator keeps the registry moving mid-scrape, as a live
        // soak would.
        let stop = Arc::new(AtomicBool::new(false));
        let mutator = {
            let obs = obs.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let c = obs.counter("soak.requests");
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    obs.histogram("soak.latency").record_micros(250);
                }
            })
        };

        let clients: Vec<_> = (0..2)
            .map(|_| {
                let addr = server.local_addr();
                thread::spawn(move || {
                    for _ in 0..5 {
                        let (head, body) = http_get(addr, "/metrics");
                        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
                        let advertised: usize = head
                            .lines()
                            .find_map(|l| l.strip_prefix("Content-Length: "))
                            .expect("Content-Length header")
                            .parse()
                            .unwrap();
                        // The body is exactly as long as advertised and
                        // internally consistent Prometheus text.
                        assert_eq!(advertised, body.len());
                        assert!(body.contains("soak_requests_total"), "{body}");
                        assert!(body.ends_with('\n'), "truncated body");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        mutator.join().unwrap();
        assert_eq!(server.scrape_count(), 10);
        Arc::try_unwrap(server).unwrap().shutdown();
    }

    #[test]
    fn shutdown_is_prompt() {
        let obs = Obs::noop();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
