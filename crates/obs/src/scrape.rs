//! A live introspection endpoint: the smallest HTTP server that can
//! answer a Prometheus scrape.
//!
//! The workspace is offline and std-only, so this is a hand-rolled
//! HTTP/1.0 GET handler over `std::net` — no routing table, no
//! keep-alive, one short-lived connection per scrape (exactly what
//! Prometheus and `curl` send). Two paths exist:
//!
//! * `GET /metrics` — [`prometheus_text`] of a live snapshot, plus the
//!   slowest-request exemplar gauges and the flight recorder's
//!   retained/dropped counts when those sources are mounted.
//! * `GET /dump` — a JSON flight-recorder view: the metrics snapshot,
//!   the recorder's retained spans/events, and the slowest-N exemplar
//!   table, all in one self-contained document.
//!
//! Anything else is answered `404`; non-GET methods get `405`. The
//! listener runs on one background thread (scrapes are cheap reads; a
//! worker pool would be ceremony), and shuts down promptly via the same
//! wake-connection trick the TCP front end uses.

use crate::export::prometheus_text;
use crate::json::{Json, ToJson};
use crate::recorder::FlightRecorder;
use crate::stage::SlowTable;
use crate::Obs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Bound on one scrape request head (we only need the request line).
const MAX_REQUEST_BYTES: usize = 4096;

/// Socket timeouts for scrape connections: a scraper that stalls this
/// long is dropped rather than wedging the listener thread.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Bound on the shutdown wake-connection dial.
const WAKE_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// What a [`ScrapeServer`] exposes: the metrics registry always, the
/// flight recorder and slowest-request table when mounted.
#[derive(Debug, Clone)]
pub struct ScrapeSources {
    obs: Obs,
    recorder: Option<Arc<FlightRecorder>>,
    slow: Option<Arc<SlowTable>>,
}

impl ScrapeSources {
    /// Sources exposing `obs`'s metrics only.
    pub fn new(obs: &Obs) -> ScrapeSources {
        ScrapeSources {
            obs: obs.clone(),
            recorder: None,
            slow: None,
        }
    }

    /// Also expose a flight recorder (retained spans/events in `/dump`,
    /// retained/dropped counts in `/metrics`).
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> ScrapeSources {
        self.recorder = Some(recorder);
        self
    }

    /// Also expose a slowest-request exemplar table.
    pub fn with_slow_table(mut self, slow: Arc<SlowTable>) -> ScrapeSources {
        self.slow = Some(slow);
        self
    }

    /// The `/metrics` body: live snapshot + exemplars + recorder counts.
    pub fn metrics_body(&self) -> String {
        let mut body = prometheus_text(&self.obs.snapshot());
        if let Some(slow) = &self.slow {
            body.push_str(&slow.prometheus_text("server.slowest_seconds"));
        }
        if let Some(rec) = &self.recorder {
            body.push_str(&recorder_prometheus(rec));
        }
        body
    }

    /// The `/dump` body: one JSON document for post-mortem tooling.
    pub fn dump_body(&self) -> String {
        Json::obj([
            ("metrics", self.obs.snapshot().to_json()),
            (
                "recorder",
                match &self.recorder {
                    Some(rec) => rec.dump().to_json(),
                    None => Json::Null,
                },
            ),
            (
                "slow_table",
                match &self.slow {
                    Some(slow) => slow.to_json(),
                    None => Json::Null,
                },
            ),
        ])
        .to_pretty()
    }
}

/// Renders a recorder's occupancy and drop counters as Prometheus
/// samples, making buffer-sizing visible to a live scrape.
fn recorder_prometheus(rec: &FlightRecorder) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        "flight_recorder_dropped_spans_total",
        "Spans evicted from the flight recorder to make room.",
        rec.dropped_spans(),
    );
    counter(
        "flight_recorder_dropped_events_total",
        "Events evicted from the flight recorder to make room.",
        rec.dropped_events(),
    );
    let mut gauge = |name: &str, help: &str, v: usize| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
        ));
    };
    gauge(
        "flight_recorder_spans",
        "Spans currently retained by the flight recorder.",
        rec.spans().len(),
    );
    gauge(
        "flight_recorder_events",
        "Events currently retained by the flight recorder.",
        rec.events().len(),
    );
    out
}

/// A live scrape endpoint bound to a local port.
///
/// Created with [`ScrapeServer::bind`]; serving starts immediately on a
/// background thread. Dropping the handle (or calling
/// [`shutdown`](ScrapeServer::shutdown)) stops the listener.
#[derive(Debug)]
pub struct ScrapeServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    scrapes: Arc<AtomicU64>,
}

impl ScrapeServer {
    /// Binds `addr` (port 0 for an OS-assigned port) and starts
    /// answering scrapes of `sources`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: impl ToSocketAddrs, sources: ScrapeSources) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));

        let thread_shutdown = Arc::clone(&shutdown);
        let thread_scrapes = Arc::clone(&scrapes);
        let thread = thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if thread_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    thread_scrapes.fetch_add(1, Ordering::Relaxed);
                    // Served inline: a scrape is two cheap reads and a
                    // write, and serialising them keeps the endpoint
                    // from amplifying load on an overloaded host.
                    let _ = serve_scrape(stream, &sources);
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if thread_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(10));
                }
            }
        });

        Ok(ScrapeServer {
            local_addr,
            shutdown,
            thread: Some(thread),
            scrapes,
        })
    }

    /// The bound address (with the OS-assigned port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far (shutdown wakes excluded only when
    /// the listener was already stopping).
    pub fn scrape_count(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; fall
        // back to plain loopback when the bound address is a wildcard.
        let woke = TcpStream::connect_timeout(&self.local_addr, WAKE_CONNECT_TIMEOUT)
            .or_else(|_| {
                TcpStream::connect_timeout(
                    &SocketAddr::from(([127, 0, 0, 1], self.local_addr.port())),
                    WAKE_CONNECT_TIMEOUT,
                )
            })
            .is_ok();
        if let Some(t) = self.thread.take() {
            if woke {
                let _ = t.join();
            }
            // Wake failed: leave the thread parked in accept; the OS
            // reclaims it at process exit. Joining would hang shutdown.
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Reads one HTTP request head and writes the matching response.
fn serve_scrape(mut stream: TcpStream, sources: &ScrapeSources) -> io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    let head = read_request_head(&mut stream)?;
    let (status, content_type, body) = match parse_request_line(&head) {
        Some(("GET", path)) => match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                sources.metrics_body(),
            ),
            "/dump" => ("200 OK", "application/json", sources.dump_body()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        },
        Some((_, _)) => (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n".to_string(),
        ),
        None => ("400 Bad Request", "text/plain", "bad request\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the blank line ending the request head (or the size cap,
/// which is plenty for any GET we answer).
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 512];
    loop {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&tmp[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Splits `GET /path HTTP/1.x` into (method, path); query strings are
/// stripped so `/metrics?probe=1` still resolves.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    let path = path.split('?').next().unwrap_or(path);
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::SlowExemplar;
    use crate::Level;

    /// A minimal HTTP GET client for the tests.
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
        (head.to_string(), body.to_string())
    }

    fn sources_with_everything() -> (Obs, Arc<FlightRecorder>, Arc<SlowTable>, ScrapeSources) {
        let obs = Obs::noop();
        let recorder = Arc::new(FlightRecorder::new(8));
        obs.set_subscriber(recorder.clone());
        let slow = Arc::new(SlowTable::new(4));
        let sources = ScrapeSources::new(&obs)
            .with_recorder(recorder.clone())
            .with_slow_table(slow.clone());
        (obs, recorder, slow, sources)
    }

    #[test]
    fn metrics_path_serves_live_prometheus_text() {
        let (obs, _rec, slow, sources) = sources_with_everything();
        obs.counter("server.requests").add(3);
        slow.offer(SlowExemplar {
            kind: "submit_poa".into(),
            total_micros: 1_234,
            queue_wait_micros: 0,
            stages: vec![("handle", 1_234)],
            trace_id: None,
            span_id: None,
        });
        let server = ScrapeServer::bind("127.0.0.1:0", sources).unwrap();
        let (head, body) = http_get(server.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("server_requests_total 3"), "{body}");
        assert!(body.contains("server_slowest_seconds{rank=\"0\""), "{body}");
        assert!(
            body.contains("flight_recorder_dropped_spans_total 0"),
            "{body}"
        );

        // The scrape is live: bump a counter and scrape again.
        obs.counter("server.requests").add(4);
        let (_, body) = http_get(server.local_addr(), "/metrics");
        assert!(body.contains("server_requests_total 7"), "{body}");
        assert_eq!(server.scrape_count(), 2);
        server.shutdown();
    }

    #[test]
    fn dump_path_serves_recorder_and_slow_table_json() {
        let (obs, _rec, _slow, sources) = sources_with_everything();
        obs.emit(Level::Warn, "wire", "malformed_frame", |f| {
            f.field("frame_len", 9u64);
        });
        obs.enter_span("server.submit_poa").finish();
        let server = ScrapeServer::bind("127.0.0.1:0", sources).unwrap();
        let (head, body) = http_get(server.local_addr(), "/dump");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let parsed = Json::parse(&body).unwrap();
        assert!(parsed.get("metrics").unwrap().get("counters").is_some());
        let recorder = parsed.get("recorder").unwrap();
        assert_eq!(
            recorder
                .get("spans")
                .unwrap()
                .at(0)
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("server.submit_poa")
        );
        assert!(parsed.get("slow_table").unwrap().get("slowest").is_some());
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_get_typed_statuses() {
        let obs = Obs::noop();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();
        let (head, _) = http_get(server.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn query_strings_are_stripped() {
        let obs = Obs::noop();
        obs.counter("x").inc();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();
        let (head, body) = http_get(server.local_addr(), "/metrics?seed=1");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("x_total 1"), "{body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt() {
        let obs = Obs::noop();
        let server = ScrapeServer::bind("127.0.0.1:0", ScrapeSources::new(&obs)).unwrap();
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(2));
    }
}
