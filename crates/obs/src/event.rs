//! Structured events: levels, key-value fields, subscribers.
//!
//! An event is a timestamped message plus typed fields — the auditable
//! trail the paper's evaluation kept by hand (per-sample costs,
//! sampling-rate changes). Emission is pull-gated: the caller passes a
//! closure that builds fields, and the closure only runs when a
//! subscriber is installed, so the disabled path costs one atomic load
//! and never allocates.

use crate::json::{Json, ToJson};
use crate::span::SpanRecord;
use alidrone_geo::Timestamp;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Event severity, lowest to highest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained tracing (per-sample decisions).
    Debug,
    /// Normal operational milestones.
    Info,
    /// Something suspicious but recoverable (malformed frame, fault injected).
    Warn,
    /// A failed operation.
    Error,
}

impl Level {
    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text (allocated only on the enabled path).
    Str(String),
}

impl Value {
    /// The unsigned payload, if that is what this is.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if that is what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::Num(*v as f64),
            Value::I64(v) => Json::Num(*v as f64),
            Value::F64(v) => Json::Num(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When it happened (sim or wall time, per the installed clock).
    pub time: Timestamp,
    /// Severity.
    pub level: Level,
    /// The emitting component, dotted-path style (`"wire.server"`).
    pub target: &'static str,
    /// Human-readable summary.
    pub message: &'static str,
    /// Typed key-value fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Field lookup by key (first match).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("t".to_string(), Json::Num(self.time.secs())),
            ("level".to_string(), Json::str(self.level.as_str())),
            ("target".to_string(), Json::str(self.target)),
            ("message".to_string(), Json::str(self.message)),
        ];
        if !self.fields.is_empty() {
            pairs.push((
                "fields".to_string(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Obj(pairs)
    }
}

/// Accumulates fields for an event under construction.
///
/// Handed to the emit closure; `field` calls chain.
#[derive(Debug, Default)]
pub struct FieldSet {
    pub(crate) fields: Vec<(&'static str, Value)>,
}

impl FieldSet {
    /// Adds one field.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) -> &mut Self {
        self.fields.push((key, value.into()));
        self
    }
}

/// Receives every emitted event and completed traced span.
pub trait Subscriber: Send + Sync {
    /// Called once per event, in emission order per thread.
    fn on_event(&self, event: &Event);

    /// Called once per completed traced span (children before parents,
    /// in completion order). Default is a no-op so event-only
    /// subscribers like [`RingBuffer`] need no changes.
    fn on_span(&self, _span: &SpanRecord) {}
}

/// Forwards every event and span to each of a list of subscribers, in
/// order — the way to keep a [`RingBuffer`] *and* a
/// [`FlightRecorder`](crate::FlightRecorder) on one handle.
pub struct Fanout {
    subscribers: Vec<Arc<dyn Subscriber>>,
}

impl Fanout {
    /// A fanout over `subscribers` (delivery order = vec order).
    pub fn new(subscribers: Vec<Arc<dyn Subscriber>>) -> Self {
        Fanout { subscribers }
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fanout")
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

impl Subscriber for Fanout {
    fn on_event(&self, event: &Event) {
        for sub in &self.subscribers {
            sub.on_event(event);
        }
    }

    fn on_span(&self, span: &SpanRecord) {
        for sub in &self.subscribers {
            sub.on_span(span);
        }
    }
}

/// A bounded in-memory subscriber: keeps the most recent `capacity`
/// events. The test and sim workhorse.
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: Mutex<u64>,
}

impl RingBuffer {
    /// A ring buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: Mutex::new(0),
        }
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Retained events matching a predicate.
    pub fn events_where(&self, pred: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock().unwrap()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for RingBuffer {
    fn on_event(&self, event: &Event) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
            *self.dropped.lock().unwrap() += 1;
        }
        q.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(msg: &'static str, t: f64) -> Event {
        Event {
            time: Timestamp::from_secs(t),
            level: Level::Info,
            target: "test",
            message: msg,
            fields: vec![("n", Value::U64(1))],
        }
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let rb = RingBuffer::new(2);
        rb.on_event(&ev("a", 0.0));
        rb.on_event(&ev("b", 1.0));
        rb.on_event(&ev("c", 2.0));
        let events = rb.events();
        assert_eq!(
            events.iter().map(|e| e.message).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert_eq!(rb.dropped(), 1);
    }

    #[test]
    fn field_lookup_and_filtering() {
        let rb = RingBuffer::new(8);
        rb.on_event(&ev("x", 0.0));
        rb.on_event(&ev("y", 1.0));
        let only_y = rb.events_where(|e| e.message == "y");
        assert_eq!(only_y.len(), 1);
        assert_eq!(only_y[0].field("n").unwrap().as_u64(), Some(1));
        assert!(only_y[0].field("missing").is_none());
    }

    #[test]
    fn event_json_shape() {
        let mut e = ev("rate_change", 12.5);
        e.fields.push(("d1_m", Value::F64(321.0)));
        let json = e.to_json();
        assert_eq!(json.get("t").unwrap().as_f64(), Some(12.5));
        assert_eq!(json.get("message").unwrap().as_str(), Some("rate_change"));
        assert_eq!(
            json.get("fields").unwrap().get("d1_m").unwrap().as_f64(),
            Some(321.0)
        );
    }

    #[test]
    fn fanout_delivers_to_every_subscriber() {
        let a = Arc::new(RingBuffer::new(4));
        let b = Arc::new(RingBuffer::new(4));
        let fan = Fanout::new(vec![
            a.clone() as Arc<dyn Subscriber>,
            b.clone() as Arc<dyn Subscriber>,
        ]);
        fan.on_event(&ev("x", 0.0));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(2u64).as_f64(), Some(2.0));
        assert_eq!(Value::from("zone").as_str(), Some("zone"));
        assert_eq!(Value::from(-4i64).as_f64(), Some(-4.0));
    }
}
