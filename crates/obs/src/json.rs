//! A minimal JSON document model: build, serialise, parse.
//!
//! The export path used to lean on `serde_json`; the offline build
//! hand-rolls the same capability. The model is a plain tree — no
//! zero-copy tricks — because every producer in this workspace emits
//! small documents (metric snapshots, figure series), and the parser
//! exists mainly so tests can read back what the exporter wrote.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer (rejects non-integral values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialisation.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialisation with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i, d| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                })
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset for malformed input,
    /// including trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        use fmt::Write as _;
        let _ = write!(out, "{}", n as i64);
    } else {
        use fmt::Write as _;
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into the JSON document model, the exporter's equivalent of
/// `serde::Serialize`.
pub trait ToJson {
    /// This value as a JSON tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for i32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::obj([
            ("name", Json::str("fig6")),
            ("points", Json::arr([Json::Num(1.5), Json::Num(-2.0)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).to_compact(), "3");
        assert_eq!(Json::Num(3.25).to_compact(), "3.25");
        assert_eq!(Json::Num(-7.0).to_compact(), "-7");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f λ";
        let doc = Json::str(s);
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed.as_str().unwrap(), s);
    }

    #[test]
    fn lookup_helpers() {
        let doc = Json::parse(r#"{"a": [1, {"b": "x"}], "n": 4}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(
            doc.get("a")
                .unwrap()
                .at(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":1} x",
            "\"abc",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_numbers_in_all_shapes() {
        for (text, want) in [
            ("0", 0.0),
            ("-0.5", -0.5),
            ("1e3", 1000.0),
            ("2.5E-1", 0.25),
        ] {
            assert_eq!(Json::parse(text).unwrap().as_f64(), Some(want));
        }
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_compact(), "null");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        // Nested and pretty-printed forms too: the null must be valid
        // JSON wherever the number sits, so the output always re-parses.
        let doc = Json::obj([("v", Json::Num(f64::NAN))]);
        assert_eq!(doc.to_compact(), r#"{"v":null}"#);
        let back = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(back.get("v"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse(r#""Aλ""#).unwrap().as_str(), Some("Aλ"));
    }

    #[test]
    fn to_json_impls_compose() {
        let series: Vec<(f64, u64)> = vec![(0.5, 3), (1.0, 9)];
        let json = series.to_json();
        assert_eq!(json.at(1).unwrap().at(1).unwrap().as_u64(), Some(9));
    }
}
