//! A declarative SLO engine over windowed metric series.
//!
//! Rules ([`SloRule`]) are declared once against counter/histogram
//! *names* and evaluated window by window against a
//! [`SnapshotRing`]:
//!
//! * **Availability** — `(total − Σ bad) / total ≥ min_ratio` per
//!   window.
//! * **MaxRatio** — `Σ num / den ≤ max_ratio` per window (shed ratios,
//!   drop ratios).
//! * **P99Below** — the *window's* p99 (re-estimated from bucket
//!   deltas, not the cumulative histogram) stays under a deadline.
//! * **GaugeBelow** — the window's closing gauge value stays under a
//!   bound (replication lag, queue depths).
//! * **BurnRate** — the Google-SRE multi-window alert: with error
//!   budget `1 − target`, the burn rate is
//!   `(bad / total) / (1 − target)`; the rule breaches only when the
//!   burn exceeds `max_burn` over **both** the fast and the slow
//!   trailing window spans, so a single noisy window cannot page and a
//!   slow leak cannot hide.
//!
//! Evaluations update `slo.healthy.<name>` / `slo.value_milli.<name>`
//! gauges in the registry (so every `/metrics` scrape carries `slo_*`
//! samples), emit breach-transition events through the installed
//! subscriber ([`Fanout`](crate::event::Fanout)-compatible), and return
//! the transitions as typed [`SloEvent`]s for machine-readable reports.
//!
//! Empty windows evaluate healthy: an SLO over `0/0` traffic is
//! vacuously met, which keeps idle phases from paging.

use crate::json::{Json, ToJson};
use crate::timeseries::{SeriesWindow, SnapshotRing};
use crate::{Level, Obs};
use alidrone_geo::Timestamp;

/// One declarative service-level objective.
#[derive(Debug, Clone)]
pub struct Slo {
    /// Stable identifier (used in gauge names, events and reports).
    pub name: String,
    /// The rule to evaluate.
    pub rule: SloRule,
}

impl Slo {
    /// A named SLO.
    pub fn new(name: impl Into<String>, rule: SloRule) -> Slo {
        Slo {
            name: name.into(),
            rule,
        }
    }
}

/// The rule shapes the engine evaluates (see module docs).
#[derive(Debug, Clone)]
pub enum SloRule {
    /// `(total − Σ bad) / total ≥ min_ratio` per window.
    Availability {
        /// Counter naming all attempts.
        total: String,
        /// Counters naming failed attempts (summed).
        bad: Vec<String>,
        /// Minimum acceptable good-ratio in `[0, 1]`.
        min_ratio: f64,
    },
    /// `Σ num / den ≤ max_ratio` per window.
    MaxRatio {
        /// Numerator counters (summed).
        num: Vec<String>,
        /// Denominator counter.
        den: String,
        /// Maximum acceptable ratio.
        max_ratio: f64,
    },
    /// The window's p99 of `histogram` stays at or under `max_micros`.
    P99Below {
        /// Histogram name.
        histogram: String,
        /// Deadline in microseconds.
        max_micros: f64,
    },
    /// The window's *closing* value of `gauge` stays at or under
    /// `max`. Level-triggered (replication lag, queue depths): a
    /// quiesced system must read at or under the bound at every window
    /// boundary; a missing gauge reads 0 and is healthy.
    GaugeBelow {
        /// Gauge name.
        gauge: String,
        /// Maximum acceptable closing value.
        max: i64,
    },
    /// Multi-window error-budget burn-rate alert.
    BurnRate {
        /// Counter naming all attempts.
        total: String,
        /// Counters naming failed attempts (summed).
        bad: Vec<String>,
        /// The SLO target in `[0, 1)`; the error budget is `1 − target`.
        target: f64,
        /// Trailing windows for the fast (paging) condition.
        fast_windows: usize,
        /// Trailing windows for the slow (confirming) condition.
        slow_windows: usize,
        /// Breach when both burn rates exceed this factor.
        max_burn: f64,
    },
}

/// The outcome of evaluating one SLO against one window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The SLO's name.
    pub name: String,
    /// Whether the objective held.
    pub healthy: bool,
    /// The measured value (ratio, p99 µs, or burn factor).
    pub value: f64,
    /// The bound the value was compared to.
    pub threshold: f64,
}

impl ToJson for SloStatus {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("healthy", Json::Bool(self.healthy)),
            ("value", Json::Num(self.value)),
            ("threshold", Json::Num(self.threshold)),
        ])
    }
}

/// What kind of transition an [`SloEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloEventKind {
    /// A rule went from healthy to breached.
    BreachStart,
    /// A rule recovered.
    BreachEnd,
    /// A burn-rate rule started breaching (the paging condition).
    BurnRateAlert,
}

impl SloEventKind {
    /// Stable lowercase label for exports and event messages.
    pub fn label(&self) -> &'static str {
        match self {
            SloEventKind::BreachStart => "breach_start",
            SloEventKind::BreachEnd => "breach_end",
            SloEventKind::BurnRateAlert => "burn_rate_alert",
        }
    }
}

/// A typed SLO state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    /// When the transition was observed (the closing window's end).
    pub time: Timestamp,
    /// The SLO that transitioned.
    pub slo: String,
    /// What happened.
    pub kind: SloEventKind,
    /// The measured value at transition.
    pub value: f64,
    /// The rule's bound.
    pub threshold: f64,
}

impl ToJson for SloEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("time_secs", Json::Num(self.time.secs())),
            ("slo", Json::str(self.slo.clone())),
            ("kind", Json::str(self.kind.label())),
            ("value", Json::Num(self.value)),
            ("threshold", Json::Num(self.threshold)),
        ])
    }
}

/// Evaluates a fixed set of [`Slo`]s window by window, tracking breach
/// state and exporting `slo_*` gauges.
#[derive(Debug)]
pub struct SloEngine {
    obs: Obs,
    slos: Vec<Slo>,
    healthy: Vec<bool>,
    last: Vec<Option<SloStatus>>,
}

impl SloEngine {
    /// An engine over `slos`, exporting gauges and events through
    /// `obs`. Every rule starts healthy.
    pub fn new(obs: &Obs, slos: Vec<Slo>) -> SloEngine {
        let n = slos.len();
        SloEngine {
            obs: obs.clone(),
            slos,
            healthy: vec![true; n],
            last: vec![None; n],
        }
    }

    /// The declared rules.
    pub fn slos(&self) -> &[Slo] {
        &self.slos
    }

    /// The most recent status per rule (empty before any evaluation).
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.last.iter().flatten().cloned().collect()
    }

    /// Evaluates every rule against the ring's latest window (burn-rate
    /// rules read their trailing spans from the ring), updates the
    /// `slo_*` gauges, emits transition events to the subscriber, and
    /// returns the transitions.
    pub fn evaluate(&mut self, ring: &SnapshotRing) -> Vec<SloEvent> {
        let Some(window) = ring.latest() else {
            return Vec::new();
        };
        let at = window.end;
        let mut transitions = Vec::new();
        for i in 0..self.slos.len() {
            let slo = self.slos[i].clone();
            let status = eval_rule(&slo.name, &slo.rule, window, Some(ring));
            self.export_gauges(&status);
            if status.healthy != self.healthy[i] {
                let kind = match (&slo.rule, status.healthy) {
                    (_, true) => SloEventKind::BreachEnd,
                    (SloRule::BurnRate { .. }, false) => SloEventKind::BurnRateAlert,
                    (_, false) => SloEventKind::BreachStart,
                };
                let event = SloEvent {
                    time: at,
                    slo: slo.name.clone(),
                    kind,
                    value: status.value,
                    threshold: status.threshold,
                };
                self.emit(&event);
                transitions.push(event);
            }
            self.healthy[i] = status.healthy;
            self.last[i] = Some(status);
        }
        transitions
    }

    /// Evaluates every rule against one standalone window — phase
    /// verdicts in soak reports. Burn-rate rules treat the window as
    /// both their fast and slow span. No state, gauges or events are
    /// touched.
    pub fn verdicts_for(&self, window: &SeriesWindow) -> Vec<SloStatus> {
        self.slos
            .iter()
            .map(|slo| eval_rule(&slo.name, &slo.rule, window, None))
            .collect()
    }

    /// Fraction of each burn-rate rule's total error budget consumed
    /// over the ring's whole observed span (`bad / (total × budget)`),
    /// clamped at zero traffic.
    pub fn budget_consumed(&self, ring: &SnapshotRing) -> Vec<(String, f64)> {
        let (Some((_, first)), Some((_, last))) = (ring.first(), ring.last()) else {
            return Vec::new();
        };
        self.slos
            .iter()
            .filter_map(|slo| {
                let (total, bad, target) = match &slo.rule {
                    SloRule::BurnRate {
                        total, bad, target, ..
                    } => (total, bad, *target),
                    SloRule::Availability {
                        total,
                        bad,
                        min_ratio,
                    } => (total, bad, *min_ratio),
                    _ => return None,
                };
                let requests = last.counter(total).saturating_sub(first.counter(total));
                let errors: u64 = bad
                    .iter()
                    .map(|b| last.counter(b).saturating_sub(first.counter(b)))
                    .sum();
                let budget = (1.0 - target).max(f64::EPSILON);
                let consumed = if requests == 0 {
                    0.0
                } else {
                    errors as f64 / (requests as f64 * budget)
                };
                Some((slo.name.clone(), consumed))
            })
            .collect()
    }

    fn export_gauges(&self, status: &SloStatus) {
        self.obs
            .gauge(&format!("slo.healthy.{}", status.name))
            .set(i64::from(status.healthy));
        self.obs
            .gauge(&format!("slo.value_milli.{}", status.name))
            .set((status.value * 1000.0) as i64);
    }

    fn emit(&self, event: &SloEvent) {
        let level = match event.kind {
            SloEventKind::BreachEnd => Level::Info,
            _ => Level::Warn,
        };
        let message = match event.kind {
            SloEventKind::BreachStart => "slo_breach_start",
            SloEventKind::BreachEnd => "slo_breach_end",
            SloEventKind::BurnRateAlert => "slo_burn_rate_alert",
        };
        let (slo, value, threshold) = (event.slo.clone(), event.value, event.threshold);
        self.obs.emit(level, "slo", message, |f| {
            f.field("slo", slo.as_str());
            f.field("value", value);
            f.field("threshold", threshold);
        });
    }
}

/// Ratio of bad to total over a set of windows; `None` with no traffic.
fn burn_ratio<'a>(
    windows: impl Iterator<Item = &'a SeriesWindow>,
    total: &str,
    bad: &[String],
) -> Option<f64> {
    let mut requests = 0u64;
    let mut errors = 0u64;
    for w in windows {
        requests += w.counter_delta(total);
        errors += w.counter_sum(bad.iter().map(String::as_str));
    }
    if requests == 0 {
        None
    } else {
        Some(errors.min(requests) as f64 / requests as f64)
    }
}

fn eval_rule(
    name: &str,
    rule: &SloRule,
    window: &SeriesWindow,
    ring: Option<&SnapshotRing>,
) -> SloStatus {
    match rule {
        SloRule::Availability {
            total,
            bad,
            min_ratio,
        } => {
            let requests = window.counter_delta(total);
            let errors = window
                .counter_sum(bad.iter().map(String::as_str))
                .min(requests);
            let (value, healthy) = if requests == 0 {
                (1.0, true)
            } else {
                let ratio = (requests - errors) as f64 / requests as f64;
                (ratio, ratio >= *min_ratio)
            };
            SloStatus {
                name: name.to_string(),
                healthy,
                value,
                threshold: *min_ratio,
            }
        }
        SloRule::MaxRatio {
            num,
            den,
            max_ratio,
        } => {
            let denom = window.counter_delta(den);
            let numer = window.counter_sum(num.iter().map(String::as_str));
            let (value, healthy) = if denom == 0 {
                (0.0, true)
            } else {
                let ratio = numer as f64 / denom as f64;
                (ratio, ratio <= *max_ratio)
            };
            SloStatus {
                name: name.to_string(),
                healthy,
                value,
                threshold: *max_ratio,
            }
        }
        SloRule::P99Below {
            histogram,
            max_micros,
        } => {
            let p99 = window.p99_micros(histogram);
            SloStatus {
                name: name.to_string(),
                healthy: p99 <= *max_micros,
                value: p99,
                threshold: *max_micros,
            }
        }
        SloRule::GaugeBelow { gauge, max } => {
            let value = window.gauge(gauge);
            SloStatus {
                name: name.to_string(),
                healthy: value <= *max,
                value: value as f64,
                threshold: *max as f64,
            }
        }
        SloRule::BurnRate {
            total,
            bad,
            target,
            fast_windows,
            slow_windows,
            max_burn,
        } => {
            let budget = (1.0 - target).max(f64::EPSILON);
            let (fast, slow) = match ring {
                Some(ring) => (
                    burn_ratio(ring.recent(*fast_windows), total, bad),
                    burn_ratio(ring.recent(*slow_windows), total, bad),
                ),
                // Standalone (phase) evaluation: the one window is both
                // spans.
                None => {
                    let r = burn_ratio(std::iter::once(window), total, bad);
                    (r, r)
                }
            };
            let fast_burn = fast.map_or(0.0, |r| r / budget);
            let slow_burn = slow.map_or(0.0, |r| r / budget);
            // The alert fires only when both spans agree; the reported
            // value is the binding (smaller) burn.
            let value = fast_burn.min(slow_burn);
            SloStatus {
                name: name.to_string(),
                healthy: !(fast_burn > *max_burn && slow_burn > *max_burn),
                value,
                threshold: *max_burn,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::RingBuffer;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn snap(counters: &[(&str, u64)]) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    fn slos() -> Vec<Slo> {
        vec![
            Slo::new(
                "availability",
                SloRule::Availability {
                    total: "req".into(),
                    bad: vec!["err".into()],
                    min_ratio: 0.99,
                },
            ),
            Slo::new(
                "shed",
                SloRule::MaxRatio {
                    num: vec!["shed".into()],
                    den: "req".into(),
                    max_ratio: 0.05,
                },
            ),
            Slo::new(
                "burn",
                SloRule::BurnRate {
                    total: "req".into(),
                    bad: vec!["err".into()],
                    target: 0.99,
                    fast_windows: 2,
                    slow_windows: 4,
                    max_burn: 10.0,
                },
            ),
        ]
    }

    fn feed(ring: &mut SnapshotRing, t: f64, req: u64, err: u64, shed: u64) {
        ring.observe(
            Timestamp::from_secs(t),
            snap(&[("req", req), ("err", err), ("shed", shed)]),
        );
    }

    #[test]
    fn healthy_traffic_stays_healthy_and_empty_windows_are_vacuous() {
        let obs = Obs::noop();
        let mut engine = SloEngine::new(&obs, slos());
        let mut ring = SnapshotRing::new(16);
        feed(&mut ring, 0.0, 0, 0, 0);
        feed(&mut ring, 1.0, 100, 0, 1);
        assert!(engine.evaluate(&ring).is_empty());
        assert!(engine.statuses().iter().all(|s| s.healthy));
        // An idle window: no traffic, vacuously healthy.
        feed(&mut ring, 2.0, 100, 0, 1);
        assert!(engine.evaluate(&ring).is_empty());
        assert!(engine.statuses().iter().all(|s| s.healthy));
    }

    #[test]
    fn breaches_transition_once_and_recover() {
        let obs = Obs::noop();
        let ring_buf = Arc::new(RingBuffer::new(16));
        obs.set_subscriber(ring_buf.clone());
        let mut engine = SloEngine::new(&obs, slos());
        let mut ring = SnapshotRing::new(16);
        feed(&mut ring, 0.0, 0, 0, 0);
        feed(&mut ring, 1.0, 100, 0, 0);
        engine.evaluate(&ring);

        // 40% errors: availability and (eventually) burn rate breach.
        feed(&mut ring, 2.0, 200, 40, 0);
        let events = engine.evaluate(&ring);
        assert!(events
            .iter()
            .any(|e| e.slo == "availability" && e.kind == SloEventKind::BreachStart));
        // Same state next window: no duplicate transition.
        feed(&mut ring, 3.0, 300, 80, 0);
        let again = engine.evaluate(&ring);
        assert!(!again
            .iter()
            .any(|e| e.slo == "availability" && e.kind == SloEventKind::BreachStart));

        // Recovery.
        feed(&mut ring, 4.0, 400, 80, 0);
        let recovered = engine.evaluate(&ring);
        assert!(recovered
            .iter()
            .any(|e| e.slo == "availability" && e.kind == SloEventKind::BreachEnd));

        // Transitions reached the subscriber too.
        assert!(ring_buf
            .events()
            .iter()
            .any(|e| e.message == "slo_breach_start"));
    }

    #[test]
    fn burn_rate_needs_both_windows() {
        let obs = Obs::noop();
        let mut engine = SloEngine::new(&obs, slos());
        let mut ring = SnapshotRing::new(16);
        feed(&mut ring, 0.0, 0, 0, 0);
        // Three clean windows, then one terrible one: the fast span
        // (last 2 windows) burns hot but the slow span (last 4) still
        // includes enough clean traffic that, once diluted, the burn
        // stays under the factor — no alert on the first bad window.
        feed(&mut ring, 1.0, 1000, 0, 0);
        feed(&mut ring, 2.0, 2000, 0, 0);
        feed(&mut ring, 3.0, 3000, 0, 0);
        engine.evaluate(&ring);
        feed(&mut ring, 4.0, 3400, 160, 0);
        engine.evaluate(&ring);
        let burn = engine
            .statuses()
            .into_iter()
            .find(|s| s.name == "burn")
            .unwrap();
        // fast = 160/1400 / 0.01 ≈ 11.4 > 10, slow = 160/3400 / 0.01 ≈
        // 4.7 < 10 → still healthy.
        assert!(burn.healthy, "{burn:?}");

        // Sustained errors: both spans exceed the factor → alert.
        feed(&mut ring, 5.0, 3800, 320, 0);
        let events = engine.evaluate(&ring);
        assert!(events
            .iter()
            .any(|e| e.slo == "burn" && e.kind == SloEventKind::BurnRateAlert));
    }

    #[test]
    fn gauges_are_exported_for_scrapes() {
        let obs = Obs::noop();
        let mut engine = SloEngine::new(&obs, slos());
        let mut ring = SnapshotRing::new(4);
        feed(&mut ring, 0.0, 0, 0, 0);
        feed(&mut ring, 1.0, 100, 20, 0);
        engine.evaluate(&ring);
        let snap = obs.snapshot();
        assert_eq!(snap.gauges["slo.healthy.availability"], 0);
        assert_eq!(snap.gauges["slo.healthy.shed"], 1);
        assert_eq!(snap.gauges["slo.value_milli.availability"], 800);
        let text = crate::export::prometheus_text(&snap);
        assert!(text.contains("slo_healthy_availability 0"), "{text}");
    }

    #[test]
    fn gauge_rule_checks_closing_level() {
        let obs = Obs::noop();
        let mut engine = SloEngine::new(
            &obs,
            vec![Slo::new(
                "repl_lag",
                SloRule::GaugeBelow {
                    gauge: "repl.lag_bytes".into(),
                    max: 0,
                },
            )],
        );
        let gsnap = |lag: i64| MetricsSnapshot {
            counters: BTreeMap::new(),
            gauges: [("repl.lag_bytes".to_string(), lag)].into(),
            histograms: BTreeMap::new(),
        };
        let mut ring = SnapshotRing::new(8);
        ring.observe(Timestamp::from_secs(0.0), gsnap(0));
        ring.observe(Timestamp::from_secs(1.0), gsnap(0));
        assert!(engine.evaluate(&ring).is_empty());
        // A window closing with lag breaches...
        ring.observe(Timestamp::from_secs(2.0), gsnap(512));
        let events = engine.evaluate(&ring);
        assert!(events
            .iter()
            .any(|e| e.slo == "repl_lag" && e.kind == SloEventKind::BreachStart));
        // ...and recovers once the close reads 0 again (quiesced).
        ring.observe(Timestamp::from_secs(3.0), gsnap(0));
        let events = engine.evaluate(&ring);
        assert!(events
            .iter()
            .any(|e| e.slo == "repl_lag" && e.kind == SloEventKind::BreachEnd));
        // Standalone phase verdicts see the same closing level.
        let window = SeriesWindow::between(
            Timestamp::from_secs(0.0),
            &gsnap(0),
            Timestamp::from_secs(1.0),
            &gsnap(3),
        );
        let verdicts = engine.verdicts_for(&window);
        assert!(!verdicts[0].healthy);
        assert!((verdicts[0].value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn standalone_verdicts_and_budget_consumption() {
        let obs = Obs::noop();
        let engine = SloEngine::new(&obs, slos());
        let window = SeriesWindow::between(
            Timestamp::from_secs(0.0),
            &snap(&[("req", 0), ("err", 0), ("shed", 0)]),
            Timestamp::from_secs(10.0),
            &snap(&[("req", 1000), ("err", 300), ("shed", 10)]),
        );
        let verdicts = engine.verdicts_for(&window);
        assert_eq!(verdicts.len(), 3);
        let avail = verdicts.iter().find(|s| s.name == "availability").unwrap();
        assert!(!avail.healthy);
        assert!((avail.value - 0.7).abs() < 1e-9);
        let shed = verdicts.iter().find(|s| s.name == "shed").unwrap();
        assert!(shed.healthy);

        let mut ring = SnapshotRing::new(4);
        feed(&mut ring, 0.0, 0, 0, 0);
        feed(&mut ring, 1.0, 1000, 5, 0);
        let budgets = engine.budget_consumed(&ring);
        let burn = budgets.iter().find(|(n, _)| n == "burn").unwrap();
        // 5 errors / (1000 × 1% budget) = half the budget consumed.
        assert!((burn.1 - 0.5).abs() < 1e-9, "{burn:?}");
    }
}
