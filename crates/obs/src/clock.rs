//! Injectable time sources.
//!
//! Spans and events need a notion of "now", but the workspace has two:
//! real wall time (benchmarks, a deployed auditor) and simulated time
//! (the scenario runner drives a `SimClock` that jumps forward in
//! sample-period steps). The [`Clock`] trait abstracts over both so the
//! same instrumentation works under either; the sim crate bridges its
//! own clock onto this trait with a two-line adapter.

use alidrone_geo::{Duration, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source for instrumentation.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Timestamp;
}

/// Wall time, anchored to the instant the clock was created.
///
/// Timestamps are seconds since construction, which keeps them small
/// and comparable with sim timestamps (both start near zero).
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock starting at `t = 0` now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_secs(self.origin.elapsed().as_secs_f64())
    }
}

/// A clock advanced explicitly by the caller — for tests.
///
/// Stores the time as `f64` bits in an atomic so reads on the hot path
/// are lock-free.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A manual clock at the epoch.
    pub fn new() -> Self {
        ManualClock {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the absolute time.
    pub fn set(&self, t: Timestamp) {
        self.bits.store(t.secs().to_bits(), Ordering::Relaxed);
    }

    /// Moves the clock forward.
    pub fn advance(&self, dt: Duration) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + dt.secs()).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_secs(f64::from_bits(self.bits.load(Ordering::Relaxed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a.secs() >= 0.0);
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Timestamp::EPOCH);
        c.set(Timestamp::from_secs(5.0));
        c.advance(Duration::from_millis(250.0));
        assert!((c.now().secs() - 5.25).abs() < 1e-12);
    }

    #[test]
    fn clock_works_as_trait_object() {
        let c = ManualClock::new();
        c.set(Timestamp::from_secs(3.0));
        let dynref: &dyn Clock = &c;
        assert_eq!(dynref.now().secs(), 3.0);
    }
}
