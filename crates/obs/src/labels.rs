//! Capped label interning for high-cardinality metric paths.
//!
//! A fleet soak wants per-drone series (`fleet.drone.<id>.ops`), but an
//! unbounded fleet must not be able to grow the registry without bound:
//! a million drones would mean a million counter families and an OOM'd
//! scrape. [`LabelInterner`] caps the distinct labels it will hand out;
//! once full, every unseen label folds into one shared `other` series
//! and bumps `obs.labels_dropped`, so cardinality stays bounded while
//! the total across series stays exact.

use crate::metrics::Counter;
use crate::Obs;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The label unseen keys collapse into once the interner is full.
pub const OVERFLOW_LABEL: &str = "other";

/// Counter bumped once per intern call that had to fold into
/// [`OVERFLOW_LABEL`].
pub const LABELS_DROPPED: &str = "obs.labels_dropped";

/// A bounded map from label keys to shared label strings.
///
/// Thread-safe and cheap to clone the returned `Arc<str>`s; the mutex
/// guards only the map, never the metric updates made with the interned
/// label.
#[derive(Debug)]
pub struct LabelInterner {
    cap: usize,
    dropped: Arc<Counter>,
    other: Arc<str>,
    map: Mutex<BTreeMap<String, Arc<str>>>,
}

impl LabelInterner {
    /// An interner admitting at most `cap` distinct labels (the
    /// overflow label is extra and always available).
    pub fn new(obs: &Obs, cap: usize) -> LabelInterner {
        LabelInterner {
            cap,
            dropped: obs.counter(LABELS_DROPPED),
            other: Arc::from(OVERFLOW_LABEL),
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// The interned form of `label`: the label itself while capacity
    /// remains (or it is already known), otherwise [`OVERFLOW_LABEL`]
    /// with [`LABELS_DROPPED`] incremented.
    pub fn intern(&self, label: &str) -> Arc<str> {
        if label == OVERFLOW_LABEL {
            return Arc::clone(&self.other);
        }
        let mut map = self.map.lock().unwrap();
        if let Some(found) = map.get(label) {
            return Arc::clone(found);
        }
        if map.len() < self.cap {
            let interned: Arc<str> = Arc::from(label);
            map.insert(label.to_string(), Arc::clone(&interned));
            return interned;
        }
        drop(map);
        self.dropped.inc();
        Arc::clone(&self.other)
    }

    /// Distinct labels admitted so far (excluding the overflow label).
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// `true` when no label has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// How many intern calls folded into the overflow label.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn admits_up_to_cap_then_folds_into_other() {
        let obs = Obs::noop();
        let interner = LabelInterner::new(&obs, 2);
        assert_eq!(&*interner.intern("a"), "a");
        assert_eq!(&*interner.intern("b"), "b");
        assert_eq!(&*interner.intern("c"), OVERFLOW_LABEL);
        assert_eq!(&*interner.intern("a"), "a"); // known survives overflow
        assert_eq!(&*interner.intern("c"), OVERFLOW_LABEL);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.dropped(), 2);
        assert_eq!(obs.snapshot().counter(LABELS_DROPPED), 2);
    }

    #[test]
    fn interning_other_never_counts_as_a_drop() {
        let obs = Obs::noop();
        let interner = LabelInterner::new(&obs, 1);
        assert_eq!(&*interner.intern(OVERFLOW_LABEL), OVERFLOW_LABEL);
        assert_eq!(interner.dropped(), 0);
        assert_eq!(interner.len(), 0);
    }

    #[test]
    fn concurrent_interning_stays_within_cap() {
        let obs = Obs::noop();
        let interner = Arc::new(LabelInterner::new(&obs, 8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let interner = Arc::clone(&interner);
                thread::spawn(move || {
                    for i in 0..64 {
                        let _ = interner.intern(&format!("drone-{}", t * 64 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(interner.len(), 8);
        // Everything beyond the cap folded — exactly 256 − 8 drops.
        assert_eq!(interner.dropped(), 256 - 8);
    }
}
