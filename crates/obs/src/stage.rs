//! Stage-level tail-latency attribution: per-request stage timing and
//! a bounded slowest-N exemplar table.
//!
//! Aggregate latency histograms answer *how slow*; they cannot answer
//! *where the time went* for the requests in the tail. This module adds
//! the two missing pieces:
//!
//! * [`StageTimer`] — a tiny wall-clock stopwatch a request handler
//!   drags through its pipeline, [`mark`](StageTimer::mark)ing the end
//!   of each stage (decode → admission → handle → encode). Each mark
//!   yields integer microseconds, so a per-stage histogram and the
//!   per-request total reconcile *exactly*: the total recorded for a
//!   request is the sum of its stage marks, not an independent
//!   measurement racing the same clock.
//! * [`SlowTable`] — a bounded table of the slowest N requests seen,
//!   each entry carrying its full stage breakdown and (when tracing is
//!   on) the trace/span ids needed to join the request against the
//!   flight recorder's span chain. Exported as Prometheus gauges with
//!   `rank`/`kind`/`stage` labels and as JSON for the scrape `/dump`.
//!
//! Both are std-only and lock-light: the timer is a plain value owned
//! by one handler; the table takes one short mutex per *candidate*
//! (and candidates are pre-filtered by a relaxed atomic threshold).

use crate::export::{escape_label_value, sanitize_metric_name};
use crate::json::{Json, ToJson};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A per-request stopwatch attributing wall time to named stages.
///
/// Stages are recorded in call order; the same name may be marked more
/// than once (the exemplar keeps both entries; histogram writers will
/// record two observations).
#[derive(Debug)]
pub struct StageTimer {
    last: Instant,
    stages: Vec<(&'static str, u64)>,
}

impl Default for StageTimer {
    fn default() -> Self {
        StageTimer::start()
    }
}

impl StageTimer {
    /// Starts the stopwatch at "now"; the first [`mark`](Self::mark)
    /// measures from here.
    pub fn start() -> StageTimer {
        StageTimer {
            last: Instant::now(),
            stages: Vec::with_capacity(6),
        }
    }

    /// Closes the current stage as `stage`, returning its duration in
    /// microseconds, and starts timing the next one.
    pub fn mark(&mut self, stage: &'static str) -> u64 {
        let now = Instant::now();
        let micros = now.duration_since(self.last).as_micros() as u64;
        self.last = now;
        self.stages.push((stage, micros));
        micros
    }

    /// The stages marked so far, in order, with their microseconds.
    pub fn stages(&self) -> &[(&'static str, u64)] {
        &self.stages
    }

    /// Sum of all marked stages, microseconds. This — not an
    /// independent clock read — is what belongs in a per-request total
    /// histogram, so stage sums and totals reconcile exactly.
    pub fn total_micros(&self) -> u64 {
        self.stages.iter().map(|&(_, us)| us).sum()
    }

    /// Consumes the timer, yielding the marked stages.
    pub fn into_stages(self) -> Vec<(&'static str, u64)> {
        self.stages
    }
}

/// One slow-request exemplar: the stage breakdown plus enough identity
/// to find the request's span chain in a flight-recorder dump.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowExemplar {
    /// What kind of work this was (e.g. the wire request kind).
    pub kind: String,
    /// Total attributed time (sum of `stages`), microseconds.
    pub total_micros: u64,
    /// Time spent waiting in an admission queue before the stages
    /// started, microseconds (not part of `total_micros`).
    pub queue_wait_micros: u64,
    /// Per-stage breakdown, in pipeline order.
    pub stages: Vec<(&'static str, u64)>,
    /// Trace id, when the request was traced — joins this exemplar to
    /// the span chain retained by the flight recorder.
    pub trace_id: Option<u128>,
    /// The request's own span id within that trace.
    pub span_id: Option<u64>,
}

impl ToJson for SlowExemplar {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.clone())),
            ("total_us", Json::Num(self.total_micros as f64)),
            ("queue_wait_us", Json::Num(self.queue_wait_micros as f64)),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|&(name, us)| (name.to_string(), Json::Num(us as f64)))
                        .collect(),
                ),
            ),
            (
                "trace_id",
                match self.trace_id {
                    Some(t) => Json::Str(format!("{t:032x}")),
                    None => Json::Null,
                },
            ),
            (
                "span_id",
                match self.span_id {
                    Some(s) => Json::Str(format!("{s:016x}")),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// A bounded table of the slowest requests observed, ordered slowest
/// first.
///
/// Concurrent handlers [`offer`](SlowTable::offer) candidates; entries
/// below the current floor are rejected with one relaxed atomic load,
/// so the mutex is only contended by requests that actually belong in
/// the tail.
#[derive(Debug)]
pub struct SlowTable {
    capacity: usize,
    /// Smallest total currently retained (0 while the table has room),
    /// maintained as a fast-path filter.
    floor_micros: AtomicU64,
    entries: Mutex<Vec<SlowExemplar>>,
    offered: AtomicU64,
    admitted: AtomicU64,
}

impl SlowTable {
    /// A table retaining the `capacity` slowest exemplars (clamped ≥ 1).
    pub fn new(capacity: usize) -> SlowTable {
        SlowTable {
            capacity: capacity.max(1),
            floor_micros: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Offers a candidate; it is kept only if it ranks among the
    /// slowest `capacity` seen so far.
    pub fn offer(&self, exemplar: SlowExemplar) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        // Fast reject: full table and the candidate is under the floor.
        // The floor only ever rises, so a stale read rejects *less*
        // than it could — never a wrongly dropped tail entry.
        if exemplar.total_micros < self.floor_micros.load(Ordering::Relaxed) {
            return;
        }
        // Invariant: entries hold plain owned data; a poisoned lock
        // still guards a structurally sound vector.
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let pos = entries.partition_point(|e| e.total_micros >= exemplar.total_micros);
        if pos >= self.capacity {
            return;
        }
        entries.insert(pos, exemplar);
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            self.floor_micros
                .store(entries[entries.len() - 1].total_micros, Ordering::Relaxed);
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// The retained exemplars, slowest first.
    pub fn entries(&self) -> Vec<SlowExemplar> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Candidates offered since construction.
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Renders the table as Prometheus gauges: per-exemplar totals and
    /// per-stage attributions under `metric`, labelled by `rank`
    /// (0 = slowest), `kind`, and `stage` (`total` / `queue_wait` /
    /// each pipeline stage), values in seconds.
    pub fn prometheus_text(&self, metric: &str) -> String {
        let prom = sanitize_metric_name(metric);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP {prom} Slowest-request exemplars (stage-attributed, seconds)."
        );
        let _ = writeln!(out, "# TYPE {prom} gauge");
        for (rank, e) in self.entries().iter().enumerate() {
            let kind = escape_label_value(&e.kind);
            let mut line = |stage: &str, micros: u64| {
                let _ = writeln!(
                    out,
                    "{prom}{{rank=\"{rank}\",kind=\"{kind}\",stage=\"{}\"}} {}",
                    escape_label_value(stage),
                    micros as f64 / 1e6
                );
            };
            line("total", e.total_micros);
            line("queue_wait", e.queue_wait_micros);
            for &(stage, us) in &e.stages {
                line(stage, us);
            }
        }
        out
    }
}

impl ToJson for SlowTable {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "slowest",
                Json::Arr(self.entries().iter().map(|e| e.to_json()).collect()),
            ),
            (
                "offered",
                Json::Num(self.offered.load(Ordering::Relaxed) as f64),
            ),
            (
                "admitted",
                Json::Num(self.admitted.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplar(kind: &str, total: u64) -> SlowExemplar {
        SlowExemplar {
            kind: kind.to_string(),
            total_micros: total,
            queue_wait_micros: 1,
            stages: vec![("decode", total / 4), ("handle", total - total / 4)],
            trace_id: Some(0xABCD),
            span_id: Some(0x42),
        }
    }

    #[test]
    fn stage_timer_totals_are_the_sum_of_marks() {
        let mut t = StageTimer::start();
        let a = t.mark("decode");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.mark("handle");
        assert!(b >= 1_000, "slept 2 ms but handle stage was {b} µs");
        assert_eq!(t.total_micros(), a + b);
        let names: Vec<_> = t.stages().iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["decode", "handle"]);
    }

    #[test]
    fn slow_table_keeps_the_slowest_in_order() {
        let table = SlowTable::new(3);
        for total in [5, 50, 10, 40, 30, 20] {
            table.offer(exemplar("query_zones", total));
        }
        let totals: Vec<u64> = table.entries().iter().map(|e| e.total_micros).collect();
        assert_eq!(totals, vec![50, 40, 30]);
        assert_eq!(table.offered(), 6);
    }

    #[test]
    fn slow_table_fast_path_rejects_below_floor() {
        let table = SlowTable::new(2);
        table.offer(exemplar("a", 100));
        table.offer(exemplar("b", 200));
        // Floor is now 100; this candidate never takes the lock slow
        // path into the table.
        table.offer(exemplar("c", 10));
        assert_eq!(table.entries().len(), 2);
        assert!(table.entries().iter().all(|e| e.total_micros >= 100));
    }

    #[test]
    fn slow_table_renders_labelled_prometheus_gauges() {
        let table = SlowTable::new(4);
        table.offer(exemplar("submit_poa", 8_000));
        let text = table.prometheus_text("server.slowest");
        assert!(text.contains("# TYPE server_slowest gauge"), "{text}");
        assert!(
            text.contains("server_slowest{rank=\"0\",kind=\"submit_poa\",stage=\"total\"} 0.008"),
            "{text}"
        );
        assert!(text.contains("stage=\"queue_wait\""), "{text}");
        assert!(text.contains("stage=\"handle\""), "{text}");
    }

    #[test]
    fn exemplar_json_carries_trace_identity_and_stages() {
        let table = SlowTable::new(2);
        table.offer(exemplar("accuse", 77));
        let parsed = Json::parse(&table.to_json().to_pretty()).unwrap();
        let first = parsed.get("slowest").unwrap().at(0).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("accuse"));
        assert_eq!(first.get("total_us").unwrap().as_u64(), Some(77));
        assert_eq!(
            first.get("trace_id").unwrap().as_str(),
            Some("0000000000000000000000000000abcd")
        );
        assert!(first.get("stages").unwrap().get("handle").is_some());
        assert_eq!(parsed.get("offered").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn capacity_clamps_to_one() {
        let table = SlowTable::new(0);
        table.offer(exemplar("x", 1));
        table.offer(exemplar("y", 2));
        assert_eq!(table.entries().len(), 1);
        assert_eq!(table.entries()[0].total_micros, 2);
    }
}
