//! The flight recorder: a bounded black box of recent spans + events.
//!
//! Aviation flight recorders keep the last few minutes of telemetry so
//! a crash can be reconstructed after the fact. This is the same idea
//! for the PoA pipeline: a [`FlightRecorder`] subscribes to the
//! observability handle, retains the most recent N completed spans and
//! N events in ring buffers, and [`dump`](FlightRecorder::dump)s them
//! on demand — the auditor server triggers a dump automatically when a
//! malformed frame or error response crosses the wire, turning a
//! protocol failure into a self-contained crash report.

use crate::event::{Event, Subscriber};
use crate::json::{Json, ToJson};
use crate::span::SpanRecord;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded subscriber retaining the most recent spans and events.
#[derive(Debug)]
pub struct FlightRecorder {
    span_capacity: usize,
    event_capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    events: Mutex<VecDeque<Event>>,
    dropped_spans: AtomicU64,
    dropped_events: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` spans and `capacity`
    /// events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder::with_capacities(capacity, capacity)
    }

    /// A recorder with independent span and event bounds.
    pub fn with_capacities(span_capacity: usize, event_capacity: usize) -> Self {
        FlightRecorder {
            span_capacity: span_capacity.max(1),
            event_capacity: event_capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            events: Mutex::new(VecDeque::new()),
            dropped_spans: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
        }
    }

    /// A copy of the retained spans, oldest first (completion order:
    /// children before their parents).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// How many spans were evicted to make room.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans.load(Ordering::Relaxed)
    }

    /// How many events were evicted to make room.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events.load(Ordering::Relaxed)
    }

    /// Freezes the recorder's current contents into a dump. The
    /// recorder keeps recording afterwards.
    pub fn dump(&self) -> RecorderDump {
        RecorderDump {
            spans: self.spans(),
            events: self.events(),
            dropped_spans: self.dropped_spans(),
            dropped_events: self.dropped_events(),
        }
    }
}

impl Subscriber for FlightRecorder {
    fn on_event(&self, event: &Event) {
        let mut q = self.events.lock().unwrap();
        if q.len() == self.event_capacity {
            q.pop_front();
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event.clone());
    }

    fn on_span(&self, span: &SpanRecord) {
        let mut q = self.spans.lock().unwrap();
        if q.len() == self.span_capacity {
            q.pop_front();
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(span.clone());
    }
}

/// A frozen flight-recorder snapshot: the crash-dump format.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderDump {
    /// Retained completed spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Spans evicted before the dump.
    pub dropped_spans: u64,
    /// Events evicted before the dump.
    pub dropped_events: u64,
}

impl RecorderDump {
    /// `true` when the dump captured nothing at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }
}

impl ToJson for RecorderDump {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "spans",
                Json::Arr(self.spans.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "events",
                Json::Arr(self.events.iter().map(|e| e.to_json()).collect()),
            ),
            ("dropped_spans", Json::Num(self.dropped_spans as f64)),
            ("dropped_events", Json::Num(self.dropped_events as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use crate::{Level, Obs};
    use alidrone_geo::Timestamp;
    use std::sync::Arc;

    fn span(name: &'static str, id: u64) -> SpanRecord {
        SpanRecord {
            name,
            context: SpanContext {
                trace_id: 1,
                span_id: id,
                parent_id: None,
            },
            start: Timestamp::from_secs(0.0),
            end: Timestamp::from_secs(1.0),
        }
    }

    #[test]
    fn retains_the_most_recent_spans() {
        let rec = FlightRecorder::new(2);
        rec.on_span(&span("a", 1));
        rec.on_span(&span("b", 2));
        rec.on_span(&span("c", 3));
        let names: Vec<_> = rec.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(rec.dropped_spans(), 1);
        assert_eq!(rec.dropped_events(), 0);
    }

    #[test]
    fn records_both_streams_through_an_obs_handle() {
        let obs = Obs::noop();
        let rec = Arc::new(FlightRecorder::new(8));
        obs.set_subscriber(rec.clone());
        obs.emit(Level::Warn, "wire", "malformed_frame", |f| {
            f.field("frame_len", 4u64);
        });
        obs.enter_span("server.submit_poa").finish();
        let dump = rec.dump();
        assert!(!dump.is_empty());
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].name, "server.submit_poa");
    }

    #[test]
    fn dump_round_trips_through_json() {
        let rec = FlightRecorder::new(4);
        rec.on_span(&span("x", 9));
        let dump = rec.dump();
        let parsed = Json::parse(&dump.to_json().to_pretty()).unwrap();
        let spans = parsed.get("spans").unwrap();
        assert_eq!(
            spans.at(0).unwrap().get("name").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(parsed.get("dropped_spans").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn dump_does_not_drain_the_recorder() {
        let rec = FlightRecorder::new(4);
        rec.on_span(&span("x", 1));
        let first = rec.dump();
        let second = rec.dump();
        assert_eq!(first, second);
        assert_eq!(rec.spans().len(), 1);
    }
}
