//! Scope timers.
//!
//! A [`Span`] measures the time between its creation and its drop (or
//! explicit [`finish`](Span::finish)) against the observability
//! handle's injected clock, and records the elapsed time into a
//! histogram. Creating one clones two `Arc`s and reads the clock —
//! no allocation — so spans are safe on request-loop hot paths.

use crate::metrics::Histogram;
use crate::Obs;
use alidrone_geo::{Duration, Timestamp};
use std::sync::Arc;

/// Times a scope and records the result on drop.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    histogram: Arc<Histogram>,
    start: Timestamp,
    finished: bool,
}

impl Span {
    pub(crate) fn new(obs: Obs, histogram: Arc<Histogram>) -> Span {
        let start = obs.now();
        Span {
            obs,
            histogram,
            start,
            finished: false,
        }
    }

    /// When the span started.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Time elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.obs.now().since(self.start)
    }

    /// Ends the span now and returns the recorded duration.
    pub fn finish(mut self) -> Duration {
        let d = self.elapsed();
        self.histogram.record(d);
        self.finished = true;
        d
    }

    /// Ends the span without recording anything (e.g. the operation
    /// was aborted and its latency would pollute the distribution).
    pub fn cancel(mut self) {
        self.finished = true;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.histogram.record(self.obs.now().since(self.start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_obs() -> (Obs, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Obs::new(clock.clone()), clock)
    }

    #[test]
    fn drop_records_elapsed_time() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        {
            let _span = obs.span(&h);
            clock.advance(Duration::from_millis(5.0));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 5_000);
    }

    #[test]
    fn finish_returns_duration_and_records_once() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        clock.advance(Duration::from_secs(2.0));
        let d = span.finish();
        assert!((d.secs() - 2.0).abs() < 1e-9);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        clock.advance(Duration::from_secs(1.0));
        span.cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn elapsed_tracks_the_injected_clock() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        assert_eq!(span.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_millis(300.0));
        assert!((span.elapsed().millis() - 300.0).abs() < 1e-9);
    }
}
