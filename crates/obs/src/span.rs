//! Hierarchical spans: scope timers that also build a trace.
//!
//! A [`Span`] measures the time between its creation and its drop (or
//! explicit [`finish`](Span::finish)) against the observability
//! handle's injected clock. Two kinds exist:
//!
//! * **Untraced** spans (from [`Obs::span`](crate::Obs::span)) only
//!   record their elapsed time into a histogram — the PR-1 scope
//!   timer. Creating one clones two `Arc`s and reads the clock, no
//!   allocation, so they stay on request-loop hot paths.
//! * **Traced** spans (from [`Obs::enter_span`](crate::Obs::enter_span)
//!   and friends) additionally carry a [`SpanContext`] — trace id,
//!   span id, optional parent — and report a completed [`SpanRecord`]
//!   to the installed [`Subscriber`](crate::Subscriber) when they end.
//!   Traced spans are only handed out while a subscriber is installed;
//!   with tracing disabled the same calls return untraced spans, so
//!   instrumentation left in hot paths costs one atomic load.
//!
//! Parenting is automatic: the handle keeps a stack of live traced
//! spans, and a new traced span becomes a child of the stack top (or
//! the root of a fresh trace when the stack is empty). Remote parents —
//! a trace context carried over the wire — are attached explicitly via
//! [`Obs::span_with_remote_parent`](crate::Obs::span_with_remote_parent).

use crate::json::{Json, ToJson};
use crate::metrics::Histogram;
use crate::Obs;
use alidrone_geo::{Duration, Timestamp};
use std::sync::Arc;

/// Identity of one span within one trace.
///
/// Ids are drawn from the handle's deterministic xorshift stream (see
/// [`Obs::seed_trace_ids`](crate::Obs::seed_trace_ids)); `trace_id` is
/// shared by every span of one causal chain, `parent_id` is `None` for
/// trace roots and for spans whose parent lives on the other side of
/// the wire (the remote parent's id is still recorded — see
/// [`SpanContext::parent_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifier shared by every span in one trace.
    pub trace_id: u128,
    /// This span's identifier (unique within the trace, never zero).
    pub span_id: u64,
    /// The parent span's id, `None` for trace roots.
    pub parent_id: Option<u64>,
}

impl SpanContext {
    /// The trace id as a 32-digit lowercase hex string (the wire/export
    /// form — u128s do not survive JSON's f64 numbers).
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The span id as a 16-digit lowercase hex string.
    pub fn span_id_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }
}

/// A completed traced span, as delivered to
/// [`Subscriber::on_span`](crate::Subscriber::on_span).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's operation name (`"server.submit_poa"`).
    pub name: &'static str,
    /// Trace/span/parent identity.
    pub context: SpanContext,
    /// When the span began (sim or wall time, per the installed clock).
    pub start: Timestamp,
    /// When the span ended.
    pub end: Timestamp,
}

impl SpanRecord {
    /// The span's total duration.
    pub fn duration(&self) -> Duration {
        self.end.since(self.start)
    }
}

impl ToJson for SpanRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name)),
            ("trace_id", Json::Str(self.context.trace_id_hex())),
            ("span_id", Json::Str(self.context.span_id_hex())),
            (
                "parent_id",
                match self.context.parent_id {
                    Some(p) => Json::Str(format!("{p:016x}")),
                    None => Json::Null,
                },
            ),
            ("start_s", Json::Num(self.start.secs())),
            ("end_s", Json::Num(self.end.secs())),
        ])
    }
}

/// Times a scope; records into a histogram and/or reports a
/// [`SpanRecord`] on drop.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    name: &'static str,
    histogram: Option<Arc<Histogram>>,
    context: Option<SpanContext>,
    start: Timestamp,
    finished: bool,
}

impl Span {
    pub(crate) fn new(obs: Obs, histogram: Arc<Histogram>) -> Span {
        Span::build(obs, "span", Some(histogram), None)
    }

    pub(crate) fn build(
        obs: Obs,
        name: &'static str,
        histogram: Option<Arc<Histogram>>,
        context: Option<SpanContext>,
    ) -> Span {
        let start = obs.now();
        Span {
            obs,
            name,
            histogram,
            context,
            start,
            finished: false,
        }
    }

    /// When the span started.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// The span's operation name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The trace identity, when this span is traced (a subscriber was
    /// installed at creation). Use it to stamp the trace context onto
    /// wire frames.
    pub fn context(&self) -> Option<&SpanContext> {
        self.context.as_ref()
    }

    /// Time elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.obs.now().since(self.start)
    }

    /// Ends the span now and returns the recorded duration.
    pub fn finish(mut self) -> Duration {
        let end = self.obs.now();
        self.complete(end);
        end.since(self.start)
    }

    /// Ends the span with an explicitly *modelled* duration: the span
    /// is recorded as `[start, start + duration)` regardless of how
    /// much injected-clock time passed. Used where the cost is a model,
    /// not a measurement — e.g. the TEE's table-driven signing cost,
    /// which the simulation clock does not advance through.
    pub fn finish_with(mut self, duration: Duration) {
        let end = self.start + duration;
        self.complete(end);
    }

    /// Ends the span without recording anything (e.g. the operation
    /// was aborted and its latency would pollute the distribution). A
    /// traced span still leaves the live-span stack, but no
    /// [`SpanRecord`] is reported.
    pub fn cancel(mut self) {
        self.finished = true;
        if let Some(ctx) = self.context {
            self.obs.exit_span(ctx);
        }
    }

    fn complete(&mut self, end: Timestamp) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(h) = &self.histogram {
            h.record(end.since(self.start));
        }
        if let Some(ctx) = self.context {
            self.obs.exit_span(ctx);
            self.obs.deliver_span(&SpanRecord {
                name: self.name,
                context: ctx,
                start: self.start,
                end,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = self.obs.now();
        self.complete(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::FlightRecorder;

    fn manual_obs() -> (Obs, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Obs::new(clock.clone()), clock)
    }

    #[test]
    fn drop_records_elapsed_time() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        {
            let _span = obs.span(&h);
            clock.advance(Duration::from_millis(5.0));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 5_000);
    }

    #[test]
    fn finish_returns_duration_and_records_once() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        clock.advance(Duration::from_secs(2.0));
        let d = span.finish();
        assert!((d.secs() - 2.0).abs() < 1e-9);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        clock.advance(Duration::from_secs(1.0));
        span.cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn elapsed_tracks_the_injected_clock() {
        let (obs, clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        assert_eq!(span.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_millis(300.0));
        assert!((span.elapsed().millis() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn untraced_span_has_no_context() {
        let (obs, _clock) = manual_obs();
        let h = obs.histogram("op");
        let span = obs.span(&h);
        assert!(span.context().is_none());
        // Tracing entry points degrade to untraced without a subscriber.
        let t = obs.enter_span("op.traced");
        assert!(t.context().is_none());
    }

    #[test]
    fn traced_spans_nest_via_the_stack() {
        let (obs, clock) = manual_obs();
        let rec = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(rec.clone());

        let root = obs.enter_span("root");
        let root_ctx = *root.context().unwrap();
        clock.advance(Duration::from_secs(1.0));
        let child = obs.enter_span("child");
        let child_ctx = *child.context().unwrap();
        clock.advance(Duration::from_secs(1.0));
        child.finish();
        root.finish();

        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_eq!(child_ctx.parent_id, Some(root_ctx.span_id));
        assert_eq!(root_ctx.parent_id, None);
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        // Children complete first.
        assert_eq!(spans[0].name, "child");
        assert!((spans[0].duration().secs() - 1.0).abs() < 1e-9);
        assert_eq!(spans[1].name, "root");
        assert!((spans[1].duration().secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sibling_spans_share_a_parent_and_trace() {
        let (obs, _clock) = manual_obs();
        let rec = Arc::new(FlightRecorder::new(16));
        obs.set_subscriber(rec.clone());
        let root = obs.enter_span("root");
        let a = obs.enter_span("a").context().copied().unwrap();
        // `a` finished (dropped) before `b` starts.
        let b = obs.enter_span("b").context().copied().unwrap();
        let root_ctx = *root.context().unwrap();
        assert_eq!(a.parent_id, Some(root_ctx.span_id));
        assert_eq!(b.parent_id, Some(root_ctx.span_id));
        assert_eq!(a.trace_id, root_ctx.trace_id);
        assert_eq!(b.trace_id, root_ctx.trace_id);
        assert_ne!(a.span_id, b.span_id);
    }

    #[test]
    fn finish_with_records_the_modelled_duration() {
        let (obs, _clock) = manual_obs();
        let rec = Arc::new(FlightRecorder::new(4));
        obs.set_subscriber(rec.clone());
        let h = obs.histogram("tee.sign.span");
        let span = obs.enter_span_recording("tee.sign", &h);
        // The manual clock never advances, but the modelled cost does.
        span.finish_with(Duration::from_millis(217.0));
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert!((spans[0].duration().millis() - 217.0).abs() < 1e-9);
        assert_eq!(h.snapshot().sum_micros, 217_000);
    }

    #[test]
    fn cancelled_traced_span_leaves_the_stack() {
        let (obs, _clock) = manual_obs();
        let rec = Arc::new(FlightRecorder::new(4));
        obs.set_subscriber(rec.clone());
        let root = obs.enter_span("root");
        let root_id = root.context().unwrap().span_id;
        let child = obs.enter_span("child");
        child.cancel();
        // The cancelled child must not linger as the current parent.
        assert_eq!(obs.current_span().map(|c| c.span_id), Some(root_id));
        assert!(rec.spans().is_empty());
        root.finish();
        assert_eq!(rec.spans().len(), 1);
    }

    #[test]
    fn remote_parent_attaches_to_the_wire_context() {
        let (obs, _clock) = manual_obs();
        let rec = Arc::new(FlightRecorder::new(4));
        obs.set_subscriber(rec.clone());
        let span = obs.span_with_remote_parent("server.handle", 0xABCD, 77);
        let ctx = *span.context().unwrap();
        assert_eq!(ctx.trace_id, 0xABCD);
        assert_eq!(ctx.parent_id, Some(77));
        // Children created while it is live join the remote trace.
        let child = obs.enter_span("auditor.verify");
        assert_eq!(child.context().unwrap().trace_id, 0xABCD);
        assert_eq!(child.context().unwrap().parent_id, Some(ctx.span_id));
    }

    #[test]
    fn hex_forms_are_fixed_width() {
        let ctx = SpanContext {
            trace_id: 0xF,
            span_id: 0x2,
            parent_id: None,
        };
        assert_eq!(ctx.trace_id_hex().len(), 32);
        assert_eq!(ctx.span_id_hex().len(), 16);
        assert!(ctx.trace_id_hex().ends_with('f'));
    }

    #[test]
    fn span_record_json_shape() {
        let rec = SpanRecord {
            name: "wire.submit_poa",
            context: SpanContext {
                trace_id: 1,
                span_id: 2,
                parent_id: Some(3),
            },
            start: Timestamp::from_secs(1.0),
            end: Timestamp::from_secs(2.5),
        };
        let json = Json::parse(&rec.to_json().to_compact()).unwrap();
        assert_eq!(json.get("name").unwrap().as_str(), Some("wire.submit_poa"));
        assert_eq!(
            json.get("parent_id").unwrap().as_str(),
            Some("0000000000000003")
        );
        assert_eq!(json.get("end_s").unwrap().as_f64(), Some(2.5));
    }
}
