//! Trace and metrics exporters: Chrome trace-event JSON and Prometheus
//! text exposition.
//!
//! Both formats are emitted with the crate's hand-rolled tooling (no
//! serde, no prometheus client — the build is offline):
//!
//! * [`chrome_trace`] renders completed spans and events as a Chrome
//!   trace-event document (the JSON Array Format with a
//!   `traceEvents` wrapper) that loads directly in Perfetto or
//!   `chrome://tracing`: spans become `"ph": "X"` complete events with
//!   microsecond `ts`/`dur`, events become `"ph": "i"` instants.
//! * [`prometheus_text`] renders a [`MetricsSnapshot`] in the
//!   Prometheus text exposition format, including cumulative
//!   `_bucket{le="…"}` series reconstructed from the histograms'
//!   power-of-two microsecond buckets.

use crate::event::Event;
use crate::json::{Json, ToJson};
use crate::metrics::{bucket_upper_micros, HistogramSnapshot, MetricsSnapshot};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Renders spans + events as a Chrome trace-event JSON document.
///
/// Each span becomes a complete (`"X"`) event: `ts` is its start and
/// `dur` its duration, both in microseconds of the injected clock
/// (simulated time in the experiments). The trace id picks the `tid`
/// lane, so concurrent traces render side by side, and the full ids
/// ride along in `args` as fixed-width hex strings (they do not fit
/// JSON's f64 numbers). Events become instant (`"i"`) events on lane 0
/// with their fields as `args`.
pub fn chrome_trace(spans: &[SpanRecord], events: &[Event]) -> Json {
    let mut entries: Vec<Json> = Vec::with_capacity(spans.len() + events.len());
    for span in spans {
        entries.push(Json::obj([
            ("name", Json::str(span.name)),
            ("cat", Json::str("span")),
            ("ph", Json::str("X")),
            ("ts", Json::Num(span.start.secs() * 1e6)),
            ("dur", Json::Num(span.duration().secs().max(0.0) * 1e6)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(trace_lane(span.context.trace_id) as f64)),
            (
                "args",
                Json::obj([
                    ("trace_id", Json::Str(span.context.trace_id_hex())),
                    ("span_id", Json::Str(span.context.span_id_hex())),
                    (
                        "parent_id",
                        match span.context.parent_id {
                            Some(p) => Json::Str(format!("{p:016x}")),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
        ]));
    }
    for event in events {
        entries.push(Json::obj([
            ("name", Json::str(event.message)),
            ("cat", Json::str(event.target)),
            ("ph", Json::str("i")),
            ("ts", Json::Num(event.time.secs() * 1e6)),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(0.0)),
            ("s", Json::str("g")),
            (
                "args",
                Json::Obj(
                    event
                        .fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(entries)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// A stable small lane number for a trace, so Perfetto renders each
/// trace's spans in their own row.
fn trace_lane(trace_id: u128) -> u64 {
    (trace_id as u64) % 1_000 + 1
}

/// Renders a [`MetricsSnapshot`] in the Prometheus text exposition
/// format.
///
/// Metric names are sanitised (`.` and other non-identifier bytes
/// become `_`). Counters emit one sample under the conventional
/// `_total` suffix, gauges one bare sample; histograms
/// emit cumulative `_bucket{le="…"}` samples (bucket upper bounds in
/// seconds, from the power-of-two microsecond buckets), `_sum`
/// (seconds) and `_count`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        // Prometheus naming convention: cumulative counters carry a
        // `_total` suffix (and the family name includes it).
        let prom = format!("{}_total", sanitize_metric_name(name));
        let _ = writeln!(out, "# HELP {prom} Counter `{name}`.");
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let prom = sanitize_metric_name(name);
        let _ = writeln!(out, "# HELP {prom} Gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {prom} gauge");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let prom = sanitize_metric_name(name);
        let _ = writeln!(out, "# HELP {prom} Histogram `{name}` (seconds).");
        let _ = writeln!(out, "# TYPE {prom} histogram");
        let mut cumulative = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            cumulative += n;
            match bucket_upper_micros(i) {
                Some(upper) => {
                    let le = upper as f64 / 1e6;
                    let _ = writeln!(out, "{prom}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{prom}_sum {}", h.sum_micros as f64 / 1e6);
        let _ = writeln!(out, "{prom}_count {}", h.count);
    }
    out
}

/// Parses text in the subset of the Prometheus exposition format that
/// [`prometheus_text`] emits back into a [`MetricsSnapshot`].
///
/// This is what lets a soak sampler treat a live `/metrics` endpoint as
/// its snapshot source: scrape, parse, feed the
/// [`SnapshotRing`](crate::timeseries::SnapshotRing). Families are
/// classified by their `# TYPE` lines; counters drop the conventional
/// `_total` suffix, histograms are decumulated from their `_bucket`
/// samples and rebuilt via
/// [`HistogramSnapshot::from_buckets`](crate::metrics::HistogramSnapshot::from_buckets)
/// (`_sum` seconds → microseconds; `_count` is implied by the `+Inf`
/// bucket). Keys come back *sanitised* (`server.requests` scrapes as
/// `server_requests`), so rules evaluated over scraped snapshots must
/// use sanitised names. Unrecognised lines and labelled samples other
/// than `_bucket` are skipped.
pub fn parse_prometheus_text(text: &str) -> MetricsSnapshot {
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct HistAcc {
        cumulative: Vec<f64>,
        sum_secs: f64,
    }

    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((family, kind)) = rest.split_once(' ') {
                types.insert(family, kind.trim());
            }
        }
    }

    let mut snapshot = MetricsSnapshot::default();
    let mut hists: BTreeMap<String, HistAcc> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name_and_labels, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (base, labelled) = match name_and_labels.split_once('{') {
            Some((base, _)) => (base, true),
            None => (name_and_labels, false),
        };
        match types.get(base).copied() {
            Some("counter") if !labelled => {
                let key = base.strip_suffix("_total").unwrap_or(base);
                snapshot.counters.insert(key.to_string(), value as u64);
            }
            Some("gauge") if !labelled => {
                snapshot.gauges.insert(base.to_string(), value as i64);
            }
            _ => {
                // Histogram samples carry suffixes, so `base` is not a
                // family name; resolve against the family's TYPE line.
                let (family, part) = match base.rsplit_once('_') {
                    Some(pair) => pair,
                    None => continue,
                };
                if types.get(family).copied() != Some("histogram") {
                    continue;
                }
                let acc = hists.entry(family.to_string()).or_default();
                match part {
                    "bucket" if labelled => acc.cumulative.push(value),
                    "sum" if !labelled => acc.sum_secs = value,
                    // `_count` equals the +Inf bucket — implied.
                    _ => {}
                }
            }
        }
    }

    for (family, acc) in hists {
        let mut buckets = Vec::with_capacity(acc.cumulative.len());
        let mut prev = 0.0;
        for cum in acc.cumulative {
            buckets.push((cum - prev).max(0.0).round() as u64);
            prev = cum;
        }
        let sum_micros = (acc.sum_secs * 1e6).round() as u64;
        snapshot
            .histograms
            .insert(family, HistogramSnapshot::from_buckets(buckets, sum_micros));
    }
    snapshot
}

/// Maps a registry name onto the Prometheus identifier charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value for the exposition format: backslash, double
/// quote and newline are the three characters the format reserves
/// inside `label="…"`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanContext;
    use crate::{Level, Obs, Value};
    use alidrone_geo::{Duration, Timestamp};
    use std::collections::BTreeMap;

    fn sample_span(name: &'static str, parent: Option<u64>) -> SpanRecord {
        SpanRecord {
            name,
            context: SpanContext {
                trace_id: 0xDEAD_BEEF,
                span_id: 42,
                parent_id: parent,
            },
            start: Timestamp::from_secs(1.0),
            end: Timestamp::from_secs(1.5),
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let spans = vec![sample_span("root", None), sample_span("child", Some(42))];
        let events = vec![Event {
            time: Timestamp::from_secs(1.25),
            level: Level::Warn,
            target: "wire",
            message: "request_dropped",
            fields: vec![("call", Value::U64(3))],
        }];
        let doc = chrome_trace(&spans, &events);
        let parsed = Json::parse(&doc.to_pretty()).unwrap();
        let entries = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 3);
        let root = &entries[0];
        assert_eq!(root.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(root.get("ts").unwrap().as_f64(), Some(1_000_000.0));
        assert_eq!(root.get("dur").unwrap().as_f64(), Some(500_000.0));
        assert!(root
            .get("args")
            .unwrap()
            .get("parent_id")
            .unwrap()
            .as_str()
            .is_none());
        let child = &entries[1];
        assert_eq!(
            child
                .get("args")
                .unwrap()
                .get("parent_id")
                .unwrap()
                .as_str(),
            Some("000000000000002a")
        );
        let instant = &entries[2];
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            instant.get("args").unwrap().get("call").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(
            sanitize_metric_name("server.latency.submit_poa"),
            "server_latency_submit_poa"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
    }

    #[test]
    fn sanitize_handles_degenerate_names() {
        // An empty name still yields a valid identifier.
        assert_eq!(sanitize_metric_name(""), "_");
        // Non-ASCII maps onto `_` (one per char, not per byte).
        assert_eq!(sanitize_metric_name("débit"), "d_bit");
        assert_eq!(sanitize_metric_name("速度"), "__");
        // A lone leading digit both gets the guard prefix and survives.
        assert_eq!(sanitize_metric_name("7"), "_7");
        // Colons are part of the Prometheus charset and pass through.
        assert_eq!(sanitize_metric_name("rule:rate5m"), "rule:rate5m");
    }

    #[test]
    fn label_values_escape_reserved_characters() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r"C:\path"), r"C:\\path");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        // A pathological mix stays one exposition-format line.
        let escaped = escape_label_value("a\\\"\nb");
        assert_eq!(escaped, "a\\\\\\\"\\nb");
        assert!(!escaped.contains('\n'));
    }

    /// A minimal parser for the subset of the exposition format the
    /// exporter emits, used to assert the export is lossless.
    fn parse_prometheus(text: &str) -> BTreeMap<String, Vec<(String, f64)>> {
        let mut families: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
            let value: f64 = value.parse().expect("float value");
            let (base, label) = match name_and_labels.split_once('{') {
                Some((base, rest)) => (base.to_string(), format!("{{{rest}")),
                None => (name_and_labels.to_string(), String::new()),
            };
            families.entry(base).or_default().push((label, value));
        }
        families
    }

    #[test]
    fn prometheus_round_trips_every_metric() {
        let obs = Obs::noop();
        obs.counter("server.requests").add(7);
        obs.counter("tee.world_switches").add(28);
        obs.gauge("inflight").set(-2);
        let h = obs.histogram("server.latency.submit_poa");
        h.record(Duration::from_millis(1.0));
        h.record(Duration::from_millis(1.0));
        h.record(Duration::from_millis(100.0));
        let snapshot = obs.snapshot();

        let text = prometheus_text(&snapshot);
        let families = parse_prometheus(&text);

        for (name, &v) in &snapshot.counters {
            let samples = &families[&format!("{}_total", sanitize_metric_name(name))];
            assert_eq!(samples, &vec![(String::new(), v as f64)], "{name}");
        }
        for (name, &v) in &snapshot.gauges {
            let samples = &families[&sanitize_metric_name(name)];
            assert_eq!(samples, &vec![(String::new(), v as f64)], "{name}");
        }
        for (name, h) in &snapshot.histograms {
            let prom = sanitize_metric_name(name);
            let count = families[&format!("{prom}_count")][0].1;
            let sum = families[&format!("{prom}_sum")][0].1;
            assert_eq!(count, h.count as f64);
            assert!((sum - h.sum_micros as f64 / 1e6).abs() < 1e-9);
            let buckets = &families[&format!("{prom}_bucket")];
            assert_eq!(buckets.len(), h.buckets.len());
            // The +Inf bucket is cumulative over everything.
            let (last_label, last_value) = buckets.last().unwrap();
            assert_eq!(last_label, "{le=\"+Inf\"}");
            assert_eq!(*last_value, h.count as f64);
            // Cumulative counts reconstruct the raw buckets exactly.
            let mut prev = 0.0;
            for ((_, cum), &raw) in buckets.iter().zip(h.buckets.iter()) {
                assert_eq!(cum - prev, raw as f64);
                prev = *cum;
            }
        }
        // Nothing extra: every family maps back to a snapshot entry.
        assert_eq!(
            families.len(),
            snapshot.counters.len() + snapshot.gauges.len() + 3 * snapshot.histograms.len()
        );
    }

    #[test]
    fn parse_prometheus_text_round_trips_a_scrape() {
        let obs = Obs::noop();
        obs.counter("server.requests").add(12345);
        obs.counter("server.shed.queue_full").add(7);
        obs.gauge("server.inflight").set(-3);
        obs.gauge("slo.healthy.availability").set(1);
        let h = obs.histogram("server.latency.submit_poa");
        h.record(Duration::from_millis(1.0));
        h.record(Duration::from_millis(1.0));
        h.record(Duration::from_millis(250.0));
        let original = obs.snapshot();

        let parsed = parse_prometheus_text(&prometheus_text(&original));

        // Keys come back sanitised; values come back exact.
        assert_eq!(parsed.counter("server_requests"), 12345);
        assert_eq!(parsed.counter("server_shed_queue_full"), 7);
        assert_eq!(parsed.gauges["server_inflight"], -3);
        assert_eq!(parsed.gauges["slo_healthy_availability"], 1);
        let orig_h = original.histogram("server.latency.submit_poa").unwrap();
        let parsed_h = parsed.histogram("server_latency_submit_poa").unwrap();
        assert_eq!(parsed_h.buckets, orig_h.buckets);
        assert_eq!(parsed_h.count, orig_h.count);
        assert_eq!(parsed_h.sum_micros, orig_h.sum_micros);
        assert_eq!(parsed_h.p99_micros, orig_h.p99_micros);

        // A second round trip is a fixed point.
        let again = parse_prometheus_text(&prometheus_text(&parsed));
        assert_eq!(again, parsed);
    }

    #[test]
    fn parse_prometheus_text_skips_junk_lines() {
        let text = "# HELP x_total Counter `x`.\n\
                    # TYPE x_total counter\n\
                    x_total 5\n\
                    not a sample line at all\n\
                    unknown_family 9\n\
                    x_total{shard=\"1\"} 3\n";
        let parsed = parse_prometheus_text(text);
        assert_eq!(parsed.counter("x"), 5);
        assert_eq!(parsed.counters.len(), 1);
        assert!(parsed.gauges.is_empty() && parsed.histograms.is_empty());
    }

    #[test]
    fn prometheus_bucket_bounds_are_seconds() {
        let obs = Obs::noop();
        obs.histogram("lat").record_micros(1);
        let text = prometheus_text(&obs.snapshot());
        // Bucket 0 upper bound: 1 µs = 1e-6 s.
        assert!(text.contains("lat_bucket{le=\"0.000001\"} 0"), "{text}");
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_count 1"));
    }
}
