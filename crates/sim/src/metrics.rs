//! Post-processing of flight records into the series the paper plots.

use alidrone_core::FlightRecord;
use alidrone_geo::{Distance, ZoneSet};

/// A `(distance_to_zone_ft, cumulative_samples)` point of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Point {
    /// Distance from the vehicle to the NFZ boundary, feet.
    pub distance_ft: f64,
    /// Total samples recorded so far.
    pub cumulative_samples: usize,
}

/// Fig. 6: cumulative number of recorded samples as a function of the
/// distance to the (single) NFZ boundary.
pub fn fig6_series(record: &FlightRecord) -> Vec<Fig6Point> {
    let mut out = Vec::new();
    let mut cum = 0usize;
    for ev in &record.events {
        if ev.recorded {
            cum += 1;
        }
        if let Some(d) = ev.nearest_boundary {
            out.push(Fig6Point {
                distance_ft: d.feet(),
                cumulative_samples: cum,
            });
        }
    }
    out
}

/// A timeline point `(t_secs, value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Seconds since the start of the run.
    pub t: f64,
    /// Series value at `t`.
    pub value: f64,
}

/// Fig. 8(a): distance to the nearest NFZ over time, feet.
pub fn fig8a_series(record: &FlightRecord) -> Vec<TimePoint> {
    let t0 = record.window_start.secs();
    record
        .events
        .iter()
        .filter_map(|ev| {
            ev.nearest_boundary.map(|d| TimePoint {
                t: ev.time.secs() - t0,
                value: d.feet(),
            })
        })
        .collect()
}

/// Fig. 8(b): instantaneous sampling rate over time (Hz), computed as
/// the number of recorded samples in a sliding window.
///
/// A non-positive (or non-finite) `window_secs` yields an empty series
/// rather than a division by zero.
pub fn fig8b_series(record: &FlightRecord, window_secs: f64) -> Vec<TimePoint> {
    if !window_secs.is_finite() || window_secs <= 0.0 {
        return Vec::new();
    }
    let t0 = record.window_start.secs();
    let times: Vec<f64> = record
        .poa
        .alibi()
        .iter()
        .map(|s| s.time().secs() - t0)
        .collect();
    record
        .events
        .iter()
        .map(|ev| {
            let t = ev.time.secs() - t0;
            let lo = t - window_secs / 2.0;
            let hi = t + window_secs / 2.0;
            let n = times.iter().filter(|&&s| s >= lo && s < hi).count();
            TimePoint {
                t,
                value: n as f64 / window_secs,
            }
        })
        .collect()
}

/// Fig. 8(c): cumulative count of insufficient PoA pairs over time.
///
/// A pair `(Sᵢ, Sᵢ₊₁)` is counted at time `tᵢ₊₁` when
/// `min_j (Dᵢⱼ + Dᵢ₊₁ⱼ) < v_max (tᵢ₊₁ − tᵢ)`.
pub fn fig8c_series(record: &FlightRecord, zones: &ZoneSet) -> Vec<TimePoint> {
    let t0 = record.window_start.secs();
    let alibi = record.poa.alibi();
    let report = alidrone_geo::sufficiency::check_alibi(
        &alibi,
        zones,
        alidrone_geo::FAA_MAX_SPEED,
        alidrone_geo::sufficiency::Criterion::Paper,
    );
    // Cumulative count keyed by the time of the second sample of each
    // insufficient pair, then sampled onto the event timeline.
    let mut bad_times: Vec<f64> = report
        .pairs
        .iter()
        .filter(|p| !p.sufficient)
        .map(|p| alibi[p.index + 1].time().secs() - t0)
        .collect();
    bad_times.sort_by(f64::total_cmp);
    record
        .events
        .iter()
        .map(|ev| {
            let t = ev.time.secs() - t0;
            let n = bad_times.iter().take_while(|&&b| b <= t).count();
            TimePoint { t, value: n as f64 }
        })
        .collect()
}

/// Summary of a Fig. 6-style comparison: total samples per strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCountSummary {
    /// Strategy label.
    pub strategy: String,
    /// Total recorded samples.
    pub samples: usize,
    /// Insufficient pairs against the scenario's zones.
    pub insufficient: usize,
}

/// The minimum distance to any zone over a run, feet.
pub fn min_distance_ft(record: &FlightRecord) -> Option<f64> {
    record
        .events
        .iter()
        .filter_map(|e| e.nearest_boundary.map(Distance::feet))
        .min_by(f64::total_cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{experiment_key, run_scenario};
    use crate::scenarios::{airport, residential};
    use alidrone_core::SamplingStrategy;
    use alidrone_tee::CostModel;

    fn airport_run(strategy: SamplingStrategy) -> crate::runner::ScenarioRun {
        run_scenario(&airport(), strategy, experiment_key(), CostModel::free()).unwrap()
    }

    #[test]
    fn fig6_series_is_monotone_in_samples() {
        let run = airport_run(SamplingStrategy::Adaptive);
        let series = fig6_series(&run.record);
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[1].cumulative_samples >= w[0].cumulative_samples);
            // Driving away: distance grows.
            assert!(w[1].distance_ft >= w[0].distance_ft - 1.0);
        }
        // The landing anchor recorded after the last event may add one.
        let final_cum = series.last().unwrap().cumulative_samples;
        assert!(run.sample_count() - final_cum <= 1);
    }

    #[test]
    fn fig6_adaptive_density_decreases_with_distance() {
        // Fig. 6 on a log scale: the adaptive gaps grow geometrically
        // with distance, so far more samples land near the zone than far
        // from it.
        let run = airport_run(SamplingStrategy::Adaptive);
        let series = fig6_series(&run.record);
        let total = series.last().unwrap().cumulative_samples;
        let near = series
            .iter()
            .find(|p| p.distance_ft >= 200.0)
            .unwrap()
            .cumulative_samples;
        let at_5000ft = series
            .iter()
            .find(|p| p.distance_ft >= 5_000.0)
            .map(|p| p.cumulative_samples)
            .unwrap_or(total);
        let far = total - at_5000ft;
        assert!(
            near >= far,
            "{near} samples within 200 ft vs {far} beyond 5000 ft"
        );
        assert!(near >= total / 4, "{near} of {total} within 200 ft");
    }

    #[test]
    fn fig8a_profile_spans_run() {
        let run = run_scenario(
            &residential(),
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let series = fig8a_series(&run.record);
        assert!(series.first().unwrap().t < 1.0);
        assert!(series.last().unwrap().t > 150.0);
        let min = series.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
        assert!((min - 21.0).abs() < 3.0, "min distance {min} ft");
    }

    #[test]
    fn fig8b_rates_bounded_by_hardware() {
        let run = run_scenario(
            &residential(),
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let series = fig8b_series(&run.record, 4.0);
        for p in &series {
            assert!(p.value <= 5.5, "rate {} Hz at t={}", p.value, p.t);
        }
        // Dense stretch pushes the rate well above the sparse stretch.
        let early_max = series
            .iter()
            .filter(|p| p.t < 40.0)
            .map(|p| p.value)
            .fold(0.0, f64::max);
        let late_max = series
            .iter()
            .filter(|p| p.t > 80.0)
            .map(|p| p.value)
            .fold(0.0, f64::max);
        assert!(
            late_max > early_max,
            "late {late_max} Hz vs early {early_max} Hz"
        );
    }

    #[test]
    fn fig8c_is_cumulative_and_matches_total() {
        let scen = residential();
        let run = run_scenario(
            &scen,
            SamplingStrategy::FixedRate(2.0),
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let series = fig8c_series(&run.record, &scen.zones);
        for w in series.windows(2) {
            assert!(w[1].value >= w[0].value);
        }
        assert_eq!(
            series.last().unwrap().value as usize,
            run.insufficient_pairs
        );
    }

    fn empty_record() -> alidrone_core::FlightRecord {
        alidrone_core::FlightRecord {
            poa: alidrone_core::ProofOfAlibi::new(),
            events: Vec::new(),
            strategy: "empty".to_string(),
            window_start: alidrone_geo::Timestamp::EPOCH,
            window_end: alidrone_geo::Timestamp::EPOCH,
        }
    }

    #[test]
    fn empty_flight_record_yields_empty_series() {
        let rec = empty_record();
        assert_eq!(fig6_series(&rec), Vec::new());
        assert_eq!(fig8a_series(&rec), Vec::new());
        assert_eq!(fig8b_series(&rec, 4.0), Vec::new());
        assert_eq!(fig8c_series(&rec, &ZoneSet::new()), Vec::new());
        assert_eq!(min_distance_ft(&rec), None);
    }

    #[test]
    fn single_event_record_is_well_formed() {
        use alidrone_core::SampleEvent;
        use alidrone_geo::{GeoPoint, Timestamp};
        let mut rec = empty_record();
        rec.events.push(SampleEvent {
            time: Timestamp::from_secs(0.0),
            position: GeoPoint::new(40.1, -88.2).unwrap(),
            recorded: false,
            nearest_boundary: Some(Distance::from_meters(100.0)),
        });
        let f6 = fig6_series(&rec);
        assert_eq!(f6.len(), 1);
        assert_eq!(f6[0].cumulative_samples, 0);
        assert!((f6[0].distance_ft - Distance::from_meters(100.0).feet()).abs() < 1e-9);
        let f8a = fig8a_series(&rec);
        assert_eq!(f8a.len(), 1);
        assert_eq!(f8a[0].t, 0.0);
        // One event, no recorded samples: rate is zero everywhere.
        let f8b = fig8b_series(&rec, 2.0);
        assert_eq!(f8b, vec![TimePoint { t: 0.0, value: 0.0 }]);
        assert_eq!(
            min_distance_ft(&rec),
            Some(Distance::from_meters(100.0).feet())
        );
    }

    #[test]
    fn fig8b_window_wider_than_flight_counts_everything() {
        let run = run_scenario(
            &residential(),
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let flight_secs = run.record.window_end.secs() - run.record.window_start.secs();
        let window = flight_secs * 10.0;
        let series = fig8b_series(&run.record, window);
        // Every sample falls inside every window: the series is flat at
        // total / window. (The landing anchor can land exactly on the
        // half-open window edge for the first events, so allow one off.)
        let expected = run.sample_count() as f64 / window;
        let one_less = (run.sample_count() - 1) as f64 / window;
        for p in &series {
            assert!(
                (p.value - expected).abs() < 1e-12 || (p.value - one_less).abs() < 1e-12,
                "value {} at t={} vs expected {expected}",
                p.value,
                p.t
            );
        }
    }

    #[test]
    fn fig8b_zero_width_window_is_guarded() {
        let run = airport_run(SamplingStrategy::Adaptive);
        assert_eq!(fig8b_series(&run.record, 0.0), Vec::new());
        assert_eq!(fig8b_series(&run.record, -1.0), Vec::new());
        assert_eq!(fig8b_series(&run.record, f64::NAN), Vec::new());
        assert_eq!(fig8b_series(&run.record, f64::INFINITY), Vec::new());
    }

    #[test]
    fn min_distance_matches_scenario() {
        let run = run_scenario(
            &residential(),
            SamplingStrategy::FixedRate(5.0),
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let min = min_distance_ft(&run.record).unwrap();
        assert!((min - 21.0).abs() < 3.0, "{min} ft");
    }
}
