//! JSON export of experiment series for external plotting.
//!
//! The `exp_*` binaries print tables; this module additionally dumps the
//! raw series as JSON (via the hand-rolled `alidrone_obs::json` document
//! model — output formatting only, never on the security path) so the
//! figures can be re-plotted with any tool.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use alidrone_obs::{Json, ToJson};

use crate::metrics::{Fig6Point, TimePoint};

/// Where experiment dumps go by default: `target/experiments/`.
pub fn default_export_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// A labelled Fig. 6 series.
#[derive(Debug)]
pub struct Fig6Export {
    /// Strategy label.
    pub strategy: String,
    /// `(distance_ft, cumulative_samples)` points.
    pub points: Vec<(f64, usize)>,
}

impl Fig6Export {
    /// Builds from a metrics series.
    pub fn new(strategy: &str, series: &[Fig6Point]) -> Self {
        Fig6Export {
            strategy: strategy.to_string(),
            points: series
                .iter()
                .map(|p| (p.distance_ft, p.cumulative_samples))
                .collect(),
        }
    }
}

impl ToJson for Fig6Export {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

/// A labelled timeline series (Fig. 8 panels).
#[derive(Debug)]
pub struct TimelineExport {
    /// Strategy / panel label.
    pub label: String,
    /// `(t_secs, value)` points.
    pub points: Vec<(f64, f64)>,
}

impl TimelineExport {
    /// Builds from a metrics timeline.
    pub fn new(label: &str, series: &[TimePoint]) -> Self {
        TimelineExport {
            label: label.to_string(),
            points: series.iter().map(|p| (p.t, p.value)).collect(),
        }
    }
}

impl ToJson for TimelineExport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

/// Writes any exportable payload as pretty JSON under `dir/name.json`,
/// creating the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json<T: ToJson + ?Sized>(dir: &Path, name: &str, payload: &T) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, payload.to_json().to_pretty())?;
    Ok(path)
}

/// Writes a plain-text payload under `dir/name` (the name carries its
/// own extension — e.g. `metrics.prom` for a Prometheus exposition),
/// creating the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_text(dir: &Path, name: &str, payload: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, payload)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("alidrone-export-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_fig6_json() {
        let dir = tmpdir("fig6");
        let export = Fig6Export::new(
            "adaptive",
            &[
                Fig6Point {
                    distance_ft: 30.0,
                    cumulative_samples: 1,
                },
                Fig6Point {
                    distance_ft: 120.0,
                    cumulative_samples: 3,
                },
            ],
        );
        let path = write_json(&dir, "fig6_adaptive", &export).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("strategy").unwrap().as_str(), Some("adaptive"));
        assert_eq!(
            parsed
                .get("points")
                .unwrap()
                .at(1)
                .unwrap()
                .at(1)
                .unwrap()
                .as_u64(),
            Some(3)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_timeline_json() {
        let dir = tmpdir("timeline");
        let export = TimelineExport::new(
            "fig8a",
            &[
                TimePoint {
                    t: 0.0,
                    value: 80.0,
                },
                TimePoint {
                    t: 1.0,
                    value: 75.5,
                },
            ],
        );
        let path = write_json(&dir, "fig8a", &export).unwrap();
        let parsed = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("fig8a"));
        assert_eq!(
            parsed
                .get("points")
                .unwrap()
                .at(0)
                .unwrap()
                .at(1)
                .unwrap()
                .as_f64(),
            Some(80.0)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_plain_text() {
        let dir = tmpdir("text");
        let path = write_text(&dir, "metrics.prom", "# TYPE x counter\nx 1\n").unwrap();
        assert!(path.ends_with("metrics.prom"));
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "# TYPE x counter\nx 1\n"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_nested_directories() {
        let dir = tmpdir("nested").join("a").join("b");
        let path = write_json(&dir, "x", &vec![1u64, 2, 3]).unwrap();
        assert!(path.exists());
        fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).unwrap();
    }
}
