//! Plain-text report formatting shared by the experiment binaries.

use std::fmt::Write as _;

use alidrone_obs::{MetricsSnapshot, SpanRecord};

/// Renders a fixed-width table: header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(line, "{cell:<w$}  ");
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Formats an `Option<f64>` with the table's "-" convention for
/// infeasible cells.
pub fn opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".to_string(),
    }
}

/// Renders a [`MetricsSnapshot`] as fixed-width tables: one for
/// counters/gauges, one for histograms (count, mean, p50/p95/p99 in
/// milliseconds). Zero-valued counters are skipped so unexercised code
/// paths do not clutter scenario reports.
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let counter_rows: Vec<Vec<String>> = snapshot
        .counters
        .iter()
        .filter(|(_, &v)| v > 0)
        .map(|(name, v)| vec![name.clone(), v.to_string()])
        .chain(
            snapshot
                .gauges
                .iter()
                .filter(|(_, &v)| v != 0)
                .map(|(name, v)| vec![name.clone(), v.to_string()]),
        )
        .collect();
    if !counter_rows.is_empty() {
        out.push_str(&render_table(&["counter", "value"], &counter_rows));
    }
    let histogram_rows: Vec<Vec<String>> = snapshot
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .map(|(name, h)| {
            vec![
                name.clone(),
                h.count.to_string(),
                format!("{:.3}", h.mean_millis()),
                format!("{:.3}", h.p50_micros / 1000.0),
                format!("{:.3}", h.p95_micros / 1000.0),
                format!("{:.3}", h.p99_micros / 1000.0),
            ]
        })
        .collect();
    if !histogram_rows.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&render_table(
            &[
                "histogram",
                "count",
                "mean_ms",
                "p50_ms",
                "p95_ms",
                "p99_ms",
            ],
            &histogram_rows,
        ));
    }
    out
}

/// Renders completed spans as one ASCII tree per trace, with per-span
/// total and self time in milliseconds (self = total minus the children's
/// totals, clamped at zero — a `finish_with` child can model more time
/// than its parent's clock-measured extent).
///
/// Spans whose parent never completed (or was evicted from a bounded
/// recorder) are promoted to roots, so a truncated dump still renders.
pub fn render_trace_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    // Group by trace, in order of each trace's first span.
    let mut trace_order: Vec<u128> = Vec::new();
    for s in spans {
        if !trace_order.contains(&s.context.trace_id) {
            trace_order.push(s.context.trace_id);
        }
    }
    for (t, trace_id) in trace_order.iter().enumerate() {
        if t > 0 {
            out.push('\n');
        }
        let mut members: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.context.trace_id == *trace_id)
            .collect();
        members.sort_by(|a, b| a.start.secs().total_cmp(&b.start.secs()));
        let ids: std::collections::BTreeSet<u64> =
            members.iter().map(|s| s.context.span_id).collect();
        let roots: Vec<&SpanRecord> = members
            .iter()
            .copied()
            .filter(|s| s.context.parent_id.is_none_or(|p| !ids.contains(&p)))
            .collect();
        let _ = writeln!(
            out,
            "trace {:032x} ({} span{})",
            trace_id,
            members.len(),
            if members.len() == 1 { "" } else { "s" }
        );
        for (i, root) in roots.iter().enumerate() {
            render_span_subtree(&mut out, root, &members, "", i + 1 == roots.len());
        }
    }
    out
}

fn render_span_subtree(
    out: &mut String,
    span: &SpanRecord,
    members: &[&SpanRecord],
    prefix: &str,
    last: bool,
) {
    let children: Vec<&SpanRecord> = members
        .iter()
        .copied()
        .filter(|s| s.context.parent_id == Some(span.context.span_id))
        .collect();
    let total_ms = span.duration().secs() * 1e3;
    let child_ms: f64 = children.iter().map(|c| c.duration().secs() * 1e3).sum();
    let self_ms = (total_ms - child_ms).max(0.0);
    let branch = if last { "└─ " } else { "├─ " };
    let _ = writeln!(
        out,
        "{prefix}{branch}{} [{:016x}]  total {:.3} ms  self {:.3} ms",
        span.name, span.context.span_id, total_ms, self_ms
    );
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, child) in children.iter().enumerate() {
        render_span_subtree(out, child, members, &child_prefix, i + 1 == children.len());
    }
}

/// A coarse ASCII sparkline of a series (for eyeballing figure shapes in
/// a terminal).
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let step = (values.len() as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < values.len() && out.chars().count() < width {
        let v = values[i as usize];
        let idx = (((v - min) / span) * 7.0).round() as usize;
        out.push(GLYPHS[idx.min(7)]);
        i += step;
    }
    out
}

/// Renders a plan-view ASCII map of a route through a zone field — the
/// reproduction's stand-in for the paper's Fig. 7 satellite view.
///
/// `#` marks no-fly-zone interiors, `o` zone centres, `·` the route,
/// `A`/`B` its endpoints.
pub fn ascii_map(
    route: &[alidrone_geo::GeoPoint],
    zones: &alidrone_geo::ZoneSet,
    cols: usize,
    rows: usize,
) -> String {
    use alidrone_geo::LocalTangentPlane;
    if route.is_empty() || cols < 2 || rows < 2 {
        return String::new();
    }
    let plane = LocalTangentPlane::new(route[0]);
    let pts: Vec<(f64, f64)> = route
        .iter()
        .map(|p| {
            let e = plane.project(p);
            (e.east, e.north)
        })
        .collect();
    let zone_pts: Vec<(f64, f64, f64)> = zones
        .iter()
        .map(|z| {
            let e = plane.project(&z.center());
            (e.east, e.north, z.radius().meters())
        })
        .collect();
    let all_x = pts
        .iter()
        .map(|p| p.0)
        .chain(zone_pts.iter().flat_map(|z| [z.0 - z.2, z.0 + z.2]));
    let all_y = pts
        .iter()
        .map(|p| p.1)
        .chain(zone_pts.iter().flat_map(|z| [z.1 - z.2, z.1 + z.2]));
    let (min_x, max_x) = bounds(all_x);
    let (min_y, max_y) = bounds(all_y);
    let sx = (max_x - min_x).max(1e-9) / (cols - 1) as f64;
    let sy = (max_y - min_y).max(1e-9) / (rows - 1) as f64;

    let mut grid = vec![vec![' '; cols]; rows];
    // Zones first (route draws over them).
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let x = min_x + c as f64 * sx;
            let y = max_y - r as f64 * sy;
            if zone_pts
                .iter()
                .any(|&(zx, zy, zr)| (x - zx).hypot(y - zy) <= zr)
            {
                *cell = '#';
            }
        }
    }
    for &(zx, zy, _) in &zone_pts {
        if let Some((r, c)) = cell(zx, zy, min_x, max_y, sx, sy, cols, rows) {
            grid[r][c] = 'o';
        }
    }
    // Route: sample densely along each segment.
    for w in pts.windows(2) {
        let steps = 200;
        for k in 0..=steps {
            let t = k as f64 / steps as f64;
            let x = w[0].0 + (w[1].0 - w[0].0) * t;
            let y = w[0].1 + (w[1].1 - w[0].1) * t;
            if let Some((r, c)) = cell(x, y, min_x, max_y, sx, sy, cols, rows) {
                grid[r][c] = '·';
            }
        }
    }
    if let Some((r, c)) = cell(pts[0].0, pts[0].1, min_x, max_y, sx, sy, cols, rows) {
        grid[r][c] = 'A';
    }
    let last = pts[pts.len() - 1];
    if let Some((r, c)) = cell(last.0, last.1, min_x, max_y, sx, sy, cols, rows) {
        grid[r][c] = 'B';
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

#[allow(clippy::too_many_arguments)]
fn cell(
    x: f64,
    y: f64,
    min_x: f64,
    max_y: f64,
    sx: f64,
    sy: f64,
    cols: usize,
    rows: usize,
) -> Option<(usize, usize)> {
    let c = ((x - min_x) / sx).round() as isize;
    let r = ((max_y - y) / sy).round() as isize;
    if c >= 0 && (c as usize) < cols && r >= 0 && (r as usize) < rows {
        Some((r as usize, c as usize))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["case", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["long-case".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("case"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-case"));
    }

    #[test]
    fn opt_formatting() {
        assert_eq!(opt(Some(1.2345), 2), "1.23");
        assert_eq!(opt(None, 2), "-");
    }

    #[test]
    fn ascii_map_marks_route_and_zones() {
        use alidrone_geo::{Distance, GeoPoint, NoFlyZone, ZoneSet};
        let a = GeoPoint::new(40.0, -88.0).unwrap();
        let b = a.destination(90.0, Distance::from_meters(1_000.0));
        let zones: ZoneSet = std::iter::once(NoFlyZone::new(
            a.destination(90.0, Distance::from_meters(500.0))
                .destination(0.0, Distance::from_meters(200.0)),
            Distance::from_meters(120.0),
        ))
        .collect();
        let map = ascii_map(&[a, b], &zones, 60, 16);
        assert!(map.contains('A'));
        assert!(map.contains('B'));
        assert!(map.contains('·'));
        assert!(map.contains('#'));
        assert_eq!(map.lines().count(), 16);
        assert!(map.lines().all(|l| l.chars().count() == 60));
    }

    #[test]
    fn ascii_map_degenerate_inputs() {
        use alidrone_geo::ZoneSet;
        assert_eq!(ascii_map(&[], &ZoneSet::new(), 40, 10), "");
        let a = alidrone_geo::GeoPoint::new(40.0, -88.0).unwrap();
        assert_eq!(ascii_map(&[a], &ZoneSet::new(), 1, 1), "");
    }

    #[test]
    fn render_metrics_shows_nonzero_counters_and_histograms() {
        use alidrone_geo::Duration;
        let obs = alidrone_obs::Obs::noop();
        obs.counter("tee.signatures").add(3);
        obs.counter("untouched"); // zero: must not appear
        obs.histogram("server.latency.submit_poa")
            .record(Duration::from_millis(2.0));
        let text = render_metrics(&obs.snapshot());
        assert!(text.contains("tee.signatures"));
        assert!(text.contains('3'));
        assert!(!text.contains("untouched"));
        assert!(text.contains("server.latency.submit_poa"));
        assert!(text.contains("p95_ms"));
    }

    #[test]
    fn render_metrics_empty_snapshot_is_empty() {
        assert_eq!(
            render_metrics(&alidrone_obs::MetricsSnapshot::default()),
            ""
        );
    }

    #[test]
    fn trace_tree_nests_and_totals() {
        use alidrone_geo::Timestamp;
        use alidrone_obs::{SpanContext, SpanRecord};
        let span = |name, span_id, parent_id, start: f64, end: f64| SpanRecord {
            name,
            context: SpanContext {
                trace_id: 0xABC,
                span_id,
                parent_id,
            },
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        };
        let spans = vec![
            span("tee.sign", 3, Some(2), 1.0, 1.2),
            span("flight", 1, None, 0.0, 10.0),
            span("drone.sample", 2, Some(1), 1.0, 1.5),
        ];
        let tree = render_trace_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "trace 00000000000000000000000000000abc (3 spans)");
        assert!(lines[1].contains("flight"), "{tree}");
        assert!(lines[2].contains("drone.sample"), "{tree}");
        assert!(lines[3].contains("tee.sign"), "{tree}");
        // Indentation deepens down the chain.
        let indent = |l: &str| l.find('─').unwrap();
        assert!(indent(lines[2]) > indent(lines[1]), "{tree}");
        assert!(indent(lines[3]) > indent(lines[2]), "{tree}");
        // flight: total 10 s, self 10 - 0.5 = 9.5 s.
        assert!(lines[1].contains("total 10000.000 ms"), "{tree}");
        assert!(lines[1].contains("self 9500.000 ms"), "{tree}");
        // drone.sample: total 0.5 s, self 0.5 - 0.2 = 0.3 s.
        assert!(lines[2].contains("self 300.000 ms"), "{tree}");
    }

    #[test]
    fn trace_tree_promotes_orphans_and_splits_traces() {
        use alidrone_geo::Timestamp;
        use alidrone_obs::{SpanContext, SpanRecord};
        let span = |trace_id, span_id, parent_id| SpanRecord {
            name: "s",
            context: SpanContext {
                trace_id,
                span_id,
                parent_id,
            },
            start: Timestamp::from_secs(0.0),
            end: Timestamp::from_secs(1.0),
        };
        // Parent 99 never completed; span 2 must still render as a root.
        let tree = render_trace_tree(&[span(1, 2, Some(99)), span(7, 3, None)]);
        assert_eq!(tree.matches("trace ").count(), 2);
        assert_eq!(tree.matches("└─ s").count(), 2);
        assert_eq!(render_trace_tree(&[]), "");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[], 10), "");
    }
}
