//! Local cost-model calibration.
//!
//! The default [`CostModel`] is calibrated from the paper's Table II
//! (Raspberry Pi 3). This module derives an *independent* model from
//! timings measured on the current machine, so the experiment harness
//! can print a "this machine" column next to the paper one and so the
//! cost-model's internal ratios (sign₂₀₄₈/sign₁₀₂₄, sign vs switch) can
//! be validated against real silicon.

use std::time::Instant;

use alidrone_crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone_geo::Duration;
use alidrone_tee::CostModel;

/// Measured local costs.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalTimings {
    /// Mean local RSASSA-PKCS1-v1.5(SHA-1) time for the given key.
    pub sign: Duration,
    /// Key size measured.
    pub key_bits: usize,
    /// Iterations averaged over.
    pub iterations: u32,
}

/// Measures the local per-signature cost for `key` by averaging
/// `iterations` signatures of a GPS-sample-sized message.
pub fn measure_sign(key: &RsaPrivateKey, iterations: u32) -> LocalTimings {
    let iterations = iterations.max(1);
    let msg = [0x42u8; 24];
    // Warm up once (page in the code path).
    let _ = key.sign(&msg, HashAlg::Sha1);
    let start = Instant::now();
    for _ in 0..iterations {
        let _ = key.sign(&msg, HashAlg::Sha1);
    }
    let elapsed = start.elapsed().as_secs_f64() / iterations as f64;
    LocalTimings {
        sign: Duration::from_secs(elapsed),
        key_bits: key.bits(),
        iterations,
    }
}

/// Builds a cost model for *this machine* from a measured signing time:
/// the RSA costs scale from the measurement (cubically in key size), and
/// the non-crypto costs (world switch, driver read) keep the RPi3 model's
/// proportions relative to its 1024-bit signature — i.e. we assume this
/// machine is uniformly faster/slower, the same assumption the paper's
/// own single-platform calibration makes.
pub fn local_cost_model(timings: &LocalTimings) -> CostModel {
    let rpi = CostModel::raspberry_pi_3();
    // Normalise the measurement to an equivalent 1024-bit signing time.
    let scale_to_1024 = (1024.0 / timings.key_bits as f64).powi(3);
    let sign_1024 = timings.sign.secs() * scale_to_1024;
    let speed_ratio = sign_1024 / rpi.sign_1024.secs();
    CostModel {
        world_switch: Duration::from_secs(rpi.world_switch.secs() * speed_ratio),
        sign_1024: Duration::from_secs(sign_1024),
        sign_2048: Duration::from_secs(sign_1024 * (rpi.sign_2048.secs() / rpi.sign_1024.secs())),
        read_gps: Duration::from_secs(rpi.read_gps.secs() * speed_ratio),
        encrypt: Duration::from_secs(rpi.encrypt.secs() * speed_ratio),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::experiment_key;

    #[test]
    fn measurement_is_positive_and_finite() {
        let t = measure_sign(&experiment_key(), 3);
        assert!(t.sign.secs() > 0.0);
        assert!(t.sign.secs().is_finite());
        assert_eq!(t.key_bits, 512);
    }

    #[test]
    fn local_model_preserves_rpi_ratios() {
        let t = LocalTimings {
            sign: Duration::from_millis(2.0),
            key_bits: 1024,
            iterations: 10,
        };
        let m = local_cost_model(&t);
        let rpi = CostModel::raspberry_pi_3();
        assert!((m.sign_1024.millis() - 2.0).abs() < 1e-9);
        let local_ratio = m.sign_2048.secs() / m.sign_1024.secs();
        let rpi_ratio = rpi.sign_2048.secs() / rpi.sign_1024.secs();
        assert!((local_ratio - rpi_ratio).abs() < 1e-9);
        // Switch scaled by the same speed ratio.
        let speed = 2.0 / rpi.sign_1024.millis();
        assert!((m.world_switch.millis() - rpi.world_switch.millis() * speed).abs() < 1e-9);
    }

    #[test]
    fn small_key_measurement_scales_up_cubically() {
        let t = LocalTimings {
            sign: Duration::from_millis(1.0),
            key_bits: 512,
            iterations: 10,
        };
        let m = local_cost_model(&t);
        // 512 → 1024 bits: 8x cubic scaling.
        assert!((m.sign_1024.millis() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_iterations_clamped() {
        let t = measure_sign(&experiment_key(), 0);
        assert_eq!(t.iterations, 1);
    }
}
