//! The two field-study scenarios with the paper's published geometry.

use alidrone_geo::trajectory::{Trajectory, TrajectoryBuilder};
use alidrone_geo::{Distance, Duration, GeoPoint, NoFlyZone, Speed, ZoneSet};

/// A reproducible field-study scenario: a drive trajectory, the zone
/// layout, the receiver configuration, and any injected GPS dropouts.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name for reports.
    pub name: &'static str,
    /// The vehicle's path.
    pub trajectory: Trajectory,
    /// The no-fly zones in force.
    pub zones: ZoneSet,
    /// GPS receiver update rate (Hz).
    pub hw_rate_hz: f64,
    /// Hardware update indices that are lost (the §VI-A3 missed update).
    pub dropouts: Vec<u64>,
    /// Flight/drive duration to simulate.
    pub duration: Duration,
}

/// Geographic anchor for both scenarios (arbitrary; all geometry is
/// relative).
pub fn anchor() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).expect("valid anchor")
}

/// §VI-A2 — the airport scenario.
///
/// "We set an NFZ centered at an airport with a radius of 5 miles. The
/// GPS trace starts about 30 feet outside the boundary of the NFZ. The
/// vehicle drives away from the NFZ for about 3 miles in 12 minutes."
/// The receiver runs at 1 Hz (the paper's configured rate for this
/// study); the fixed baseline collects 649 samples, so the drive is
/// 648 s long.
pub fn airport() -> Scenario {
    let airport_center = anchor();
    let radius = Distance::from_miles(5.0);
    let zone = NoFlyZone::new(airport_center, radius);

    // Start 30 ft outside the boundary, drive straight away (east).
    let start = airport_center.destination(90.0, radius + Distance::from_feet(30.0));
    let drive_distance = Distance::from_miles(3.0);
    let duration = Duration::from_secs(648.0);
    let speed = Speed::from_mps(drive_distance.meters() / duration.secs());
    let end = start.destination(90.0, drive_distance);
    let trajectory = TrajectoryBuilder::start_at(start)
        .travel_to(end, speed)
        .build()
        .expect("airport trajectory");

    Scenario {
        name: "airport",
        trajectory,
        zones: std::iter::once(zone).collect(),
        hw_rate_hz: 1.0,
        dropouts: Vec::new(),
        duration,
    }
}

/// §VI-A3 — the residential scenario.
///
/// "We drive the vehicle through a local county for about one mile …
/// Every NFZ is represented by a circle centers at a house with a radius
/// of 20 feet. In total, 94 NFZs are identified in this area." The trace
/// spans ~160 s (Fig. 8's time axis) at 5 Hz, with distances to the
/// nearest NFZ of 50–100 ft in the sparse first stretch and 20–70 ft in
/// the dense second stretch, bottoming out at 21 ft; one GPS update is
/// lost while the vehicle is ~25 ft from an NFZ, which is what produces
/// adaptive sampling's single insufficient PoA.
pub fn residential() -> Scenario {
    let route_start = anchor().destination(180.0, Distance::from_miles(1.0));
    let route_len = Distance::from_miles(1.0);
    let duration = Duration::from_secs(160.0);
    let speed = Speed::from_mps(route_len.meters() / duration.secs()); // ≈ 10 m/s ≈ 22 mph
    let route_end = route_start.destination(90.0, route_len);
    let trajectory = TrajectoryBuilder::start_at(route_start)
        .travel_to(route_end, speed)
        .build()
        .expect("residential trajectory");

    // 94 houses along the street, alternating sides. The first ~40 % of
    // the street is sparse (setbacks giving 50–100 ft to the boundary),
    // the rest dense (20–70 ft). House radius 20 ft.
    let radius = Distance::from_feet(20.0);
    let n = 94usize;
    let spacing = route_len.meters() / n as f64;
    let mut zones = ZoneSet::new();
    for i in 0..n {
        let along = (i as f64 + 0.5) * spacing;
        let on_route = route_start.destination(90.0, Distance::from_meters(along));
        let side = if i % 2 == 0 { 0.0 } else { 180.0 }; // north / south
        let frac = along / route_len.meters();
        // Lateral distance from route to house *center* = boundary
        // distance + radius. A deterministic ripple varies the setbacks.
        let ripple = ((i as f64 * 2.399).sin() + 1.0) / 2.0; // in [0, 1]
        let boundary_ft = if frac < 0.4 {
            50.0 + 50.0 * ripple // sparse: 50–100 ft
        } else {
            26.0 + 44.0 * ripple // dense: 26–70 ft
        };
        let center_offset = Distance::from_feet(boundary_ft) + radius;
        let house = on_route.destination(side, center_offset);
        zones.push(NoFlyZone::new(house, radius));
    }
    // The paper's closest approach: one house at exactly 21 ft from the
    // route, two-thirds in.
    let closest_pos =
        route_start.destination(90.0, Distance::from_meters(0.66 * route_len.meters()));
    zones.push(NoFlyZone::new(
        closest_pos.destination(0.0, Distance::from_feet(21.0) + radius),
        radius,
    ));

    // Dropout: lose one 5 Hz update while ~25 ft from a zone. With the
    // geometry above the vehicle is ~25 ft from the nearest boundary a
    // little before the closest approach; locate that update index.
    let hw_rate_hz = 5.0;
    let dropout_idx = find_update_near_boundary(&trajectory, &zones, hw_rate_hz, 24.0, 27.0)
        .unwrap_or((0.6 * duration.secs() * hw_rate_hz) as u64);

    Scenario {
        name: "residential",
        trajectory,
        zones,
        hw_rate_hz,
        dropouts: vec![dropout_idx],
        duration,
    }
}

/// Finds the first hardware-update index (in the second half of the
/// drive) whose distance to the nearest zone boundary lies within
/// `[lo_ft, hi_ft]`.
fn find_update_near_boundary(
    trajectory: &Trajectory,
    zones: &ZoneSet,
    rate_hz: f64,
    lo_ft: f64,
    hi_ft: f64,
) -> Option<u64> {
    let total = trajectory.total_duration().secs();
    let steps = (total * rate_hz) as u64;
    for k in (steps / 2)..steps {
        let t = Duration::from_secs(k as f64 / rate_hz);
        let pos = trajectory.position_at(t);
        if let Some(d) = zones.nearest_boundary_distance(&pos) {
            let ft = d.feet();
            if ft >= lo_ft && ft <= hi_ft {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airport_matches_published_geometry() {
        let s = airport();
        assert_eq!(s.name, "airport");
        assert_eq!(s.zones.len(), 1);
        let zone = s.zones.iter().next().unwrap();
        assert!((zone.radius().miles() - 5.0).abs() < 1e-9);
        // Start 30 ft outside the boundary.
        let d0 = zone.boundary_distance(&s.trajectory.start_point());
        assert!((d0.feet() - 30.0).abs() < 1.0, "start at {} ft", d0.feet());
        // End ~3 miles farther out.
        let d1 = zone.boundary_distance(&s.trajectory.end_point());
        assert!((d1.miles() - 3.0).abs() < 0.05, "end at {} mi", d1.miles());
        assert_eq!(s.hw_rate_hz, 1.0);
        assert!(s.dropouts.is_empty());
    }

    #[test]
    fn residential_has_95_zones_of_20ft() {
        let s = residential();
        // 94 houses + the 21 ft closest-approach house.
        assert_eq!(s.zones.len(), 95);
        for z in s.zones.iter() {
            assert!((z.radius().feet() - 20.0).abs() < 1e-6);
        }
    }

    #[test]
    fn residential_distance_profile_matches_figure_8a() {
        let s = residential();
        let total = s.duration.secs();
        let mut min_ft = f64::INFINITY;
        let mut early: Vec<f64> = Vec::new();
        let mut late: Vec<f64> = Vec::new();
        let steps = (total * s.hw_rate_hz) as u64;
        for k in 0..=steps {
            let t = k as f64 / s.hw_rate_hz;
            let pos = s.trajectory.position_at(Duration::from_secs(t));
            let d = s.zones.nearest_boundary_distance(&pos).unwrap().feet();
            min_ft = min_ft.min(d);
            if t < 0.35 * total {
                early.push(d);
            } else if t > 0.45 * total {
                late.push(d);
            }
        }
        // Closest approach ≈ 21 ft (paper: "only 21 ft to the boundary").
        assert!((min_ft - 21.0).abs() < 2.0, "min {min_ft} ft");
        // Early sparse stretch mostly 50–100 ft.
        let early_mean = early.iter().sum::<f64>() / early.len() as f64;
        assert!(
            early_mean > 45.0 && early_mean < 105.0,
            "early mean {early_mean} ft"
        );
        // Dense stretch mostly 20–70 ft and clearly closer than early.
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            late_mean < early_mean,
            "late {late_mean} vs early {early_mean}"
        );
        assert!(
            late_mean > 15.0 && late_mean < 75.0,
            "late mean {late_mean} ft"
        );
    }

    #[test]
    fn residential_dropout_sits_near_25ft() {
        let s = residential();
        assert_eq!(s.dropouts.len(), 1);
        let k = s.dropouts[0];
        let pos = s
            .trajectory
            .position_at(Duration::from_secs(k as f64 / s.hw_rate_hz));
        let d = s.zones.nearest_boundary_distance(&pos).unwrap().feet();
        assert!(d > 20.0 && d < 30.0, "dropout at {d} ft");
    }

    #[test]
    fn residential_no_zone_on_the_route() {
        // The route itself must stay outside every zone, or the study
        // would be a violation rather than an alibi demonstration.
        let s = residential();
        let steps = (s.duration.secs() * s.hw_rate_hz) as u64;
        for k in 0..=steps {
            let pos = s
                .trajectory
                .position_at(Duration::from_secs(k as f64 / s.hw_rate_hz));
            assert!(
                !s.zones.any_contains(&pos),
                "route enters a zone at update {k}"
            );
        }
    }

    #[test]
    fn airport_route_stays_outside_zone() {
        let s = airport();
        for k in 0..=648u64 {
            let pos = s.trajectory.position_at(Duration::from_secs(k as f64));
            assert!(!s.zones.any_contains(&pos), "inside NFZ at t={k}s");
        }
    }
}
