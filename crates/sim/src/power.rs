//! CPU utilisation and power modelling (paper §VI-B, Table II).
//!
//! The paper measures CPU utilisation with `top` on a quad-core
//! Raspberry Pi 3 — so 100 % means all four cores and the sampler's
//! single-core ceiling shows up at 25 % — and derives power from the
//! Kaup et al. model (eq. 4):
//!
//! ```text
//! P_cpu(u) = 1.5778 W + 0.181 · u W ,   u ∈ [0, 1]
//! ```
//!
//! We reproduce the whole table from the TEE cost model: a fixed-rate
//! case is `rate × per-sample-cost` of busy time per second; a field
//! study is its measured sample count over its duration. A case whose
//! busy time exceeds one core per second is **infeasible** — the "-"
//! cells of Table II (2048-bit at 5 Hz and at the residential workload).

use alidrone_geo::Duration;
use alidrone_tee::CostModel;

/// Number of cores on the Raspberry Pi 3 (`top` normalises to all of
/// them).
pub const RPI3_CORES: f64 = 4.0;

/// Idle power of the Kaup et al. model, watts.
pub const KAUP_IDLE_W: f64 = 1.5778;

/// CPU coefficient of the Kaup et al. model, watts per unit utilisation.
pub const KAUP_CPU_W: f64 = 0.181;

/// The paper's measured memory footprint: 3.27 MB (0.3 % of 1 GB).
/// Memory is dominated by the resident OP-TEE client + Adapter code and
/// does not vary across the table's cases, so it is a calibration
/// constant here.
pub const MEMORY_MB: f64 = 3.27;

/// Power for a given all-core CPU utilisation `u ∈ [0, 1]` (eq. 4).
pub fn kaup_power_w(u: f64) -> f64 {
    KAUP_IDLE_W + KAUP_CPU_W * u.clamp(0.0, 1.0)
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Key size in bits (1024 or 2048 in the paper).
    pub key_bits: usize,
    /// Case label ("Fixed 2 Hz", "Airport", …).
    pub case: String,
    /// CPU utilisation as `top` reports it (percent of all four cores),
    /// or `None` when the case is infeasible.
    pub cpu_pct: Option<f64>,
    /// Power in watts from eq. 4, or `None` when infeasible.
    pub power_w: Option<f64>,
}

impl Table2Row {
    fn from_busy_per_second(key_bits: usize, case: String, busy_per_second: f64) -> Self {
        // The sampling loop runs on one core: beyond 1 s of busy time
        // per second the configured rate cannot be sustained.
        if busy_per_second > 1.0 {
            return Table2Row {
                key_bits,
                case,
                cpu_pct: None,
                power_w: None,
            };
        }
        let u = busy_per_second / RPI3_CORES;
        Table2Row {
            key_bits,
            case,
            cpu_pct: Some(u * 100.0),
            power_w: Some(kaup_power_w(u)),
        }
    }

    /// `true` when the configuration cannot sustain its sampling rate.
    pub fn is_infeasible(&self) -> bool {
        self.cpu_pct.is_none()
    }
}

/// Per-sample CPU cost: `GetGPSAuth` (2 world switches + driver read +
/// signature) plus the Adapter-side RSA encryption of the sample for the
/// auditor.
pub fn per_sample_cost(model: &CostModel, key_bits: usize) -> Duration {
    model.get_gps_auth_cost(key_bits) + model.encrypt
}

/// A fixed-rate row of Table II.
pub fn fixed_rate_row(model: &CostModel, key_bits: usize, rate_hz: f64) -> Table2Row {
    let busy = per_sample_cost(model, key_bits).secs() * rate_hz;
    Table2Row::from_busy_per_second(key_bits, format!("Fixed {rate_hz} Hz"), busy)
}

/// A field-study row of Table II, from the measured sample count,
/// duration, and *peak demanded sampling rate* of a scenario run.
///
/// Mean CPU load comes from the mean rate, but feasibility is governed by
/// the peak: when the adaptive sampler demands a burst rate whose
/// per-sample cost exceeds one core, the device cannot keep up and the
/// PoA loses sufficiency — the paper's "-" cell for the 2048-bit key in
/// the residential study, where adaptive sampling pushes to the full
/// 5 Hz near the zones.
pub fn scenario_row(
    model: &CostModel,
    key_bits: usize,
    case: &str,
    samples: usize,
    duration: Duration,
    peak_rate_hz: f64,
) -> Table2Row {
    let cost = per_sample_cost(model, key_bits).secs();
    if peak_rate_hz * cost > 1.0 {
        return Table2Row {
            key_bits,
            case: case.to_string(),
            cpu_pct: None,
            power_w: None,
        };
    }
    let rate = samples as f64 / duration.secs().max(1e-9);
    let busy = cost * rate;
    Table2Row::from_busy_per_second(key_bits, case.to_string(), busy)
}

/// The paper's Table II values for comparison printing:
/// `(key_bits, case, cpu_pct, power_w)`, `None` = "-".
pub fn paper_table2() -> Vec<(usize, &'static str, Option<f64>, Option<f64>)> {
    vec![
        (1024, "Fixed 2 Hz", Some(2.17), Some(1.5817)),
        (1024, "Fixed 3 Hz", Some(3.17), Some(1.5835)),
        (1024, "Fixed 5 Hz", Some(5.59), Some(1.5879)),
        (1024, "Airport", Some(0.024), Some(1.5778)),
        (1024, "Residential", Some(1.567), Some(1.5806)),
        (2048, "Fixed 2 Hz", Some(10.94), Some(1.5976)),
        (2048, "Fixed 3 Hz", Some(16.81), Some(1.6082)),
        (2048, "Fixed 5 Hz", None, None),
        (2048, "Airport", Some(0.122), Some(1.5780)),
        (2048, "Residential", None, None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alidrone_tee::CostModel;

    fn model() -> CostModel {
        CostModel::raspberry_pi_3()
    }

    #[test]
    fn kaup_model_endpoints() {
        assert!((kaup_power_w(0.0) - 1.5778).abs() < 1e-9);
        assert!((kaup_power_w(1.0) - 1.7588).abs() < 1e-9);
        // Clamped outside [0, 1].
        assert_eq!(kaup_power_w(-1.0), kaup_power_w(0.0));
        assert_eq!(kaup_power_w(2.0), kaup_power_w(1.0));
    }

    #[test]
    fn fixed_rate_rows_match_paper_within_tolerance() {
        // The cost model is calibrated against these very numbers, so
        // they must agree closely (< 15 % relative on CPU, < 2 mW on
        // power).
        let m = model();
        for (bits, rate, paper_cpu, paper_pw) in [
            (1024usize, 2.0, 2.17, 1.5817),
            (1024, 3.0, 3.17, 1.5835),
            (1024, 5.0, 5.59, 1.5879),
            (2048, 2.0, 10.94, 1.5976),
            (2048, 3.0, 16.81, 1.6082),
        ] {
            let row = fixed_rate_row(&m, bits, rate);
            let cpu = row.cpu_pct.expect("feasible");
            let rel = (cpu - paper_cpu).abs() / paper_cpu;
            assert!(
                rel < 0.15,
                "{bits}-bit {rate} Hz: {cpu:.2}% vs paper {paper_cpu}%"
            );
            let pw = row.power_w.expect("feasible");
            assert!(
                (pw - paper_pw).abs() < 0.005,
                "{bits}-bit {rate} Hz: {pw:.4} W vs paper {paper_pw} W"
            );
        }
    }

    #[test]
    fn infeasible_cells_match_paper() {
        let m = model();
        assert!(fixed_rate_row(&m, 2048, 5.0).is_infeasible());
        assert!(!fixed_rate_row(&m, 1024, 5.0).is_infeasible());
    }

    #[test]
    fn scenario_row_scales_with_sample_count() {
        let m = model();
        let sparse = scenario_row(&m, 1024, "x", 14, Duration::from_secs(648.0), 1.0);
        let dense = scenario_row(&m, 1024, "x", 648, Duration::from_secs(648.0), 1.0);
        assert!(sparse.cpu_pct.unwrap() < dense.cpu_pct.unwrap());
        // Airport-like adaptive: ~0.02 % of 4 cores.
        assert!(sparse.cpu_pct.unwrap() < 0.1);
    }

    #[test]
    fn residential_2048_becomes_infeasible_at_high_rates() {
        // ~4.7 samples/s sustained with 220 ms per sample exceeds a core.
        let m = model();
        // Even a modest mean rate is infeasible when the *peak* demanded
        // rate (5 Hz near the zones) exceeds the key's throughput.
        let row = scenario_row(
            &m,
            2048,
            "Residential",
            470,
            Duration::from_secs(160.0),
            5.0,
        );
        assert!(row.is_infeasible());
        // With a 1024-bit key the same peak is sustainable.
        let row = scenario_row(
            &m,
            1024,
            "Residential",
            470,
            Duration::from_secs(160.0),
            5.0,
        );
        assert!(!row.is_infeasible());
    }

    #[test]
    fn paper_table_has_ten_rows() {
        assert_eq!(paper_table2().len(), 10);
    }
}
