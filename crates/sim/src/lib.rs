//! Field-study scenarios, metrics, and the power model reproducing the
//! AliDrone ICDCS 2018 evaluation (§VI).
//!
//! The paper evaluates AliDrone with two synthetic-hardware-free assets:
//!
//! * **Field studies** (§VI-A) — recorded drive traces replayed into the
//!   GPS sampler: an *airport* scenario (one 5-mile NFZ, drive away
//!   ~3 miles) and a *residential* scenario (94 house NFZs of 20 ft
//!   radius along a ~1 mile route). [`scenarios`] regenerates both with
//!   the published geometry.
//! * **Laboratory benchmarks** (§VI-B, Table II) — CPU / power / memory
//!   for fixed 2/3/5 Hz sampling and the two field studies, at 1024- and
//!   2048-bit key sizes. [`power`] implements the Kaup et al. power
//!   model (eq. 4) over the TEE cost ledger.
//!
//! [`runner`] executes a scenario under any sampling strategy and
//! [`metrics`] post-processes flight records into the exact series the
//! paper's figures plot. One binary per figure/table regenerates it:
//! `exp_fig6`, `exp_fig8`, `exp_table2` (plus `exp_all`).
//!
//! Beyond the paper, [`fleet`] scales the evaluation to a soak
//! harness: staged multi-thousand-drone campaigns over real loopback
//! TCP, judged live by scraped metric windows against declarative
//! SLOs, written out as a machine-checked `SOAK_report.json`
//! (`exp_soak`); with `--failover` the fleet runs against a
//! replicated primary whose listener is killed mid-campaign, a
//! follower is promoted, and clients ride through on multi-endpoint
//! transports — the kill-and-promote phase is machine-checked into
//! the report's `failover` section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod export;
pub mod fleet;
pub mod metrics;
pub mod net;
pub mod power;
pub mod report;
pub mod runner;
pub mod scenarios;
