//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Recovery policy** — the literal Algorithm 1 vs. our recovering
//!    variant, on the residential scenario with its GPS dropout.
//! 2. **Sufficiency criterion** — the paper's boundary-distance shortcut
//!    vs. exact ellipse intersection, swept over zone lateral offsets.
//! 3. **Signing strategy** (§VII-A1) — per-sample RSA vs. batch vs.
//!    HMAC, as modelled per-flight CPU cost on the RPi3 model.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_ablation`.

use alidrone_core::SamplingStrategy;
use alidrone_geo::sufficiency::{pair_is_sufficient, pair_is_sufficient_exact};
use alidrone_geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp, FAA_MAX_SPEED};
use alidrone_sim::report::render_table;
use alidrone_sim::runner::{experiment_key, run_scenario};
use alidrone_sim::scenarios::residential;
use alidrone_tee::CostModel;

fn main() {
    recovery_ablation();
    criterion_ablation();
    signing_ablation();
}

/// Ablation 1: strict Algorithm 1 vs. recovery after the dropout.
fn recovery_ablation() {
    println!("== Ablation 1: adaptive-sampling recovery policy ==");
    let scenario = residential();
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("Algorithm 1 (literal)", SamplingStrategy::AdaptiveStrict),
        ("with recovery (ours)", SamplingStrategy::Adaptive),
    ] {
        let run = run_scenario(&scenario, strategy, experiment_key(), CostModel::free())
            .expect("scenario run");
        // Size of the largest time gap between recorded samples: the
        // literal algorithm stalls after the dropout, producing a
        // monster gap.
        let alibi = run.record.poa.alibi();
        let max_gap = alibi
            .windows(2)
            .map(|w| w[1].time().secs() - w[0].time().secs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            name.to_string(),
            run.sample_count().to_string(),
            run.insufficient_pairs.to_string(),
            format!("{max_gap:.1} s"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["policy", "samples", "insufficient pairs", "largest gap"],
            &rows
        )
    );
    println!(
        "the literal algorithm never samples again once eq. 2 has failed;\n\
         the dropout near the zones therefore truncates its PoA — evidence\n\
         the prototype must have recovered, as our default variant does.\n"
    );
}

/// Ablation 2: paper criterion vs. exact ellipse test over a lateral
/// sweep of zone offsets (fixed pair geometry).
fn criterion_ablation() {
    println!("== Ablation 2: sufficiency criterion conservatism ==");
    let origin = GeoPoint::new(40.1164, -88.2434).expect("valid");
    let s1 = GpsSample::new(origin, Timestamp::from_secs(0.0));
    let s2 = GpsSample::new(
        origin.destination(90.0, Distance::from_meters(60.0)),
        Timestamp::from_secs(2.0), // budget ≈ 89.4 m
    );
    let mut paper_accepts = 0usize;
    let mut exact_accepts = 0usize;
    let mut disagreements = 0usize;
    let offsets: Vec<f64> = (0..200).map(|i| 20.0 + i as f64 * 0.5).collect();
    for &off in &offsets {
        let zone = NoFlyZone::new(
            origin
                .destination(90.0, Distance::from_meters(30.0))
                .destination(0.0, Distance::from_meters(off)),
            Distance::from_meters(15.0),
        );
        let paper = pair_is_sufficient(&s1, &s2, &zone, FAA_MAX_SPEED);
        let exact = pair_is_sufficient_exact(&s1, &s2, &zone, FAA_MAX_SPEED);
        paper_accepts += usize::from(paper);
        exact_accepts += usize::from(exact);
        if paper != exact {
            disagreements += 1;
        }
        assert!(!paper || exact, "paper criterion must be sound");
    }
    println!(
        "{}",
        render_table(
            &["criterion", "accepted (of 200 offsets)"],
            &[
                vec![
                    "paper (boundary distance)".into(),
                    paper_accepts.to_string()
                ],
                vec!["exact (ellipse ∩ disk)".into(), exact_accepts.to_string()],
            ]
        )
    );
    println!(
        "exact accepts {disagreements} offset(s) the paper criterion rejects — the price of\n\
         the O(1) shortcut; it is never unsound (asserted during the sweep).\n"
    );
}

/// Ablation 3: per-flight authentication cost by signing strategy,
/// modelled on the RPi3 for the residential flight's sample count.
fn signing_ablation() {
    println!("== Ablation 3: signing strategy cost (§VII-A1) ==");
    let scenario = residential();
    let run = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::free(),
    )
    .expect("scenario run");
    let n = run.sample_count() as f64;
    let model = CostModel::raspberry_pi_3();
    // HMAC-SHA256 of a 24-byte message on the RPi3 class hardware is on
    // the order of 5 µs — four orders below RSA; the world switches and
    // the driver read still apply.
    let hmac_cost = 5.0e-6;
    let mut rows = Vec::new();
    for bits in [1024usize, 2048] {
        let per_sample = model.get_gps_auth_cost(bits).secs();
        let individual = n * per_sample;
        let batch = n * (model.world_switch.secs() * 2.0 + model.read_gps.secs())
            + model.sign_cost(bits).secs();
        let symmetric = n * (model.world_switch.secs() * 2.0 + model.read_gps.secs() + hmac_cost);
        rows.push(vec![
            format!("{bits}-bit RSA per sample"),
            format!("{individual:.2} s"),
        ]);
        rows.push(vec![
            format!("{bits}-bit RSA, batch (§VII-A1b)"),
            format!("{batch:.2} s"),
        ]);
        if bits == 1024 {
            rows.push(vec![
                "HMAC per sample (§VII-A1a)".to_string(),
                format!("{symmetric:.2} s"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                &format!("CPU for the residential flight ({} samples)", n as usize),
            ],
            &rows
        )
    );
    println!(
        "batching amortises the signature; HMAC removes it — but gives up\n\
         third-party non-repudiation, which is why the paper keeps RSA by default."
    );
}
