//! Fleet soak experiment: thousands of seeded drone flights against
//! the real TCP auditor, judged by windowed SLOs, reported as a
//! machine-checkable `SOAK_report.json`.
//!
//! Runs the staged campaign from [`alidrone_sim::fleet`]: ramp →
//! steady → swarm burst → chaos-degraded (request corruption +
//! GPS-dropout cohort) → recovery, with a sampler thread scraping the
//! live `/metrics` endpoint into a windowed time-series the SLO engine
//! evaluates as the load runs. The written report is re-parsed from
//! disk and machine-checked ([`fleet::check_report`]), so the file CI
//! archives is the file that was validated.
//!
//! Usage:
//!
//! ```text
//! cargo run -p alidrone-sim --release --bin exp_soak             # 2000 drones
//! cargo run -p alidrone-sim --release --bin exp_soak -- --smoke  # ~200 drones, runs twice,
//!                                                                # asserts determinism
//! ```
//!
//! Flags: `--smoke`, `--failover` (replicated primary + two
//! followers; a kill-and-promote phase runs after the load phases and
//! its ledger lands in the report's `failover` section), `--tamper`
//! (transparency phase: every drone fetches the signed tree head plus
//! inclusion/consistency proofs for its own verdicts and verifies them
//! offline; ledger lands in the report's `transparency` section),
//! `--drones N`, `--seed N`, `--out PATH` (default
//! `target/SOAK_report.json`).

use std::time::Instant;

use alidrone_obs::Json;
use alidrone_sim::fleet::{
    self, check_report, determinism_signature, run_fleet, soak_report_json, FleetConfig,
};

fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next();
        }
        if let Some(rest) = arg.strip_prefix(&format!("{name}=")) {
            return Some(rest.to_string());
        }
    }
    None
}

fn summarise(outcome: &fleet::SoakOutcome, elapsed_secs: f64) {
    println!(
        "  {} drones, {} ops, {} client-visible errors, {:.1}s wall",
        outcome.drones, outcome.total_ops, outcome.client_errors, elapsed_secs
    );
    println!(
        "  series: {} windows ({} evicted), {} counters reconciled",
        outcome.ring.len(),
        outcome.ring.evicted_windows(),
        outcome.reconciliation.len()
    );
    println!(
        "  labels: {}/{} admitted, {} interns overflowed to `other`",
        outcome.labels_admitted, outcome.label_cap, outcome.labels_dropped
    );
    for p in &outcome.phases {
        let verdicts: Vec<String> = p
            .verdicts
            .iter()
            .map(|v| format!("{}={}", v.name, if v.healthy { "ok" } else { "BREACH" }))
            .collect();
        println!(
            "  phase {:<9} ops={:<6} errors={:<5} {} [{}]",
            p.name,
            p.ops,
            p.errors_delta,
            if p.breached { "BREACHED" } else { "healthy " },
            verdicts.join(", ")
        );
    }
    for e in &outcome.slo_events {
        println!(
            "  slo event: {} {} (value {:.4} vs {:.4})",
            e.slo,
            e.kind.label(),
            e.value,
            e.threshold
        );
    }
}

fn run_once(cfg: &FleetConfig) -> (fleet::SoakOutcome, f64) {
    let started = Instant::now();
    let outcome = run_fleet(cfg);
    (outcome, started.elapsed().as_secs_f64())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let failover = std::env::args().any(|a| a == "--failover");
    let tamper = std::env::args().any(|a| a == "--tamper");
    let seed: u64 = flag_value("--seed").map_or(42, |v| v.parse().expect("--seed takes a u64"));
    let drones: usize =
        flag_value("--drones").map_or(2000, |v| v.parse().expect("--drones takes a count"));
    let out = flag_value("--out").unwrap_or_else(|| "target/SOAK_report.json".into());

    let mut cfg = if smoke {
        FleetConfig::smoke(seed)
    } else {
        FleetConfig::soak(seed, drones)
    };
    cfg.failover = failover;
    cfg.tamper = tamper;
    println!(
        "== exp_soak: {} drones, seed {seed}, {} phases{}{} ==",
        cfg.drones,
        cfg.phases.len(),
        if tamper { " + audit transparency" } else { "" },
        if failover {
            " + kill-and-promote failover"
        } else {
            ""
        }
    );

    let (outcome, elapsed) = run_once(&cfg);
    summarise(&outcome, elapsed);

    // Hard gates: breach expectations met (degraded phase flagged,
    // healthy phases clean) and exact accounting, straight from the
    // outcome before anything touches disk.
    for p in &outcome.phases {
        assert!(!p.verdicts.is_empty(), "phase {}: no SLO verdicts", p.name);
        assert_eq!(
            p.expect_breach, p.breached,
            "phase {}: expected breach={}, observed breach={}",
            p.name, p.expect_breach, p.breached
        );
        assert_eq!(
            p.ops, p.requests_delta,
            "phase {}: op ledger disagrees with server request counter",
            p.name
        );
    }
    assert!(
        outcome.reconciliation.iter().all(|r| r.ok()),
        "windowed series failed final-counter reconciliation"
    );
    assert!(
        outcome.scrape_matches_registry,
        "parsed scrape disagreed with the server registry"
    );
    if failover {
        let fo = outcome
            .failover
            .as_ref()
            .expect("--failover run must produce a failover ledger");
        println!(
            "  failover: epoch {} -> {}, promoted {}, {} records replayed, \
             {} endpoint rotations",
            fo.epoch_before,
            fo.epoch_after,
            fo.promoted_follower,
            fo.records_replayed,
            fo.endpoint_rotations
        );
        assert_eq!(fo.epoch_after, fo.epoch_before + 1, "epoch must bump once");
        assert_eq!(fo.failovers, 1, "exactly one failover must be recorded");
        assert!(
            fo.endpoint_rotations >= 1,
            "no client rotated off the dead primary"
        );
    }
    if tamper {
        let tr = outcome
            .transparency
            .as_ref()
            .expect("--tamper run must produce a transparency ledger");
        println!(
            "  transparency: audit tree {} -> {}, {} proofs checked offline, {} failures",
            tr.tree_size_before, tr.tree_size_after, tr.proof_checks, tr.proof_failures
        );
        assert_eq!(
            tr.proof_failures, 0,
            "offline audit proof verification failed"
        );
        assert!(tr.proof_checks > 0, "no audit proofs were ever checked");
        assert!(
            tr.tree_size_after > tr.tree_size_before,
            "audit tree never advanced during the transparency phase"
        );
    }

    // The smoke mode doubles as the determinism gate: a second run
    // with the same seed must reproduce every verdict and ledger.
    if smoke {
        println!("-- second run (determinism check) --");
        let (second, elapsed2) = run_once(&cfg);
        summarise(&second, elapsed2);
        assert_eq!(
            determinism_signature(&outcome),
            determinism_signature(&second),
            "same seed produced different verdicts or ledgers"
        );
        println!("   determinism: two runs, identical signatures");
    }

    let report = soak_report_json(&outcome);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&out, report.to_pretty()).expect("write soak report");

    // Validate the bytes on disk, not the in-memory object: what CI
    // archives is what was checked.
    let written = std::fs::read_to_string(&out).expect("re-read soak report");
    let parsed = Json::parse(&written).expect("soak report parses");
    check_report(&parsed).unwrap_or_else(|e| panic!("soak report failed machine-check: {e}"));

    println!("   report: {out} (schema v{})", fleet::SOAK_SCHEMA_VERSION);
    println!("   all SLO verdicts matched expectations; series reconciled exactly");
}
