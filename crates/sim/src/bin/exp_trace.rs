//! End-to-end PoA trace of the airport scenario: one adaptive flight on
//! simulated time, its PoA submitted over the wire, everything stitched
//! into a single trace (`flight` → `drone.sample` → `tee.sign`, then
//! `wire.submit_poa` → `server.submit_poa` → `auditor.verify` parented
//! under the same flight span).
//!
//! Dumps the trace as Chrome trace-event JSON (load it at
//! <https://ui.perfetto.dev> or `chrome://tracing`) and the metrics
//! registry as a Prometheus text exposition, then prints the span tree.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_trace`.

use alidrone_core::wire::server::AuditorServer;
use alidrone_core::wire::transport::{AuditorClient, InProcess};
use alidrone_core::{Auditor, AuditorConfig, SamplingStrategy};
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::Timestamp;
use alidrone_obs::export::{chrome_trace, prometheus_text};
use alidrone_sim::export::{default_export_dir, write_json, write_text};
use alidrone_sim::report::render_trace_tree;
use alidrone_sim::runner::{experiment_key, run_scenario};
use alidrone_sim::scenarios::airport;
use alidrone_tee::CostModel;

fn main() {
    let scenario = airport();
    println!(
        "== exp_trace: one stitched PoA trace ({}) ==",
        scenario.name
    );

    let run = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )
    .expect("adaptive run");
    println!(
        "flight: {} authenticated samples over {:.0} s",
        run.sample_count(),
        scenario.duration.secs()
    );

    // The server shares the run's obs handle and its flight recorder, so
    // wire/server/auditor spans land in the same trace store as the
    // flight's — and the client parents its wire spans under the
    // completed flight span, stitching the submission into the flight's
    // trace.
    let obs = run.obs.clone();
    let mut rng = XorShift64::seed_from_u64(0x7ACE);
    let auditor_key = RsaPrivateKey::generate(512, &mut rng);
    let operator_key = RsaPrivateKey::generate(512, &mut rng);
    let auditor = Auditor::with_obs(AuditorConfig::default(), auditor_key, &obs);
    let server = std::sync::Arc::new(
        AuditorServer::builder(auditor)
            .obs(&obs)
            .flight_recorder(run.recorder.clone())
            .build(),
    );
    let mut client = AuditorClient::with_obs(InProcess::shared(server.clone(), &obs), &obs);
    client.set_trace_parent(run.flight_span);

    let now = Timestamp::from_secs(scenario.duration.secs() + 60.0);
    let drone = client
        .register_drone(
            operator_key.public_key().clone(),
            run.tee.tee_public_key(),
            now,
        )
        .expect("register drone");
    for zone in scenario.zones.iter() {
        client.register_zone(*zone, now).expect("register zone");
    }
    let verdict = client
        .submit_poa(
            drone,
            (run.record.window_start, run.record.window_end),
            &run.record.poa,
            now,
        )
        .expect("submit poa");
    println!("submission verdict: {verdict}");

    // One garbage frame: the server dumps the flight recorder, showing
    // the crash-forensics path.
    let _ = server.handle(&[0xDE, 0xAD, 0xBE, 0xEF], now);
    let dump = server
        .last_crash_dump()
        .expect("malformed frame must dump the recorder");
    println!(
        "crash dump after garbage frame: {} spans, {} events",
        dump.spans.len(),
        dump.events.len()
    );

    let spans = run.recorder.spans();
    let events = run.recorder.events();
    println!("\n{}", render_trace_tree(&spans));

    let dir = default_export_dir();
    match write_json(&dir, "trace_airport", &chrome_trace(&spans, &events)) {
        Ok(path) => println!("wrote {} (load in https://ui.perfetto.dev)", path.display()),
        Err(e) => eprintln!("trace export failed: {e}"),
    }
    match write_text(
        &dir,
        "metrics_airport.prom",
        &prometheus_text(&obs.snapshot()),
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("prometheus export failed: {e}"),
    }
}
