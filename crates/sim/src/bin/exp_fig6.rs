//! Regenerates **Fig. 6** (paper §VI-A2): cumulative GPS samples vs.
//! distance to the no-fly zone in the airport scenario, for 1 Hz
//! fixed-rate sampling and adaptive sampling.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_fig6`.

use alidrone_core::SamplingStrategy;
use alidrone_sim::metrics::fig6_series;
use alidrone_sim::report::{render_table, sparkline};
use alidrone_sim::runner::{experiment_key, run_scenario};
use alidrone_sim::scenarios::airport;
use alidrone_tee::CostModel;

fn main() {
    let scenario = airport();
    println!("== Fig. 6: airport scenario ==");
    println!(
        "NFZ radius 5 mi; start 30 ft outside the boundary; drive ~3 mi away in {:.0} s; GPS {} Hz\n",
        scenario.duration.secs(),
        scenario.hw_rate_hz
    );

    let fixed = run_scenario(
        &scenario,
        SamplingStrategy::FixedRate(1.0),
        experiment_key(),
        CostModel::free(),
    )
    .expect("fixed-rate run");
    let adaptive = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::free(),
    )
    .expect("adaptive run");

    let rows = vec![
        vec![
            "1 Hz fix rate".to_string(),
            fixed.sample_count().to_string(),
            "649".to_string(),
            fixed.insufficient_pairs.to_string(),
        ],
        vec![
            "adaptive".to_string(),
            adaptive.sample_count().to_string(),
            "14".to_string(),
            adaptive.insufficient_pairs.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "samples (ours)",
                "samples (paper)",
                "insufficient pairs"
            ],
            &rows
        )
    );
    println!(
        "sample-count reduction: ours {:.1}x, paper {:.1}x\n",
        fixed.sample_count() as f64 / adaptive.sample_count() as f64,
        649.0 / 14.0,
    );

    // The figure itself: cumulative samples (log y in the paper) over
    // distance to the zone, printed at decade distances.
    println!("cumulative samples at distance-to-NFZ checkpoints:");
    let checkpoints_ft = [30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 15_000.0];
    let mut rows = Vec::new();
    for strategy_run in [("1 Hz fix rate", &fixed), ("adaptive", &adaptive)] {
        let series = fig6_series(&strategy_run.1.record);
        let mut row = vec![strategy_run.0.to_string()];
        for cp in checkpoints_ft {
            let cum = series
                .iter()
                .take_while(|p| p.distance_ft <= cp)
                .last()
                .map(|p| p.cumulative_samples)
                .unwrap_or(0);
            row.push(cum.to_string());
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("strategy".to_string())
        .chain(checkpoints_ft.iter().map(|c| format!("{c:.0} ft")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));

    for (name, run) in [("fixed", &fixed), ("adaptive", &adaptive)] {
        let series = fig6_series(&run.record);
        let values: Vec<f64> = series.iter().map(|p| p.cumulative_samples as f64).collect();
        println!(
            "{name:>8} cumulative-samples shape: {}",
            sparkline(&values, 60)
        );
    }

    // Dump the raw series for external plotting.
    let dir = alidrone_sim::export::default_export_dir();
    for (name, run) in [("fig6_fixed_1hz", &fixed), ("fig6_adaptive", &adaptive)] {
        let export =
            alidrone_sim::export::Fig6Export::new(&run.record.strategy, &fig6_series(&run.record));
        match alidrone_sim::export::write_json(&dir, name, &export) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("export failed: {e}"),
        }
    }
}
