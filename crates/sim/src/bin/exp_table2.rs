//! Regenerates **Table II** (paper §VI-B): CPU utilisation, power, and
//! memory for fixed 2/3/5 Hz sampling and the two field studies, at
//! 1024- and 2048-bit key sizes.
//!
//! CPU time is accounted by the TEE cost model (calibrated to the
//! paper's Raspberry Pi 3); power comes from the Kaup et al. model
//! (eq. 4). The field-study rows use the sample counts actually produced
//! by the adaptive sampler on the regenerated scenarios.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_table2`.

use alidrone_core::SamplingStrategy;
use alidrone_sim::power::{fixed_rate_row, paper_table2, scenario_row, Table2Row, MEMORY_MB};
use alidrone_sim::report::{opt, render_table};
use alidrone_sim::runner::{experiment_key, run_scenario};
use alidrone_sim::scenarios::{airport, residential};
use alidrone_tee::CostModel;

fn main() {
    let model = CostModel::raspberry_pi_3();

    // Field-study sample counts come from real adaptive runs.
    let airport_scenario = airport();
    let airport_run = run_scenario(
        &airport_scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::free(),
    )
    .expect("airport run");
    let residential_scenario = residential();
    let residential_run = run_scenario(
        &residential_scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::free(),
    )
    .expect("residential run");

    // Peak demanded rates (instantaneous, 4 s window) govern feasibility.
    let peak = |run: &alidrone_sim::runner::ScenarioRun| {
        alidrone_sim::metrics::fig8b_series(&run.record, 4.0)
            .iter()
            .map(|p| p.value)
            .fold(0.0f64, f64::max)
    };
    let airport_peak = peak(&airport_run);
    let residential_peak = peak(&residential_run);

    println!("== Table II: CPU, power and memory benchmarks ==");
    println!(
        "airport adaptive samples: {} over {:.0} s; residential adaptive samples: {} over {:.0} s\n",
        airport_run.sample_count(),
        airport_scenario.duration.secs(),
        residential_run.sample_count(),
        residential_scenario.duration.secs()
    );

    let mut rows = Vec::new();
    let paper = paper_table2();
    for key_bits in [1024usize, 2048] {
        let cases: Vec<Table2Row> = vec![
            fixed_rate_row(&model, key_bits, 2.0),
            fixed_rate_row(&model, key_bits, 3.0),
            fixed_rate_row(&model, key_bits, 5.0),
            scenario_row(
                &model,
                key_bits,
                "Airport",
                airport_run.sample_count(),
                airport_scenario.duration,
                airport_peak,
            ),
            scenario_row(
                &model,
                key_bits,
                "Residential",
                residential_run.sample_count(),
                residential_scenario.duration,
                residential_peak,
            ),
        ];
        for row in cases {
            let paper_row = paper
                .iter()
                .find(|(b, c, _, _)| *b == row.key_bits && *c == row.case)
                .map(|(_, _, cpu, pw)| (*cpu, *pw))
                .unwrap_or((None, None));
            rows.push(vec![
                row.key_bits.to_string(),
                row.case.clone(),
                opt(row.cpu_pct, 3),
                opt(paper_row.0, 3),
                opt(row.power_w, 4),
                opt(paper_row.1, 4),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "key (bits)",
                "case",
                "CPU % (ours)",
                "CPU % (paper)",
                "power W (ours)",
                "power W (paper)",
            ],
            &rows
        )
    );
    // Independent check: measure this machine's signing speed and show
    // what the same workloads would cost here.
    let timings = alidrone_sim::calibrate::measure_sign(&experiment_key(), 5);
    let local = alidrone_sim::calibrate::local_cost_model(&timings);
    println!(
        "local calibration: 512-bit sign {:.3} ms on this machine → modelled 1024-bit {:.2} ms, 2048-bit {:.2} ms",
        timings.sign.millis(),
        local.sign_1024.millis(),
        local.sign_2048.millis()
    );
    println!(
        "on this machine a 1024-bit key at 5 Hz would cost {:.3} s CPU per second (RPi3: {:.3})\n",
        local.get_gps_auth_cost(1024).secs() * 5.0,
        model.get_gps_auth_cost(1024).secs() * 5.0
    );

    println!("memory: {MEMORY_MB} MB (0.3 % of 1 GB) — calibration constant from the paper;");
    println!("\"-\" cells: busy time exceeds one core, the rate cannot be sustained");
    println!("(ours and the paper agree on which cells are infeasible).");
}
