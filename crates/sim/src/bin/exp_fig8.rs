//! Regenerates **Fig. 8** (paper §VI-A3): the residential scenario's
//! three panels — (a) distance to the nearest NFZ, (b) instantaneous
//! sampling rate, (c) cumulative insufficient-PoA count — for fixed
//! 2/3/5 Hz sampling and adaptive sampling.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_fig8`.

use alidrone_core::SamplingStrategy;
use alidrone_sim::metrics::{fig8a_series, fig8b_series, fig8c_series};
use alidrone_sim::report::{render_table, sparkline};
use alidrone_sim::runner::{experiment_key, run_scenario, ScenarioRun};
use alidrone_sim::scenarios::residential;
use alidrone_tee::CostModel;

fn main() {
    let scenario = residential();
    println!("== Fig. 8: residential scenario ==");
    println!(
        "{} NFZs of 20 ft radius along a ~1 mi route over {:.0} s; GPS {} Hz with {} dropout(s)\n",
        scenario.zones.len(),
        scenario.duration.secs(),
        scenario.hw_rate_hz,
        scenario.dropouts.len()
    );

    let strategies: Vec<(&str, SamplingStrategy, Option<usize>)> = vec![
        ("2 Hz fix rate", SamplingStrategy::FixedRate(2.0), Some(39)),
        ("3 Hz fix rate", SamplingStrategy::FixedRate(3.0), Some(9)),
        ("5 Hz fix rate", SamplingStrategy::FixedRate(5.0), None),
        ("adaptive", SamplingStrategy::Adaptive, Some(1)),
    ];

    let runs: Vec<(&str, Option<usize>, ScenarioRun)> = strategies
        .into_iter()
        .map(|(name, s, paper)| {
            let run = run_scenario(&scenario, s, experiment_key(), CostModel::free())
                .expect("scenario run");
            (name, paper, run)
        })
        .collect();

    // Panel (a): distance to nearest NFZ (same trace for all runs).
    let a = fig8a_series(&runs[0].2.record);
    let dist: Vec<f64> = a.iter().map(|p| p.value).collect();
    let min = dist.iter().copied().fold(f64::INFINITY, f64::min);
    println!("(a) distance to nearest NFZ over time (ft):");
    println!("    shape: {}", sparkline(&dist, 60));
    println!(
        "    min {min:.0} ft (paper: 21 ft); early stretch 50-100 ft, dense stretch 20-70 ft\n"
    );

    // Panel (b): instantaneous sampling rate (4 s sliding window).
    println!("(b) instantaneous sampling rate (Hz), 4 s window:");
    for (name, _, run) in &runs {
        let b = fig8b_series(&run.record, 4.0);
        let rates: Vec<f64> = b.iter().map(|p| p.value).collect();
        let mean = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
        let max = rates.iter().copied().fold(0.0, f64::max);
        println!(
            "    {name:>14}: {}  mean {mean:.2} Hz, max {max:.1} Hz",
            sparkline(&rates, 50)
        );
    }
    println!();

    // Panel (c): cumulative insufficient PoA count.
    println!("(c) total number of insufficient PoA pairs:");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(name, paper, run)| {
            vec![
                name.to_string(),
                run.sample_count().to_string(),
                run.insufficient_pairs.to_string(),
                paper.map(|p| p.to_string()).unwrap_or_else(|| "~1".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "samples",
                "insufficient (ours)",
                "insufficient (paper)"
            ],
            &rows
        )
    );
    for (name, _, run) in &runs {
        let c = fig8c_series(&run.record, &scenario.zones);
        let values: Vec<f64> = c.iter().map(|p| p.value).collect();
        println!(
            "    {name:>14} cumulative shape: {}",
            sparkline(&values, 50)
        );
    }

    // Dump every panel's raw series for external plotting.
    let dir = alidrone_sim::export::default_export_dir();
    let mut exports: Vec<(String, alidrone_sim::export::TimelineExport)> = vec![(
        "fig8a_distance".to_string(),
        alidrone_sim::export::TimelineExport::new("distance_ft", &fig8a_series(&runs[0].2.record)),
    )];
    for (name, _, run) in &runs {
        let tag = name.replace(' ', "_");
        exports.push((
            format!("fig8b_rate_{tag}"),
            alidrone_sim::export::TimelineExport::new(name, &fig8b_series(&run.record, 4.0)),
        ));
        exports.push((
            format!("fig8c_insufficient_{tag}"),
            alidrone_sim::export::TimelineExport::new(
                name,
                &fig8c_series(&run.record, &scenario.zones),
            ),
        ));
    }
    for (name, export) in &exports {
        match alidrone_sim::export::write_json(&dir, name, export) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("export failed: {e}"),
        }
    }
}
