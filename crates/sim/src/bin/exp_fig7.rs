//! Regenerates **Fig. 7** (paper §VI-A3): the plan view of the
//! residential area with the driving route and the house no-fly zones.
//! The paper shows an anonymised satellite photo; this prints the
//! equivalent ASCII plan of the regenerated scenario.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_fig7`.

use alidrone_geo::Duration;
use alidrone_sim::report::ascii_map;
use alidrone_sim::scenarios::residential;

fn main() {
    let scenario = residential();
    println!("== Fig. 7: residential area map (A → B driving route) ==\n");
    // Sample the route at 2 s intervals for the polyline.
    let steps = (scenario.duration.secs() / 2.0) as u64;
    let route: Vec<_> = (0..=steps)
        .map(|k| {
            scenario
                .trajectory
                .position_at(Duration::from_secs(k as f64 * 2.0))
        })
        .collect();
    println!("{}", ascii_map(&route, &scenario.zones, 100, 24));
    println!(
        "\n{} house NFZs (#, centres o) of 20 ft radius along the ~1 mi route (·)",
        scenario.zones.len()
    );
}
