//! Networked-deployment smoke: the airport scenario's PoA submitted
//! over a real loopback TCP socket and compared, frame for frame,
//! against the same submission delivered in-process — then once more
//! through a deterministically lossy transport with client-side retry.
//!
//! Exercises the paper's Fig. 4 deployment shape (drone → network →
//! AliDrone Server) end to end: length-framed wire protocol, threaded
//! TCP server, per-call deadlines, idempotent-only retry.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_tcp`.
//! Pass `--overload` for the overload-protection smoke instead: a
//! burst at 4× worker capacity against a bounded admission queue,
//! asserting typed-errors-only shedding and counter reconciliation.
//!
//! Either mode accepts `--scrape[=ADDR]` (default `127.0.0.1:0`) to
//! mount a live introspection endpoint on the auditor server: while the
//! run is in flight, `curl http://ADDR/metrics` returns the live
//! Prometheus snapshot and `curl http://ADDR/dump` the JSON
//! flight-recorder view. With the flag set, the overload smoke also
//! scrapes itself once and asserts a known metric line — the
//! scrape-endpoint smoke CI runs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use alidrone_core::wire::server::AuditorServer;
use alidrone_core::wire::tcp::{TcpServer, TcpTransport};
use alidrone_core::wire::transport::{AuditorClient, RetryPolicy};
use alidrone_core::{Auditor, AuditorConfig, ProtocolError, SamplingStrategy};
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::{Distance, GeoPoint, NoFlyZone, Timestamp};
use alidrone_obs::Obs;
use alidrone_sim::net::{submit_run, WireMode, WireOptions};
use alidrone_sim::runner::{experiment_key, run_scenario};
use alidrone_sim::scenarios::airport;
use alidrone_tee::CostModel;

/// Overload smoke: 8 clients (4× the 2 workers) hammer a server whose
/// handlers are artificially slowed, with a 2-slot admission queue.
/// Every rejection must be a typed `Overloaded`/`Timeout`, and the
/// server's shed counters must reconcile with what clients observed.
fn overload_smoke(scrape: Option<SocketAddr>) {
    println!("== exp_tcp --overload: admission control under 4x load ==");
    let obs = Obs::noop();
    let auditor_key = RsaPrivateKey::generate(512, &mut XorShift64::seed_from_u64(0x7C9));
    let mut builder = AuditorServer::builder(Auditor::new(AuditorConfig::default(), auditor_key))
        .obs(&obs)
        .workers(2)
        .queue_cap(2)
        .read_timeout(Duration::from_millis(100))
        .handle_delay(|| Duration::from_millis(3));
    if let Some(addr) = scrape {
        builder = builder.scrape(addr);
    }
    let server = Arc::new(builder.build());
    if let Some(addr) = server.scrape_addr() {
        println!("scrape endpoint live: curl http://{addr}/metrics");
    }
    let tcp = TcpServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    let addr = tcp.local_addr();

    let tallies = Arc::new(Mutex::new([0u64; 3])); // ok / overloaded / timeout
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let tallies = Arc::clone(&tallies);
            thread::spawn(move || {
                for _ in 0..3 {
                    let mut client = AuditorClient::new(TcpTransport::new(addr))
                        .deadline(Duration::from_millis(500));
                    let zone = NoFlyZone::new(
                        GeoPoint::new(40.0, -88.0).expect("valid point"),
                        Distance::from_meters(50.0),
                    );
                    let slot = match client.register_zone(zone, Timestamp::from_secs(10.0)) {
                        Ok(_) => 0,
                        Err(ProtocolError::Overloaded { .. }) => 1,
                        Err(ProtocolError::Timeout) => 2,
                        Err(other) => panic!("untyped overload failure: {other}"),
                    };
                    tallies.lock().expect("tally lock")[slot] += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // Self-scrape while the campaign's counters are live: the CI
    // scrape-endpoint smoke (start server, fetch /metrics, assert a
    // known metric line).
    if let Some(scrape_addr) = server.scrape_addr() {
        let body = http_get(scrape_addr, "/metrics");
        assert!(
            body.contains("server_requests_total"),
            "scrape missing server_requests_total:\n{body}"
        );
        assert!(
            body.contains("server_stage_handle_bucket"),
            "scrape missing per-stage histograms:\n{body}"
        );
        let shown: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("server_requests_total") || l.starts_with("server_shed"))
            .collect();
        println!("live scrape of {scrape_addr}:");
        for line in shown {
            println!("  {line}");
        }
    }
    tcp.shutdown();

    let [ok, overloaded, timeout] = *tallies.lock().expect("tally lock");
    let snap = obs.snapshot();
    println!("clients:  {ok} ok, {overloaded} shed (queue), {timeout} shed (deadline)");
    for name in [
        "server.requests",
        "server.shed.queue_full",
        "server.shed.expired",
        "server.shed.ratelimited",
    ] {
        println!("  {:26} {}", name, snap.counter(name));
    }
    assert_eq!(ok + overloaded + timeout, 24, "every call must resolve");
    assert_eq!(
        snap.counter("server.shed.queue_full"),
        overloaded,
        "queue-full sheds must reconcile with client-observed rejections"
    );
    assert_eq!(
        snap.counter("server.shed.expired"),
        timeout,
        "expired sheds must reconcile with client-observed timeouts"
    );
    println!("\nexp_tcp --overload OK");
}

/// A minimal HTTP/1.0 GET, returning head + body as one string.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send scrape request");
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .expect("read scrape response");
    raw
}

/// `--scrape` / `--scrape=ADDR` → the address to mount the live
/// introspection endpoint on (bare flag picks an OS-assigned port).
fn scrape_arg() -> Option<SocketAddr> {
    for arg in std::env::args() {
        if arg == "--scrape" {
            return Some("127.0.0.1:0".parse().expect("loopback addr"));
        }
        if let Some(addr) = arg.strip_prefix("--scrape=") {
            return Some(addr.parse().unwrap_or_else(|e| {
                panic!("bad --scrape address {addr:?}: {e}");
            }));
        }
    }
    None
}

fn main() {
    let scrape = scrape_arg();
    if std::env::args().any(|a| a == "--overload") {
        overload_smoke(scrape);
        return;
    }
    let scenario = airport();
    println!("== exp_tcp: PoA over loopback TCP ({}) ==", scenario.name);

    let run = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )
    .expect("adaptive run");
    println!(
        "flight: {} authenticated samples over {:.0} s",
        run.sample_count(),
        scenario.duration.secs()
    );

    let mut rng = XorShift64::seed_from_u64(0x7C9);
    let auditor_key = RsaPrivateKey::generate(512, &mut rng);
    let operator_key = RsaPrivateKey::generate(512, &mut rng);

    // Same PoA, two transports, fresh auditor each (same key, so the
    // signed responses are comparable).
    let local = submit_run(
        &run,
        &scenario,
        WireMode::InProcess,
        auditor_key.clone(),
        &operator_key,
        WireOptions::default(),
    )
    .expect("in-process submission");
    let networked = submit_run(
        &run,
        &scenario,
        WireMode::Tcp,
        auditor_key.clone(),
        &operator_key,
        WireOptions {
            scrape,
            ..WireOptions::default()
        },
    )
    .expect("tcp submission");

    println!("in-process verdict: {}", local.verdict);
    println!("tcp        verdict: {}", networked.verdict);
    assert_eq!(local.verdict, networked.verdict, "verdicts must agree");
    assert_eq!(
        local.response_frames, networked.response_frames,
        "response frames must be byte-identical across transports"
    );
    println!(
        "byte parity: {} response frames identical across transports",
        local.response_frames.len()
    );

    // Lossy TCP with retry: every 3rd physical call is dropped; the
    // retry layer replays idempotent requests with seeded backoff, so
    // the outcome is the same — and reproducible.
    let lossy = WireOptions {
        drop_every: Some(3),
        retry: Some(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0x5EED,
        }),
        scrape: None,
    };
    let retried = submit_run(
        &run,
        &scenario,
        WireMode::Tcp,
        auditor_key,
        &operator_key,
        lossy,
    )
    .expect("lossy tcp submission with retry");
    assert_eq!(
        retried.verdict, local.verdict,
        "retry must not change the verdict"
    );
    println!("lossy tcp  verdict: {} (after retries)", retried.verdict);

    let snap = run.obs.snapshot();
    println!("\ncounters:");
    for name in [
        "server.requests",
        "server.connections",
        "transport.calls",
        "transport.retries",
        "transport.timeouts",
        "transport.faults.dropped",
    ] {
        println!("  {:26} {}", name, snap.counter(name));
    }
    println!("\nexp_tcp OK");
}
