//! Networked-deployment smoke: the airport scenario's PoA submitted
//! over a real loopback TCP socket and compared, frame for frame,
//! against the same submission delivered in-process — then once more
//! through a deterministically lossy transport with client-side retry.
//!
//! Exercises the paper's Fig. 4 deployment shape (drone → network →
//! AliDrone Server) end to end: length-framed wire protocol, threaded
//! TCP server, per-call deadlines, idempotent-only retry.
//!
//! Run with `cargo run -p alidrone-sim --release --bin exp_tcp`.

use std::time::Duration;

use alidrone_core::wire::transport::RetryPolicy;
use alidrone_core::SamplingStrategy;
use alidrone_crypto::rng::XorShift64;
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_sim::net::{submit_run, WireMode, WireOptions};
use alidrone_sim::runner::{experiment_key, run_scenario};
use alidrone_sim::scenarios::airport;
use alidrone_tee::CostModel;

fn main() {
    let scenario = airport();
    println!("== exp_tcp: PoA over loopback TCP ({}) ==", scenario.name);

    let run = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )
    .expect("adaptive run");
    println!(
        "flight: {} authenticated samples over {:.0} s",
        run.sample_count(),
        scenario.duration.secs()
    );

    let mut rng = XorShift64::seed_from_u64(0x7C9);
    let auditor_key = RsaPrivateKey::generate(512, &mut rng);
    let operator_key = RsaPrivateKey::generate(512, &mut rng);

    // Same PoA, two transports, fresh auditor each (same key, so the
    // signed responses are comparable).
    let local = submit_run(
        &run,
        &scenario,
        WireMode::InProcess,
        auditor_key.clone(),
        &operator_key,
        WireOptions::default(),
    )
    .expect("in-process submission");
    let networked = submit_run(
        &run,
        &scenario,
        WireMode::Tcp,
        auditor_key.clone(),
        &operator_key,
        WireOptions::default(),
    )
    .expect("tcp submission");

    println!("in-process verdict: {}", local.verdict);
    println!("tcp        verdict: {}", networked.verdict);
    assert_eq!(local.verdict, networked.verdict, "verdicts must agree");
    assert_eq!(
        local.response_frames, networked.response_frames,
        "response frames must be byte-identical across transports"
    );
    println!(
        "byte parity: {} response frames identical across transports",
        local.response_frames.len()
    );

    // Lossy TCP with retry: every 3rd physical call is dropped; the
    // retry layer replays idempotent requests with seeded backoff, so
    // the outcome is the same — and reproducible.
    let lossy = WireOptions {
        drop_every: Some(3),
        retry: Some(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0x5EED,
        }),
    };
    let retried = submit_run(
        &run,
        &scenario,
        WireMode::Tcp,
        auditor_key,
        &operator_key,
        lossy,
    )
    .expect("lossy tcp submission with retry");
    assert_eq!(
        retried.verdict, local.verdict,
        "retry must not change the verdict"
    );
    println!("lossy tcp  verdict: {} (after retries)", retried.verdict);

    let snap = run.obs.snapshot();
    println!("\ncounters:");
    for name in [
        "server.requests",
        "server.connections",
        "transport.calls",
        "transport.retries",
        "transport.timeouts",
        "transport.faults.dropped",
    ] {
        println!("  {:26} {}", name, snap.counter(name));
    }
    println!("\nexp_tcp OK");
}
