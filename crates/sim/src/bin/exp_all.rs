//! Runs every experiment in sequence (Fig. 6, Fig. 8, Table II).
//!
//! `cargo run -p alidrone-sim --release --bin exp_all`

use std::process::Command;

fn main() {
    // The individual experiments are separate binaries; exec each so a
    // single command regenerates the whole evaluation section.
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for name in [
        "exp_fig6",
        "exp_fig7",
        "exp_fig8",
        "exp_table2",
        "exp_ablation",
        "exp_trace",
    ] {
        let path = dir.join(name);
        println!("\n############ {name} ############\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{name} exited with {status}");
            std::process::exit(1);
        }
    }
}
