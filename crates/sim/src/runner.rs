//! Executes a scenario under a sampling strategy against the full stack
//! (simulated receiver → TEE → sampler → PoA).

use std::sync::Arc;

use alidrone_core::sampling::{self};
use alidrone_core::{run_flight_with_hook, FlightRecord, ProtocolError, SamplingStrategy};
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::Timestamp;
use alidrone_gps::{SimClock, SimulatedReceiver};
use alidrone_obs::{
    Event, Fanout, FlightRecorder, MetricsSnapshot, Obs, RingBuffer, SpanContext, SpanRecord,
};
use alidrone_tee::{CostLedger, CostModel, SecureWorldBuilder, TeeClient, GPS_SAMPLER_UUID};

use crate::scenarios::Scenario;

// `sampling` is re-exported so experiment binaries can reach policies
// without an extra dependency edge.
pub use sampling::SamplingPolicy;

/// Bridges the simulator's [`SimClock`] into the observability
/// [`Clock`](alidrone_obs::Clock) trait, so events and spans recorded
/// during a scenario are stamped in *simulated* time.
#[derive(Debug, Clone)]
pub struct SimClockBridge(pub SimClock);

impl alidrone_obs::Clock for SimClockBridge {
    fn now(&self) -> alidrone_geo::Timestamp {
        self.0.now()
    }
}

/// Events retained per scenario run (a long fixed-rate flight can emit
/// thousands; the ring keeps the most recent ones and counts drops).
const EVENT_CAPACITY: usize = 4096;

/// Completed spans retained by the run's flight recorder (a 1 Hz
/// fixed-rate flight completes ~1300 sample/sign spans; keep them all).
const SPAN_CAPACITY: usize = 8192;

/// Sim-time spacing between periodic metrics snapshots in
/// [`ScenarioRun::timeline`]. Sixty sim-seconds keeps even a multi-hour
/// soak's timeline small while still resolving rate changes.
const TIMELINE_INTERVAL_SECS: f64 = 60.0;

/// The output of one scenario execution.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The flight record (PoA + per-update events).
    pub record: FlightRecord,
    /// The TEE cost ledger accumulated during the run.
    pub ledger: CostLedger,
    /// Number of insufficient PoA pairs (Fig. 8(c) counter) against the
    /// scenario's zones.
    pub insufficient_pairs: usize,
    /// The TEE client (for signature verification in callers).
    pub tee: TeeClient,
    /// Metric totals at the end of the flight (world switches,
    /// signature counts by key size, sampler decisions, modelled cost
    /// histograms).
    pub metrics: MetricsSnapshot,
    /// Structured events captured during the flight, stamped in sim
    /// time (most recent `EVENT_CAPACITY`).
    pub events: Vec<Event>,
    /// The live observability handle the run used. Share it with e.g.
    /// an [`AuditorServer`](alidrone_core::wire::server::AuditorServer)
    /// to accumulate wire metrics in the same registry, then
    /// re-snapshot.
    pub obs: Obs,
    /// The flight recorder that subscribed for the whole run; it stays
    /// subscribed (through [`ScenarioRun::obs`]) so submission spans
    /// recorded after the flight land in the same recorder.
    pub recorder: Arc<FlightRecorder>,
    /// Spans completed *during* the flight (the recorder keeps
    /// accumulating afterwards; see [`ScenarioRun::recorder`]).
    pub spans: Vec<SpanRecord>,
    /// The root `flight` span's context, for parenting post-flight work
    /// into the same trace via
    /// [`AuditorClient::set_trace_parent`](alidrone_core::wire::transport::AuditorClient::set_trace_parent).
    pub flight_span: Option<SpanContext>,
    /// Periodic metrics snapshots taken on *sim* time (one roughly
    /// every `TIMELINE_INTERVAL_SECS` of flight, starting at the
    /// first step). Unlike the single end-of-run [`metrics`] total,
    /// consecutive deltas here show rate-over-time across a long soak;
    /// see [`ScenarioRun::counter_timeline`].
    ///
    /// [`metrics`]: ScenarioRun::metrics
    pub timeline: Vec<(Timestamp, MetricsSnapshot)>,
}

impl ScenarioRun {
    /// Authenticated samples recorded.
    pub fn sample_count(&self) -> usize {
        self.record.sample_count()
    }

    /// Per-interval deltas of counter `name` across the run: each entry
    /// is `(interval_end_time, increment_since_previous_snapshot)`,
    /// closed by a final interval from the last periodic snapshot to the
    /// end-of-run [`metrics`](ScenarioRun::metrics) total. Summing the
    /// deltas reproduces the final counter value exactly.
    pub fn counter_timeline(&self, name: &str) -> Vec<(Timestamp, u64)> {
        let mut out = Vec::with_capacity(self.timeline.len() + 1);
        let mut prev = 0u64;
        for (t, snap) in &self.timeline {
            let v = snap.counter(name);
            out.push((*t, v.saturating_sub(prev)));
            prev = v;
        }
        let end = self.record.window_end;
        out.push((end, self.metrics.counter(name).saturating_sub(prev)));
        out
    }
}

/// Runs `scenario` under `strategy`, signing with `sign_key` and
/// accounting costs with `cost_model`.
///
/// The run instruments the whole stack: a fresh [`Obs`] on the
/// scenario's sim clock collects TEE and sampler metrics plus
/// structured events, returned in [`ScenarioRun::metrics`] /
/// [`ScenarioRun::events`].
///
/// # Errors
///
/// Propagates TEE construction and flight errors.
pub fn run_scenario(
    scenario: &Scenario,
    strategy: SamplingStrategy,
    sign_key: RsaPrivateKey,
    cost_model: CostModel,
) -> Result<ScenarioRun, ProtocolError> {
    let clock = SimClock::new();
    let obs = Obs::new(Arc::new(SimClockBridge(clock.clone())));
    let ring = Arc::new(RingBuffer::new(EVENT_CAPACITY));
    let recorder = Arc::new(FlightRecorder::with_capacities(
        SPAN_CAPACITY,
        EVENT_CAPACITY,
    ));
    obs.set_subscriber(Arc::new(Fanout::new(vec![
        ring.clone() as Arc<dyn alidrone_obs::Subscriber>,
        recorder.clone() as Arc<dyn alidrone_obs::Subscriber>,
    ])));

    let mut receiver = SimulatedReceiver::from_trajectory(
        scenario.trajectory.clone(),
        clock.clone(),
        scenario.hw_rate_hz,
    );
    for &k in &scenario.dropouts {
        receiver.drop_update(k);
    }
    let receiver = Arc::new(receiver);

    let world = SecureWorldBuilder::new()
        .with_sign_key(sign_key)
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .with_cost_model(cost_model)
        .with_obs(&obs)
        .build()?;
    let tee = world.client();
    let ledger = world.ledger();

    let session = tee.open_session(GPS_SAMPLER_UUID)?;
    // The root span of the run's trace: every `drone.sample` (and the
    // `tee.sign` under it) nests here, and callers can parent
    // post-flight submission spans to it via `flight_span`.
    let flight_root = obs.enter_span("flight");
    let flight_span = flight_root.context().copied();
    // Periodic snapshots on sim time: a soak's rate-over-time series,
    // not just end-of-run totals.
    let mut timeline: Vec<(Timestamp, MetricsSnapshot)> = Vec::new();
    let record = run_flight_with_hook(
        &clock,
        receiver.as_ref(),
        &session,
        &scenario.zones,
        strategy,
        scenario.duration,
        &obs,
        &mut |t| {
            let due = timeline
                .last()
                .is_none_or(|(last, _)| t.secs() - last.secs() >= TIMELINE_INTERVAL_SECS);
            if due {
                timeline.push((t, obs.snapshot()));
            }
        },
    );
    flight_root.finish();
    let record = record?;

    let insufficient_pairs = alidrone_geo::sufficiency::count_insufficient_pairs(
        &record.poa.alibi(),
        &scenario.zones,
        alidrone_geo::FAA_MAX_SPEED,
    );

    Ok(ScenarioRun {
        record,
        ledger,
        insufficient_pairs,
        tee,
        metrics: obs.snapshot(),
        events: ring.events(),
        obs,
        spans: recorder.spans(),
        recorder,
        flight_span,
        timeline,
    })
}

/// A cached 512-bit signing key for fast experiment runs where the key
/// size only matters through the cost model.
pub fn experiment_key() -> RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        use alidrone_crypto::rng::XorShift64;
        let mut rng = XorShift64::seed_from_u64(0x51D);
        RsaPrivateKey::generate(512, &mut rng)
    })
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{airport, residential};

    #[test]
    fn airport_adaptive_vs_fixed_shape() {
        // Fig. 6's headline: 1 Hz fixed collects ~649 samples, adaptive
        // collects ~14 (an order-of-magnitude-plus gap with the same
        // sufficiency).
        let s = airport();
        let fixed = run_scenario(
            &s,
            SamplingStrategy::FixedRate(1.0),
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let adaptive = run_scenario(
            &s,
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        assert!(
            (fixed.sample_count() as i64 - 649).abs() <= 2,
            "fixed 1 Hz collected {}",
            fixed.sample_count()
        );
        assert!(
            adaptive.sample_count() >= 8 && adaptive.sample_count() <= 30,
            "adaptive collected {}",
            adaptive.sample_count()
        );
        // Starting 30 ft from the boundary, the first pairs cannot be
        // sufficient at any rate ≤ 5 Hz (boundary-distance sum ≈ 26 m
        // against a 1 s budget of 44.7 m) — a geometric fact the paper
        // does not surface. Both strategies incur only those unavoidable
        // initial pairs and nothing else.
        assert!(
            fixed.insufficient_pairs <= 3,
            "fixed 1 Hz: {} insufficient",
            fixed.insufficient_pairs
        );
        assert!(
            adaptive.insufficient_pairs <= fixed.insufficient_pairs + 1,
            "adaptive {} vs fixed {}",
            adaptive.insufficient_pairs,
            fixed.insufficient_pairs
        );
    }

    #[test]
    fn residential_insufficiency_ordering() {
        // Fig. 8(c)'s shape: 2 Hz ≫ 3 Hz ≫ 5 Hz ≈ adaptive ≥ 1 (the
        // dropout) with absolute paper values 39 / 9 / ~1 / 1.
        let s = residential();
        let run = |strategy| {
            run_scenario(&s, strategy, experiment_key(), CostModel::free())
                .unwrap()
                .insufficient_pairs
        };
        let c2 = run(SamplingStrategy::FixedRate(2.0));
        let c3 = run(SamplingStrategy::FixedRate(3.0));
        let c5 = run(SamplingStrategy::FixedRate(5.0));
        let ca = run(SamplingStrategy::Adaptive);
        assert!(c2 > c3, "2 Hz {c2} vs 3 Hz {c3}");
        assert!(c3 > c5, "3 Hz {c3} vs 5 Hz {c5}");
        assert!(ca <= c5 + 1, "adaptive {ca} vs 5 Hz {c5}");
        assert!(ca >= 1, "adaptive must show the dropout-induced pair");
        assert!(
            c2 >= 15,
            "2 Hz should produce tens of insufficient pairs, got {c2}"
        );
    }

    #[test]
    fn residential_adaptive_saves_samples_in_sparse_stretch() {
        let s = residential();
        let adaptive = run_scenario(
            &s,
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let five = run_scenario(
            &s,
            SamplingStrategy::FixedRate(5.0),
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        assert!(
            adaptive.sample_count() < five.sample_count(),
            "adaptive {} >= 5 Hz {}",
            adaptive.sample_count(),
            five.sample_count()
        );
    }

    #[test]
    fn ledger_counts_signatures() {
        let s = airport();
        let run = run_scenario(
            &s,
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::raspberry_pi_3(),
        )
        .unwrap();
        let snap = run.ledger.snapshot();
        assert_eq!(snap.signatures as usize, run.sample_count());
        assert!(snap.busy.secs() > 0.0);
    }

    #[test]
    fn scenario_run_carries_metrics_and_events() {
        let s = airport();
        let run = run_scenario(
            &s,
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::raspberry_pi_3(),
        )
        .unwrap();
        let ledger = run.ledger.snapshot();
        // The obs counters mirror the ledger.
        assert_eq!(
            run.metrics.counter("tee.world_switches"),
            ledger.world_switches
        );
        assert_eq!(run.metrics.counter("tee.signatures"), ledger.signatures);
        assert_eq!(
            run.metrics.counter("tee.signatures.rsa_512"),
            ledger.signatures
        );
        // Sampler decisions cover every fresh hardware update.
        let decisions = run.metrics.counter("sampler.decisions.sample")
            + run.metrics.counter("sampler.decisions.skip");
        assert!(decisions > 0);
        assert_eq!(
            run.metrics.counter("sampler.decisions.sample") as usize,
            // The landing anchor is recorded outside the policy.
            run.sample_count() - 1,
        );
        // Rate-change events are stamped in sim time and carry the
        // Algorithm 1 distance terms.
        let rate_changes: Vec<_> = run
            .events
            .iter()
            .filter(|e| e.message == "rate_change")
            .collect();
        assert!(!rate_changes.is_empty());
        for ev in &rate_changes {
            assert!(ev.field("d1_m").unwrap().as_f64().is_some());
            assert!(ev.field("d2_m").unwrap().as_f64().is_some());
            assert!(ev.time.secs() >= 0.0 && ev.time.secs() <= s.duration.secs());
        }
    }

    #[test]
    fn timeline_snapshots_resolve_rate_over_time() {
        let s = airport();
        let run = run_scenario(
            &s,
            SamplingStrategy::FixedRate(1.0),
            experiment_key(),
            CostModel::raspberry_pi_3(),
        )
        .unwrap();
        // One snapshot per TIMELINE_INTERVAL_SECS of sim time, plus the
        // initial one at the first step.
        let expected = (s.duration.secs() / TIMELINE_INTERVAL_SECS) as usize + 1;
        assert_eq!(
            run.timeline.len(),
            expected,
            "duration {}",
            s.duration.secs()
        );
        // Snapshots are stamped in sim time, strictly increasing, and
        // counters are monotone across them.
        for pair in run.timeline.windows(2) {
            assert!(pair[1].0.secs() > pair[0].0.secs());
            assert!(pair[1].1.counter("tee.signatures") >= pair[0].1.counter("tee.signatures"));
        }
        // Deltas reconstruct the end-of-run total exactly — the whole
        // point: a soak's rate-over-time, not just its total.
        let deltas = run.counter_timeline("tee.signatures");
        let total: u64 = deltas.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, run.metrics.counter("tee.signatures"));
        // A steady 1 Hz flight signs in every interval, so interior
        // deltas are non-zero.
        assert!(deltas[1..deltas.len() - 1].iter().all(|&(_, d)| d > 0));
    }

    #[test]
    fn timeline_counters_are_monotone_and_reconcile_for_every_counter() {
        let s = airport();
        let run = run_scenario(
            &s,
            SamplingStrategy::FixedRate(1.0),
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        // Cumulative snapshots never regress and never lose a counter.
        for pair in run.timeline.windows(2) {
            for (name, &v) in &pair[1].1.counters {
                assert!(v >= pair[0].1.counter(name), "{name} regressed");
            }
            for name in pair[0].1.counters.keys() {
                assert!(pair[1].1.counters.contains_key(name), "{name} vanished");
            }
        }
        // The end-of-run total dominates the last periodic snapshot.
        let (_, last) = run.timeline.last().unwrap();
        for (name, &v) in &last.counters {
            assert!(run.metrics.counter(name) >= v, "{name}");
        }
        // Every counter's window deltas sum to its final total, exactly.
        for name in run.metrics.counters.keys() {
            let sum: u64 = run.counter_timeline(name).iter().map(|&(_, d)| d).sum();
            assert_eq!(sum, run.metrics.counter(name), "{name}");
        }
    }

    #[test]
    fn counter_timeline_handles_single_and_empty_windows() {
        use alidrone_geo::trajectory::TrajectoryBuilder;
        use alidrone_geo::{Duration, GeoPoint, ZoneSet};
        // A 30 s hover: shorter than one timeline interval, so only the
        // initial snapshot exists.
        let trajectory = TrajectoryBuilder::start_at(GeoPoint::new(40.0, -88.0).unwrap())
            .pause(Duration::from_secs(60.0))
            .build()
            .unwrap();
        let s = crate::scenarios::Scenario {
            name: "tiny",
            trajectory,
            zones: ZoneSet::new(),
            hw_rate_hz: 1.0,
            dropouts: Vec::new(),
            duration: Duration::from_secs(30.0),
        };
        let run = run_scenario(
            &s,
            SamplingStrategy::FixedRate(1.0),
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        assert_eq!(run.timeline.len(), 1, "single initial snapshot");
        let deltas = run.counter_timeline("tee.signatures");
        assert_eq!(deltas.len(), 2, "initial interval + closing interval");
        let total: u64 = deltas.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, run.metrics.counter("tee.signatures"));
        assert!(total > 0);
        // The closing interval ends exactly at the flight's end.
        assert_eq!(
            deltas.last().unwrap().0.secs(),
            run.record.window_end.secs()
        );

        // No periodic snapshot at all: the closing interval alone
        // carries the whole total.
        let mut bare = run.clone();
        bare.timeline.clear();
        let deltas = bare.counter_timeline("tee.signatures");
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].1, bare.metrics.counter("tee.signatures"));

        // A counter that never fired reconciles to zero everywhere.
        assert!(run
            .counter_timeline("no.such.counter")
            .iter()
            .all(|&(_, d)| d == 0));
    }

    #[test]
    fn poa_signatures_verify() {
        let s = residential();
        let run = run_scenario(
            &s,
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        for e in run.record.poa.entries() {
            e.verify(&run.tee.tee_public_key()).unwrap();
        }
    }
}
